// Key layout for SummaryStore objects in the KV backend. Keys sort (i)
// grouped by stream and (ii) in temporal order within each stream — the
// same layout discipline §6 of the paper applies to RocksDB.
//
//   'M'                      -> store metadata (stream id list)
//   'm' <sid:8BE>            -> per-stream metadata
//   'w' <sid:8BE> <cs:8BE>   -> summary window starting at count index cs
//   'l' <sid:8BE> <id:8BE>   -> landmark window
#ifndef SUMMARYSTORE_SRC_CORE_KEYS_H_
#define SUMMARYSTORE_SRC_CORE_KEYS_H_

#include <cstdint>
#include <string>

namespace ss {

using StreamId = uint64_t;

inline void AppendBigEndian64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

inline uint64_t ReadBigEndian64(std::string_view data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(data[static_cast<size_t>(i)]);
  }
  return v;
}

inline std::string StoreMetaKey() { return "M"; }

inline std::string StreamMetaKey(StreamId sid) {
  std::string key = "m";
  AppendBigEndian64(&key, sid);
  return key;
}

inline std::string WindowKey(StreamId sid, uint64_t cs) {
  std::string key = "w";
  AppendBigEndian64(&key, sid);
  AppendBigEndian64(&key, cs);
  return key;
}

inline std::string WindowKeyPrefix(StreamId sid) {
  std::string key = "w";
  AppendBigEndian64(&key, sid);
  return key;
}

inline std::string LandmarkKey(StreamId sid, uint64_t id) {
  std::string key = "l";
  AppendBigEndian64(&key, sid);
  AppendBigEndian64(&key, id);
  return key;
}

inline std::string LandmarkKeyPrefix(StreamId sid) {
  std::string key = "l";
  AppendBigEndian64(&key, sid);
  return key;
}

// Smallest key strictly greater than every key with the given prefix.
inline std::string PrefixEnd(std::string prefix) {
  while (!prefix.empty()) {
    auto last = static_cast<uint8_t>(prefix.back());
    if (last != 0xff) {
      prefix.back() = static_cast<char>(last + 1);
      return prefix;
    }
    prefix.pop_back();
  }
  return prefix;  // empty = unbounded
}

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_KEYS_H_
