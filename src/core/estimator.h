// Sub-window estimators (§5, Appendix B, Table 6): given only whole-window
// summary state plus the four stream-level scalars (µt, σt, µv, σv), produce
// the maximum-likelihood answer and the posterior distribution for a query
// that covers fraction t/T of a window.
//
// These are pure functions of (window aggregates, overlap fraction, stream
// stats) so they can be unit-tested directly against the paper's formulas.
#ifndef SUMMARYSTORE_SRC_CORE_ESTIMATOR_H_
#define SUMMARYSTORE_SRC_CORE_ESTIMATOR_H_

#include <cstdint>

#include "src/core/stream.h"
#include "src/stats/distributions.h"

namespace ss {

struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};

// Theorem B.1/B.3 (generic) and B.2 (Poisson): count posterior for a
// sub-window covering fraction `frac` of a window holding `count` elements.
//   generic: N(C·f, (σt/µt)²·C·f(1−f))   [B.3 with T/µt ≈ C]
//   Poisson: Binom(C, f) — mean C·f, variance C·f(1−f)
MeanVar EstimateSubWindowCount(double count, double frac, const StreamStats& stats,
                               ArrivalModel model);

// Theorem B.3: sum posterior.
//   N(S·f, ((σt/µt)²·µv² + σv²)·C·f(1−f))
MeanVar EstimateSubWindowSum(double sum, double count, double frac, const StreamStats& stats,
                             ArrivalModel model);

// Theorem B.5 / Corollary B.6: frequency posterior for a value with
// whole-window frequency `value_freq`, window count `count`, overlap
// fraction `frac`, and the count posterior's variance `count_variance`.
// Compound Hypergeom(C, V, C_t) moments:
//   mean = V·f
//   var  = E[Var(H|C_t)] + (V/C)²·Var(C_t)
MeanVar EstimateSubWindowFrequency(double count, double value_freq, double frac,
                                   double count_variance);

// Probability that a value present in the window occurs in the sub-window,
// for an assumed whole-window occurrence count v: 1 − (1−f)^v (Theorem B.4).
double MembershipProbability(double frac, double occurrences);

// Confidence interval [lo, hi] at `confidence` for a posterior composed of
// an exact part plus a normal(mean, variance) part; degenerates to the point
// when variance is 0. `floor_at_zero` clamps the estimated part's
// contribution at zero, so lo never drops below `exact` — counts and sums of
// non-negative streams keep their natural floor through the exact part
// (whatever the estimators guessed about the partial windows, the fully
// covered windows alone already guarantee at least `exact`).
struct Interval {
  double lo;
  double hi;
};
Interval NormalInterval(double exact, double mean, double variance, double confidence,
                        bool floor_at_zero = false);

// Exact Binomial interval for the single-partial-window Poisson case:
// exact + Binom(n, p) quantiles at (1±confidence)/2. Degenerate inputs
// collapse to the certain outcome: n <= 0 or p <= 0 yields [exact, exact],
// p >= 1 yields [exact + n, exact + n].
Interval BinomialInterval(double exact, int64_t n, double p, double confidence);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_ESTIMATOR_H_
