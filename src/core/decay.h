// Decay functions (§4.2, Table 4): each defines the infinite sequence of
// *target window lengths* D[0], D[1], ... measured in element counts. The
// k-th target bucket covers element ages [B_k, B_{k+1}), age measured from
// the newest element, where B_k = D[0] + ... + D[k-1]. The window-merge
// ingest algorithm merges two adjacent windows exactly when both fall inside
// one target bucket.
//
//   PowerLawDecay(p,q,R,S):  for j = 1,2,...: R·j^(p-1) windows of length S·j^q
//                            store size grows as Θ((n/RS)^(p/(p+q)))
//   ExponentialDecay(b,R,S): for j = 1,2,...: R windows of length S·b^j
//                            store size grows as Θ(R·log_b(n/RS))
#ifndef SUMMARYSTORE_SRC_CORE_DECAY_H_
#define SUMMARYSTORE_SRC_CORE_DECAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"

namespace ss {

class DecayFunction {
 public:
  virtual ~DecayFunction() = default;

  // Length in elements of the k-th target window, k >= 0. Must be
  // non-decreasing in k and >= 1.
  virtual uint64_t WindowLength(uint64_t k) const = 0;

  virtual std::string Describe() const = 0;
  virtual std::unique_ptr<DecayFunction> Clone() const = 0;
  virtual void Serialize(Writer& writer) const = 0;
};

StatusOr<std::unique_ptr<DecayFunction>> DeserializeDecay(Reader& reader);

class PowerLawDecay : public DecayFunction {
 public:
  // p >= 1, q >= 0, p + q >= 1; R, S >= 1. PowerLaw(1,1,1,1) yields target
  // lengths 1,2,3,4,... — the paper's 100x headline configuration.
  PowerLawDecay(uint32_t p, uint32_t q, uint32_t r, uint32_t s);

  uint64_t WindowLength(uint64_t k) const override;
  std::string Describe() const override;
  std::unique_ptr<DecayFunction> Clone() const override;
  void Serialize(Writer& writer) const override;

  uint32_t p() const { return p_; }
  uint32_t q() const { return q_; }
  uint32_t r() const { return r_; }
  uint32_t s() const { return s_; }

 private:
  uint32_t p_, q_, r_, s_;
  // Lazily extended: group_end_[j] = index one past the last window of
  // group j (group j has R·(j+1)^(p-1) windows of length S·(j+1)^q).
  mutable std::vector<uint64_t> group_end_;
  void ExtendGroupsTo(uint64_t k) const;
};

class ExponentialDecay : public DecayFunction {
 public:
  // b > 1, R, S >= 1. Exponential(2,1,1) gives lengths 1,2,4,8,...
  ExponentialDecay(double b, uint32_t r, uint32_t s);

  uint64_t WindowLength(uint64_t k) const override;
  std::string Describe() const override;
  std::unique_ptr<DecayFunction> Clone() const override;
  void Serialize(Writer& writer) const override;

  double b() const { return b_; }
  uint32_t r() const { return r_; }
  uint32_t s() const { return s_; }

 private:
  double b_;
  uint32_t r_, s_;
};

// Uniform windowing (no decay): every target window has the same length.
// This is the "uniform sampling" baseline configuration of §7.1.1 — the
// store approximates but does not bias toward recent data.
class UniformDecay : public DecayFunction {
 public:
  explicit UniformDecay(uint64_t window_length);

  uint64_t WindowLength(uint64_t k) const override;
  std::string Describe() const override;
  std::unique_ptr<DecayFunction> Clone() const override;
  void Serialize(Writer& writer) const override;

 private:
  uint64_t window_length_;
};

// Memoizes a decay function's window lengths and their prefix sums, and
// answers the two queries the merge algorithm needs:
//   * BucketBoundary(k) = B_k
//   * FirstBucketWithLengthAtLeast(len) = min k with D[k] >= len
// Also computes the total window count needed to cover N elements (the
// store-size model behind Table 5).
class DecaySequence {
 public:
  // Returned by FirstBucketWithLengthAtLeast when no target bucket ever
  // reaches the requested length (non-growing decay sequences).
  static constexpr uint64_t kNoBucket = UINT64_MAX;

  explicit DecaySequence(std::shared_ptr<const DecayFunction> decay);

  uint64_t WindowLength(uint64_t k) const;
  uint64_t BucketBoundary(uint64_t k) const;  // B_k; B_0 = 0
  uint64_t FirstBucketWithLengthAtLeast(uint64_t len) const;
  // Smallest m with B_m > x (m >= 1 since B_0 = 0 and x >= 0).
  uint64_t FirstBoundaryGreaterThan(uint64_t x) const;

  // Number of target windows needed to cover n elements (smallest W with
  // B_W >= n).
  uint64_t WindowCountFor(uint64_t n) const;

  const DecayFunction& decay() const { return *decay_; }

 private:
  void ExtendTo(uint64_t k) const;           // ensure boundaries_[k+1] exists
  void ExtendUntilBoundary(uint64_t n) const;  // ensure max boundary >= n

  std::shared_ptr<const DecayFunction> decay_;
  // boundaries_[k] = B_k; boundaries_[0] = 0. Lengths implied by deltas.
  mutable std::vector<uint64_t> boundaries_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_DECAY_H_
