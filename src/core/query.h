// Temporal range-query engine (§5): walks the summary windows overlapping
// [t1, t2], takes exact unions from fully covered windows, statistical
// estimates from the (at most two) partially covered edge windows, weaves in
// landmark data exactly ("hollowing out" their spans from the proportional
// shares), and returns the maximum-likelihood answer with a confidence
// interval.
#ifndef SUMMARYSTORE_SRC_CORE_QUERY_H_
#define SUMMARYSTORE_SRC_CORE_QUERY_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/core/stream.h"
#include "src/obs/trace.h"

namespace ss {

enum class QueryOp : uint8_t {
  kCount = 0,
  kSum = 1,
  kMean = 2,
  kMin = 3,
  kMax = 4,
  kExistence = 5,  // membership of `value` (Bloom / counting Bloom)
  kFrequency = 6,  // occurrence count of `value` (CMS / counting Bloom)
  kDistinct = 7,   // distinct-value count (HyperLogLog)
  kQuantile = 8,   // approximate `quantile_q` quantile (KLL sketch)
  // Count of events whose value lies in [value_lo, value_hi) — a SQL-style
  // selection answered from the Histogram operator.
  kValueRangeCount = 9,
  // Heavy hitters: the `top_k` most frequent values in range, answered from
  // the space-saving operator with per-candidate frequency brackets
  // (tightened by the CMS when the stream maintains one).
  kTopK = 10,
};

const char* QueryOpName(QueryOp op);

struct QuerySpec {
  Timestamp t1 = 0;  // inclusive
  Timestamp t2 = 0;  // inclusive
  QueryOp op = QueryOp::kCount;
  double value = 0.0;       // kExistence / kFrequency operand
  double quantile_q = 0.5;  // kQuantile operand
  double value_lo = 0.0;    // kValueRangeCount operands: [value_lo, value_hi)
  double value_hi = 0.0;
  double confidence = 0.95;
  uint32_t top_k = 10;  // kTopK operand: number of candidates to return
  // Opt-in explain mode: the engine records a QueryTrace (windows scanned,
  // bytes fetched, cache hits/misses, CI width) into QueryResult::trace.
  bool collect_trace = false;
};

// One heavy-hitter candidate of a kTopK answer. [ci_lo, ci_hi] brackets the
// candidate's true in-range occurrence count.
struct TopKEntry {
  double value = 0.0;
  double estimate = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
};

struct QueryResult {
  // Maximum-likelihood answer. For kExistence this is P(value present).
  double estimate = 0.0;
  // Thresholded answer for kExistence.
  bool bool_answer = false;
  // Confidence interval at `confidence`.
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double confidence = 0.95;
  // True when no statistical estimation was involved (query was answered
  // entirely from raw windows, landmarks, and exact whole-window unions).
  bool exact = true;
  // True when part of the query range was answered without its data —
  // quarantined (checksum-failed) windows or scrub-recorded lost elements.
  // The answer is still sound: the missing spans are folded into [ci_lo,
  // ci_hi] as fully-uncertain sub-ranges, never silently ignored.
  bool degraded = false;
  // Inclusive [start, end] time spans whose data was missing (one entry per
  // affected window, clamped to the query range). Empty unless degraded.
  std::vector<std::pair<Timestamp, Timestamp>> skipped_spans;
  size_t windows_read = 0;
  size_t landmark_events = 0;
  // kTopK only: candidates ordered by descending count upper bound.
  std::vector<TopKEntry> topk;
  // Populated only when QuerySpec::collect_trace was set (shared so results
  // stay cheap to copy).
  std::shared_ptr<QueryTrace> trace;

  double CiWidth() const { return ci_hi - ci_lo; }
  // CI width relative to a baseline answer, the metric of §7.2.2.
  double RelativeCiWidth(double baseline) const {
    return baseline == 0.0 ? CiWidth() : CiWidth() / std::abs(baseline);
  }
};

// Executes `spec` against `stream`. Fails with kFailedPrecondition if the
// stream is not configured with an operator able to answer `spec.op`.
StatusOr<QueryResult> RunQuery(Stream& stream, const QuerySpec& spec);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_QUERY_H_
