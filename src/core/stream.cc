#include "src/core/stream.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/storage/checksum_envelope.h"

namespace ss {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) { return a > UINT64_MAX - b ? UINT64_MAX : a + b; }

void SerializeWelford(Writer& writer, const WelfordAccumulator& acc) {
  writer.PutVarint(static_cast<uint64_t>(acc.count()));
  writer.PutDouble(acc.Mean());
  writer.PutDouble(acc.m2());
}

StatusOr<WelfordAccumulator> DeserializeWelford(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(double mean, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(double m2, reader.ReadDouble());
  return WelfordAccumulator::FromParts(static_cast<int64_t>(count), mean, m2);
}

}  // namespace

// ----------------------------------------------------------------- StreamConfig

void StreamConfig::Serialize(Writer& writer) const {
  decay->Serialize(writer);
  operators.Serialize(writer);
  writer.PutU8(static_cast<uint8_t>(arrival_model));
  writer.PutU8(static_cast<uint8_t>(windowing));
  writer.PutVarint(raw_threshold);
  writer.PutFixed64(seed);
  writer.PutVarint(window_cache_bytes);
  writer.PutVarint(reorder_buffer);
}

StatusOr<StreamConfig> StreamConfig::Deserialize(Reader& reader) {
  StreamConfig config;
  SS_ASSIGN_OR_RETURN(std::unique_ptr<DecayFunction> decay, DeserializeDecay(reader));
  config.decay = std::shared_ptr<const DecayFunction>(std::move(decay));
  SS_ASSIGN_OR_RETURN(config.operators, OperatorSet::Deserialize(reader));
  SS_ASSIGN_OR_RETURN(uint8_t model, reader.ReadU8());
  config.arrival_model = static_cast<ArrivalModel>(model);
  SS_ASSIGN_OR_RETURN(uint8_t windowing, reader.ReadU8());
  if (windowing > static_cast<uint8_t>(WindowingMode::kTimeBased)) {
    return Status::Corruption("StreamConfig: bad windowing mode");
  }
  config.windowing = static_cast<WindowingMode>(windowing);
  SS_ASSIGN_OR_RETURN(config.raw_threshold, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(config.seed, reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(config.window_cache_bytes, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(config.reorder_buffer, reader.ReadVarint());
  return config;
}

// ----------------------------------------------------------------------- Stream

Stream::Stream(StreamId id, StreamConfig config, KvBackend* kv)
    : id_(id), config_(std::move(config)), kv_(kv), seq_(config_.decay) {
  SS_CHECK(config_.decay != nullptr) << "stream requires a decay function";
}

Status Stream::Append(Timestamp ts, double value) { return AppendOne(ts, value); }

Status Stream::AppendBatch(std::span<const Event> events) {
  for (const Event& event : events) {
    SS_RETURN_IF_ERROR(AppendOne(event.ts, event.value));
  }
  return Status::Ok();
}

Status Stream::AppendOne(Timestamp ts, double value) {
  if (config_.reorder_buffer > 0 && !in_landmark_) {
    // Stage in the reorder heap; release the oldest event once the buffer
    // is full. Arrivals displaced by more than the buffer capacity still
    // surface as out-of-order errors below.
    reorder_.push({ts, value});
    if (reorder_.size() <= config_.reorder_buffer) {
      return Status::Ok();
    }
    auto [release_ts, release_value] = reorder_.top();
    reorder_.pop();
    return AppendOrdered(release_ts, release_value);
  }
  return AppendOrdered(ts, value);
}

Status Stream::DrainReorderBuffer() {
  while (!reorder_.empty()) {
    auto [ts, value] = reorder_.top();
    reorder_.pop();
    SS_RETURN_IF_ERROR(AppendOrdered(ts, value));
  }
  return Status::Ok();
}

Status Stream::AppendOrdered(Timestamp ts, double value) {
  if (last_ts_ != kMinTimestamp && ts < last_ts_) {
    return Status::InvalidArgument("out-of-order append: ts " + std::to_string(ts) +
                                   " < watermark " + std::to_string(last_ts_));
  }
  if (config_.windowing == WindowingMode::kTimeBased && ts < 0) {
    return Status::InvalidArgument("time-based windowing requires non-negative timestamps");
  }
  // Stream model (§5.2): four scalars over the whole stream.
  if (last_ts_ != kMinTimestamp) {
    stats_.interarrival.Add(static_cast<double>(ts - last_ts_));
  }
  stats_.values.Add(value);
  if (!has_value_bounds_) {
    value_min_ = value_max_ = value;
    has_value_bounds_ = true;
  } else {
    value_min_ = std::min(value_min_, value);
    value_max_ = std::max(value_max_, value);
  }
  first_ts_ = std::min(first_ts_, ts);
  last_ts_ = ts;
  meta_dirty_ = true;

  if (in_landmark_) {
    LandmarkWindow& lm = landmarks_.back();
    lm.events.push_back(Event{ts, value});
    lm.ts_end = ts;
    ++landmark_elements_;
    return Status::Ok();
  }

  ++n_;
  uint64_t prev_tail_cs = windows_.empty() ? 0 : windows_.rbegin()->first;
  WindowSlot slot;
  slot.ce = n_;
  slot.ts_start = ts;
  slot.ts_last = ts;
  slot.dirty = true;
  slot.window = std::make_shared<SummaryWindow>(n_, ts, value);
  slot.size_bytes = slot.window->SizeBytes();
  windows_.emplace(n_, std::move(slot));
  ts_index_.insert({ts, n_});
  if (prev_tail_cs != 0) {
    PushCandidate(prev_tail_cs);
  }
  return DrainMerges();
}

uint64_t Stream::Position() const {
  if (config_.windowing == WindowingMode::kTimeBased) {
    return last_ts_ == kMinTimestamp ? 0 : static_cast<uint64_t>(last_ts_);
  }
  return n_;
}

uint64_t Stream::StartPos(const WindowSlot& slot, uint64_t cs) const {
  return config_.windowing == WindowingMode::kTimeBased
             ? static_cast<uint64_t>(slot.ts_start)
             : cs;
}

uint64_t Stream::EndPos(const WindowSlot& slot) const {
  return config_.windowing == WindowingMode::kTimeBased
             ? static_cast<uint64_t>(slot.ts_last)
             : slot.ce;
}

std::optional<uint64_t> Stream::ComputeMergeAt(uint64_t left_start, uint64_t right_end) const {
  // Positions are element counts (count-based windowing) or timestamps
  // (time-based); the containment arithmetic is identical in both.
  uint64_t len = right_end - left_start + 1;
  uint64_t k_fit = seq_.FirstBucketWithLengthAtLeast(len);
  if (k_fit == DecaySequence::kNoBucket) {
    return std::nullopt;
  }
  // The pair fits bucket K at position P iff
  //   P >= right_end + B_K    (the pair is old enough to be inside the bucket)
  //   P <  left_start + B_{K+1} (and hasn't aged past it)
  // Candidates queued long ago may have aged past several buckets, so pick
  // K directly: the smallest K >= k_fit with B_{K+1} > P − left_start. Then
  // merge_at = max(P, right_end + B_K) always satisfies both bounds: if the
  // max is P the second bound holds by choice of K, and otherwise it holds
  // because D[K] >= len for every K >= k_fit.
  uint64_t position = Position();
  uint64_t aged = position > left_start ? position - left_start : 0;
  uint64_t k = std::max(k_fit, seq_.FirstBoundaryGreaterThan(aged) - 1);
  uint64_t merge_at = std::max(position, SatAdd(right_end, seq_.BucketBoundary(k)));
  if (merge_at == UINT64_MAX) {
    return std::nullopt;  // bucket so deep the pair will never merge in practice
  }
  SS_DCHECK(merge_at < SatAdd(left_start, seq_.BucketBoundary(k + 1)))
      << "merge_at " << merge_at << " outside bucket " << k;
  return merge_at;
}

void Stream::PushCandidate(uint64_t left_cs) {
  auto it = windows_.find(left_cs);
  if (it == windows_.end()) {
    return;
  }
  auto succ = std::next(it);
  if (succ == windows_.end()) {
    return;
  }
  if (it->second.quarantined || succ->second.quarantined) {
    return;  // corrupt payloads can't merge; scrub repair handles them
  }
  std::optional<uint64_t> merge_at =
      ComputeMergeAt(StartPos(it->second, left_cs), EndPos(succ->second));
  if (merge_at.has_value()) {
    heap_.push(MergeCandidate{*merge_at, left_cs, succ->first});
  }
}

Status Stream::DrainMerges() {
  while (!heap_.empty() && heap_.top().merge_at <= Position()) {
    MergeCandidate candidate = heap_.top();
    heap_.pop();
    auto it = windows_.find(candidate.left_cs);
    if (it == windows_.end()) {
      continue;  // left window merged away; fresh candidates were pushed then
    }
    auto succ = std::next(it);
    if (succ == windows_.end() || succ->first != candidate.right_cs) {
      continue;  // pair changed since this entry was queued
    }
    if (it->second.quarantined || succ->second.quarantined) {
      continue;  // a side was quarantined after queuing; leave it for scrub
    }
    std::optional<uint64_t> merge_at =
        ComputeMergeAt(StartPos(it->second, candidate.left_cs), EndPos(succ->second));
    if (!merge_at.has_value()) {
      continue;
    }
    if (*merge_at > Position()) {
      heap_.push(MergeCandidate{*merge_at, candidate.left_cs, candidate.right_cs});
      continue;
    }
    SS_RETURN_IF_ERROR(MergePair(candidate.left_cs, candidate.right_cs));
  }
  return Status::Ok();
}

Status Stream::MergePair(uint64_t left_cs, uint64_t right_cs) {
  auto left_it = windows_.find(left_cs);
  auto right_it = windows_.find(right_cs);
  SS_CHECK(left_it != windows_.end() && right_it != windows_.end()) << "merge of missing window";
  WindowSlot& left = left_it->second;
  WindowSlot& right = right_it->second;

  Status load = LoadWindow(left_cs, left).status();
  if (load.ok()) {
    load = LoadWindow(right_cs, right).status();
  }
  if (!load.ok()) {
    if (left.quarantined || right.quarantined) {
      return Status::Ok();  // side turned out corrupt: drop the candidate,
                            // keep ingesting; scrub repair owns the cleanup
    }
    return load;
  }

  SS_RETURN_IF_ERROR(left.window->MergeFrom(std::move(*right.window), config_.operators,
                                            config_.raw_threshold, config_.seed));
  left.ce = right.ce;
  left.ts_last = right.ts_last;
  left.dirty = true;
  left.size_bytes = left.window->SizeBytes();

  ts_index_.erase({right.ts_start, right_cs});
  // Only windows that ever reached the KV store need a tombstone; the vast
  // majority of tail windows merge away between flushes.
  if (right.persisted) {
    pending_deletes_.push_back(right_cs);
  }
  windows_.erase(right_it);
  ++merges_;
  static Counter& merge_total =
      MetricRegistry::Default().GetCounter("ss_core_window_merges_total");
  merge_total.Inc();

  // Both neighbor pairs changed; queue fresh candidates.
  if (left_it != windows_.begin()) {
    PushCandidate(std::prev(left_it)->first);
  }
  PushCandidate(left_cs);
  return Status::Ok();
}

Status Stream::BeginLandmark(Timestamp ts) {
  if (in_landmark_) {
    return Status::FailedPrecondition("landmark already active");
  }
  // Landmark routing is decided at arrival time; settle any staged events
  // first so the boundary is unambiguous.
  SS_RETURN_IF_ERROR(DrainReorderBuffer());
  LandmarkWindow lm;
  lm.id = next_landmark_id_++;
  lm.ts_start = ts;
  lm.ts_end = ts;
  landmarks_.push_back(std::move(lm));
  in_landmark_ = true;
  meta_dirty_ = true;
  return Status::Ok();
}

Status Stream::EndLandmark(Timestamp ts) {
  if (!in_landmark_) {
    return Status::FailedPrecondition("no active landmark");
  }
  LandmarkWindow& lm = landmarks_.back();
  lm.ts_end = std::max(lm.ts_end, ts);
  lm.closed = true;
  in_landmark_ = false;
  meta_dirty_ = true;
  return Status::Ok();
}

StatusOr<std::shared_ptr<SummaryWindow>> Stream::LoadWindow(uint64_t cs, WindowSlot& slot,
                                                            QueryTrace* trace) {
  // Hit/miss attribution lives in WindowsOverlapping (the only caller that
  // distinguishes query traffic); here we only account bytes actually read.
  static Counter& bytes_loaded =
      MetricRegistry::Default().GetCounter("ss_core_window_load_bytes_total");
  static Counter& read_retries =
      MetricRegistry::Default().GetCounter("ss_storage_read_retry_total");
  static Counter& quarantine_total =
      MetricRegistry::Default().GetCounter("ss_core_window_quarantine_total");
  if (slot.window != nullptr) {
    return slot.window;
  }
  if (slot.quarantined) {
    return Status::Corruption("window " + std::to_string(cs) + " quarantined");
  }
  auto fetch = [&]() -> StatusOr<SummaryWindow> {
    SS_ASSIGN_OR_RETURN(std::string stored, kv_->Get(WindowKey(id_, cs)));
    SS_ASSIGN_OR_RETURN(std::string_view payload, OpenEnvelope(stored));
    Reader reader(payload);
    SS_ASSIGN_OR_RETURN(SummaryWindow window, SummaryWindow::Deserialize(reader));
    // Identity cross-check closes the envelope's blind spot: a flipped magic
    // byte demotes the value to "legacy unchecked", but a decode that then
    // happens to succeed still has to produce *this* window.
    if (window.cs() != cs) {
      return Status::Corruption("window identity mismatch: key cs " + std::to_string(cs) +
                                " decoded cs " + std::to_string(window.cs()));
    }
    bytes_loaded.Inc(payload.size());
    if (trace != nullptr) {
      trace->bytes_fetched += payload.size();
    }
    return window;
  };
  StatusOr<SummaryWindow> window = fetch();
  if (!window.ok()) {
    // One immediate retry: a transient backend hiccup (or a repair racing
    // this read) should not quarantine a healthy window.
    read_retries.Inc();
    window = fetch();
  }
  if (!window.ok()) {
    const Status& status = window.status();
    if (status.code() == StatusCode::kCorruption || status.code() == StatusCode::kNotFound) {
      // Checksum/decode failure — or outright loss — of the only remaining
      // copy. Quarantine the slot so queries degrade instead of erroring.
      slot.quarantined = true;
      slot.dirty = false;
      quarantine_total.Inc();
      FlightRecorder::Default().Record(FlightEventType::kWindowQuarantine, id_, cs);
      return Status::Corruption("window " + std::to_string(cs) +
                                " quarantined: " + status.ToString());
    }
    return status;
  }
  slot.window = std::make_shared<SummaryWindow>(std::move(window).value());
  return slot.window;
}

void Stream::SerializeMeta(Writer& writer) const {
  config_.Serialize(writer);
  writer.PutVarint(n_);
  writer.PutVarint(landmark_elements_);
  writer.PutSignedVarint(first_ts_);
  writer.PutSignedVarint(last_ts_);
  writer.PutU8(in_landmark_ ? 1 : 0);
  writer.PutVarint(next_landmark_id_);
  writer.PutVarint(merges_);
  SerializeWelford(writer, stats_.interarrival);
  SerializeWelford(writer, stats_.values);
  // Trailing optional fields — metas written before this release simply end
  // above, so Load only reads these when bytes remain.
  writer.PutU8(has_value_bounds_ ? 1 : 0);
  writer.PutDouble(value_min_);
  writer.PutDouble(value_max_);
}

Status Stream::Flush() {
  static LatencyHistogram& flush_records =
      MetricRegistry::Default().GetHistogram("ss_core_flush_batch_records");
  SS_RETURN_IF_ERROR(DrainReorderBuffer());
  // Everything dirty — windows, tombstones for merged-away windows,
  // landmarks, metadata — goes to the backend as write batches, so a flush
  // pays one group commit (one WAL fsync under sync_wal) instead of one per
  // key. Chunked to bound the serialized copy held in memory; in-memory
  // bookkeeping is updated only after its chunk is acknowledged, so a failed
  // chunk leaves the remainder dirty for the next flush.
  constexpr size_t kFlushChunkBytes = 4 << 20;
  WriteBatch batch;
  std::vector<uint64_t> chunk_cs;
  size_t records = 0;
  static LatencyHistogram& chunk_us =
      MetricRegistry::Default().GetHistogram("ss_core_flush_chunk_us");
  auto commit_chunk = [&]() -> Status {
    if (batch.empty()) {
      return Status::Ok();
    }
    records += batch.size();
    FlightRecorder::Default().Record(FlightEventType::kFlushChunk, id_, batch.size());
    ScopedTimer chunk_timer(chunk_us);
    SS_RETURN_IF_ERROR(kv_->PutBatch(batch));
    for (uint64_t cs : chunk_cs) {
      WindowSlot& slot = windows_.find(cs)->second;
      slot.size_bytes = slot.window->SizeBytes();
      slot.dirty = false;
      slot.persisted = true;
    }
    chunk_cs.clear();
    batch.Clear();
    return Status::Ok();
  };
  for (auto& [cs, slot] : windows_) {
    if (!slot.dirty) {
      continue;
    }
    SS_CHECK(slot.window != nullptr) << "persisting evicted window";
    Writer writer;
    slot.window->Serialize(writer);
    batch.Put(WindowKey(id_, cs), SealEnvelope(writer.data()));
    chunk_cs.push_back(cs);
    if (batch.ApproximateBytes() >= kFlushChunkBytes) {
      SS_RETURN_IF_ERROR(commit_chunk());
    }
  }
  for (uint64_t cs : pending_deletes_) {
    batch.Delete(WindowKey(id_, cs));
  }
  for (size_t i = first_dirty_landmark_; i < landmarks_.size(); ++i) {
    Writer writer;
    landmarks_[i].Serialize(writer);
    batch.Put(LandmarkKey(id_, landmarks_[i].id), SealEnvelope(writer.data()));
  }
  if (meta_dirty_) {
    Writer writer;
    SerializeMeta(writer);
    batch.Put(StreamMetaKey(id_), SealEnvelope(writer.data()));
  }
  SS_RETURN_IF_ERROR(commit_chunk());
  pending_deletes_.clear();
  // The active (unclosed) landmark keeps mutating; re-persist it next flush.
  first_dirty_landmark_ = in_landmark_ && !landmarks_.empty() ? landmarks_.size() - 1
                                                              : landmarks_.size();
  meta_dirty_ = false;
  if (records > 0) {
    flush_records.Record(records);
  }
  return Status::Ok();
}

Status Stream::EvictAllWindows() {
  SS_RETURN_IF_ERROR(Flush());
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  for (auto& [cs, slot] : windows_) {
    if (slot.window != nullptr) {
      slot.size_bytes = slot.window->SizeBytes();
      slot.window = nullptr;
    }
  }
  return Status::Ok();
}

void Stream::DropCleanWindowPayloads() {
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  for (auto& [cs, slot] : windows_) {
    if (slot.window != nullptr && !slot.dirty) {
      slot.size_bytes = slot.window->SizeBytes();
      slot.window = nullptr;
    }
  }
}

Status Stream::Erase() {
  // Collect keys first: mutating while scanning is undefined for backends.
  std::vector<std::string> keys;
  auto collect = [&keys](std::string_view key, std::string_view) {
    keys.emplace_back(key);
    return true;
  };
  SS_RETURN_IF_ERROR(
      kv_->Scan(WindowKeyPrefix(id_), PrefixEnd(WindowKeyPrefix(id_)), collect));
  SS_RETURN_IF_ERROR(
      kv_->Scan(LandmarkKeyPrefix(id_), PrefixEnd(LandmarkKeyPrefix(id_)), collect));
  keys.push_back(StreamMetaKey(id_));
  for (const std::string& key : keys) {
    SS_RETURN_IF_ERROR(kv_->Delete(key));
  }
  windows_.clear();
  ts_index_.clear();
  landmarks_.clear();
  return Status::Ok();
}

StatusOr<std::unique_ptr<Stream>> Stream::Load(StreamId id, KvBackend* kv) {
  SS_ASSIGN_OR_RETURN(std::string meta, kv->Get(StreamMetaKey(id)));
  // Stream meta has no redundant copy to degrade to: a corrupt meta fails
  // the whole load (and Open), by design.
  SS_ASSIGN_OR_RETURN(std::string_view meta_payload, OpenEnvelope(meta));
  Reader reader(meta_payload);
  SS_ASSIGN_OR_RETURN(StreamConfig config, StreamConfig::Deserialize(reader));
  auto stream = std::make_unique<Stream>(id, std::move(config), kv);
  SS_ASSIGN_OR_RETURN(stream->n_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(stream->landmark_elements_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(stream->first_ts_, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(stream->last_ts_, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(uint8_t in_landmark, reader.ReadU8());
  stream->in_landmark_ = in_landmark != 0;
  SS_ASSIGN_OR_RETURN(stream->next_landmark_id_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(stream->merges_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(stream->stats_.interarrival, DeserializeWelford(reader));
  SS_ASSIGN_OR_RETURN(stream->stats_.values, DeserializeWelford(reader));
  if (!reader.AtEnd()) {  // trailing optional fields (absent in legacy metas)
    SS_ASSIGN_OR_RETURN(uint8_t has_bounds, reader.ReadU8());
    SS_ASSIGN_OR_RETURN(stream->value_min_, reader.ReadDouble());
    SS_ASSIGN_OR_RETURN(stream->value_max_, reader.ReadDouble());
    stream->has_value_bounds_ = has_bounds != 0;
  }

  // Rebuild the window index from the persisted windows; payloads stay
  // evicted until queried. Pass 1: index every verifiable header, remember
  // the cs of windows whose stored value fails envelope/decode/identity.
  static Counter& quarantine_total =
      MetricRegistry::Default().GetCounter("ss_core_window_quarantine_total");
  std::vector<uint64_t> corrupt_cs;
  SS_RETURN_IF_ERROR(kv->Scan(
      WindowKeyPrefix(id), PrefixEnd(WindowKeyPrefix(id)),
      [&](std::string_view key, std::string_view value) {
        uint64_t cs = ReadBigEndian64(key.substr(9));
        auto payload = OpenEnvelope(value);
        if (!payload.ok()) {
          corrupt_cs.push_back(cs);
          return true;
        }
        Reader header(*payload);
        WindowSlot slot;
        // Header layout: cs, ce, ts_start, ts_last (see SummaryWindow serde).
        auto cs_field = header.ReadVarint();
        auto ce_field = header.ReadVarint();
        auto ts_start = header.ReadSignedVarint();
        auto ts_last = header.ReadSignedVarint();
        if (!cs_field.ok() || !ce_field.ok() || !ts_start.ok() || !ts_last.ok() ||
            *cs_field != cs || *ce_field < cs) {
          // Legacy (unenveloped) value with a mangled header, or an envelope
          // whose payload lies about its identity: quarantine, don't fail
          // the whole stream.
          corrupt_cs.push_back(cs);
          return true;
        }
        slot.ce = *ce_field;
        slot.ts_start = *ts_start;
        slot.ts_last = *ts_last;
        slot.size_bytes = payload->size();
        slot.persisted = true;
        stream->windows_.emplace(cs, std::move(slot));
        stream->ts_index_.insert({*ts_start, cs});
        return true;
      }));
  // Pass 2: give each corrupt window a quarantined index slot whose span is
  // reconstructed from its intact neighbors, so window covers still tile
  // stream time and queries can price the loss into their intervals.
  // Conservative time span: start at the predecessor's last event (events
  // may share timestamps, so ts_last — not ts_last + 1 — keeps the span a
  // superset of the truth) and end at the successor's first.
  std::sort(corrupt_cs.begin(), corrupt_cs.end());
  for (size_t i = 0; i < corrupt_cs.size(); ++i) {
    uint64_t cs = corrupt_cs[i];
    WindowSlot slot;
    slot.persisted = true;
    slot.quarantined = true;
    // Processing ascending means earlier corrupt windows are already in the
    // map, so lower_bound past them lands on the next *intact* window; the
    // element range must still stop before the next corrupt key.
    auto succ = stream->windows_.lower_bound(cs + 1);
    uint64_t next_cs = succ != stream->windows_.end() ? succ->first : UINT64_MAX;
    if (i + 1 < corrupt_cs.size()) {
      next_cs = std::min(next_cs, corrupt_cs[i + 1]);
    }
    slot.ce = next_cs != UINT64_MAX ? next_cs - 1 : stream->n_;
    slot.ts_last = succ != stream->windows_.end() ? succ->second.ts_start : stream->last_ts_;
    // Nearest intact predecessor: a run of adjacent corrupt windows shares
    // one [pred.ts_last, succ.ts_start] span, each member carrying its own
    // lost-element count.
    slot.ts_start = stream->first_ts_ == kMaxTimestamp ? 0 : stream->first_ts_;
    for (auto pred = stream->windows_.lower_bound(cs);
         pred != stream->windows_.begin();) {
      --pred;
      if (!pred->second.quarantined) {
        slot.ts_start = pred->second.ts_last;
        break;
      }
    }
    slot.size_bytes = 0;
    stream->windows_.emplace(cs, slot);
    stream->ts_index_.insert({slot.ts_start, cs});
    quarantine_total.Inc();
    FlightRecorder::Default().Record(FlightEventType::kWindowQuarantine, id, cs);
  }

  SS_RETURN_IF_ERROR(kv->Scan(LandmarkKeyPrefix(id), PrefixEnd(LandmarkKeyPrefix(id)),
                              [&](std::string_view, std::string_view value) {
                                auto payload = OpenEnvelope(value);
                                if (!payload.ok()) {
                                  stream->landmark_status_ = payload.status();
                                  return true;  // keep loading the others
                                }
                                Reader lm_reader(*payload);
                                auto lm = LandmarkWindow::Deserialize(lm_reader);
                                if (!lm.ok()) {
                                  stream->landmark_status_ = lm.status();
                                  return true;
                                }
                                stream->landmarks_.push_back(std::move(lm).value());
                                return true;
                              }));
  std::sort(stream->landmarks_.begin(), stream->landmarks_.end(),
            [](const LandmarkWindow& a, const LandmarkWindow& b) {
              return a.ts_start != b.ts_start ? a.ts_start < b.ts_start : a.id < b.id;
            });
  // An open landmark keeps mutating after reload; treat it as dirty so the
  // next Flush re-persists it (closed landmarks are immutable).
  stream->first_dirty_landmark_ = stream->in_landmark_ && !stream->landmarks_.empty()
                                      ? stream->landmarks_.size() - 1
                                      : stream->landmarks_.size();

  // Re-arm the merge heap for every adjacent pair.
  for (auto it = stream->windows_.begin(); it != stream->windows_.end(); ++it) {
    stream->PushCandidate(it->first);
  }
  stream->meta_dirty_ = false;
  return stream;
}

uint64_t Stream::ResidentWindowBytes() const {
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  uint64_t bytes = 0;
  for (const auto& [cs, slot] : windows_) {
    if (slot.window != nullptr) {
      bytes += slot.window->SizeBytes();
    }
  }
  return bytes;
}

uint64_t Stream::SizeBytes() const {
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  uint64_t bytes = 0;
  for (const auto& [cs, slot] : windows_) {
    bytes += slot.window != nullptr ? slot.window->SizeBytes() : slot.size_bytes;
  }
  for (const auto& lm : landmarks_) {
    bytes += lm.SizeBytes();
  }
  return bytes;
}

Status Stream::BulkLoadWindows(uint64_t cs_first, uint64_t cs_last, QueryTrace* trace) {
  static Counter& bytes_loaded =
      MetricRegistry::Default().GetCounter("ss_core_window_load_bytes_total");
  Status scan = kv_->Scan(
      WindowKey(id_, cs_first), WindowKey(id_, cs_last + 1),
      [&](std::string_view key, std::string_view value) {
        uint64_t cs = ReadBigEndian64(key.substr(9));
        auto it = windows_.find(cs);
        if (it == windows_.end() || it->second.window != nullptr ||
            it->second.quarantined) {
          return true;  // merged away, already resident, or known-corrupt
        }
        auto payload = OpenEnvelope(value);
        if (!payload.ok()) {
          return true;  // leave evicted; the per-window load quarantines it
        }
        Reader reader(*payload);
        auto window = SummaryWindow::Deserialize(reader);
        if (!window.ok() || window->cs() != cs) {
          return true;  // same: precise handling happens in LoadWindow
        }
        bytes_loaded.Inc(payload->size());
        if (trace != nullptr) {
          trace->bytes_fetched += payload->size();
        }
        it->second.window = std::make_shared<SummaryWindow>(std::move(window).value());
        return true;
      });
  if (!scan.ok() && scan.code() == StatusCode::kCorruption) {
    // A corrupt backend block can fail the whole range scan; fall back to
    // per-window point loads, which detect and quarantine precisely.
    return Status::Ok();
  }
  return scan;
}

StatusOr<std::vector<Stream::WindowView>> Stream::WindowsOverlapping(Timestamp t1, Timestamp t2,
                                                                    QueryTrace* trace) {
  static Counter& cache_hits =
      MetricRegistry::Default().GetCounter("ss_core_window_cache_hits_total");
  static Counter& cache_misses =
      MetricRegistry::Default().GetCounter("ss_core_window_cache_misses_total");
  std::vector<WindowView> views;
  if (windows_.empty() || t2 < t1) {
    return views;
  }
  QueryPhaseSpan scan_span(QueryPhase::kWindowScan, trace);
  // Queries run under a shared stream lock; payload loads, LRU stamps and
  // budget eviction are the read path's only writes, so serialize just this
  // scan (the caller's aggregation over the returned views stays parallel).
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  // Start from the first window with ts_start >= t1, plus one predecessor
  // whose cover may extend past t1. (All duplicates at ts_start == t1 must
  // be visited: with quantized clocks several windows can share a start.)
  auto begin_idx = ts_index_.lower_bound({t1, 0});
  if (begin_idx != ts_index_.begin()) {
    --begin_idx;
    // A quarantined predecessor's uncertainty span can reach past its cover
    // (adjacent corrupt windows share one reconstructed span); cross the
    // whole run so none of the loss is silently skipped.
    while (begin_idx != ts_index_.begin() &&
           windows_.find(begin_idx->second)->second.quarantined) {
      --begin_idx;
    }
  }
  // Collect evicted windows in range; past a handful, one range scan beats
  // per-window point lookups by decoding each storage block only once. The
  // evicted set also attributes per-window cache hits/misses below.
  std::vector<uint64_t> evicted;
  for (auto idx = begin_idx; idx != ts_index_.end() && idx->first <= t2; ++idx) {
    auto slot_it = windows_.find(idx->second);
    SS_CHECK(slot_it != windows_.end()) << "ts_index out of sync";
    if (slot_it->second.window == nullptr && !slot_it->second.quarantined) {
      evicted.push_back(idx->second);
    }
  }
  std::sort(evicted.begin(), evicted.end());
  const bool bulk = evicted.size() > 16;
  if (bulk) {
    SS_RETURN_IF_ERROR(BulkLoadWindows(evicted.front(), evicted.back(), trace));
  }

  for (auto idx = begin_idx; idx != ts_index_.end() && idx->first <= t2; ++idx) {
    uint64_t cs = idx->second;
    auto slot_it = windows_.find(cs);
    WindowSlot& slot = slot_it->second;
    auto next_idx = std::next(idx);
    Timestamp cover_end = next_idx != ts_index_.end() ? next_idx->first : last_ts_ + 1;
    if (slot.quarantined) {
      // The slot's reconstructed span can extend past the ts_index cover
      // (adjacent corrupt windows share a span); the missing view must blame
      // the whole span so the query prices in every possible position of the
      // lost elements.
      Timestamp missing_end = std::max(cover_end, slot.ts_last);
      if (missing_end <= t1 && slot.ts_start < t1) {
        continue;
      }
      if (trace != nullptr) {
        ++trace->quarantined_windows;
      }
      views.push_back(WindowView{nullptr, slot.ts_start, missing_end, slot.ce - cs + 1});
      continue;
    }
    if (cover_end <= t1 && slot.ts_start < t1) {
      continue;  // the stepped-back window ends before the query starts
    }
    bool was_resident = !std::binary_search(evicted.begin(), evicted.end(), cs);
    auto loaded = LoadWindow(cs, slot, trace);
    if (!loaded.ok()) {
      if (!slot.quarantined) {
        return loaded.status();  // transient backend failure: real error
      }
      // LoadWindow just quarantined this window (corrupt payload, retried
      // once): degrade instead of failing the query. The in-memory metadata
      // is still exact, so the missing span is the true cover.
      cache_misses.Inc();
      if (trace != nullptr) {
        ++trace->quarantined_windows;
      }
      views.push_back(WindowView{nullptr, slot.ts_start, cover_end, slot.ce - cs + 1});
      continue;
    }
    std::shared_ptr<SummaryWindow> window = std::move(loaded).value();
    (was_resident ? cache_hits : cache_misses).Inc();
    if (trace != nullptr) {
      ++trace->windows_scanned;
      (window->is_raw() ? trace->raw_windows : trace->summary_windows) += 1;
      (was_resident ? trace->window_cache_hits : trace->window_cache_misses) += 1;
    }
    slot.last_access = ++access_clock_;
    views.push_back(WindowView{std::move(window), slot.ts_start, cover_end});
  }
  EnforceWindowCacheBudget();
  return views;
}

void Stream::EnforceWindowCacheBudget() {
  if (config_.window_cache_bytes == 0) {
    return;
  }
  uint64_t resident = 0;
  for (const auto& [cs, slot] : windows_) {
    if (slot.window != nullptr && !slot.dirty && slot.persisted) {
      resident += slot.window->SizeBytes();
    }
  }
  if (resident <= config_.window_cache_bytes) {
    return;
  }
  // Collect clean resident slots oldest-access first and drop until we fit.
  // (Dirty or never-persisted windows must stay: they are the only copy.)
  std::vector<std::pair<uint64_t, uint64_t>> victims;  // (last_access, cs)
  for (const auto& [cs, slot] : windows_) {
    if (slot.window != nullptr && !slot.dirty && slot.persisted) {
      victims.emplace_back(slot.last_access, cs);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& [access, cs] : victims) {
    if (resident <= config_.window_cache_bytes) {
      break;
    }
    WindowSlot& slot = windows_.find(cs)->second;
    resident -= slot.window->SizeBytes();
    slot.size_bytes = slot.window->SizeBytes();
    slot.window = nullptr;
  }
}

size_t Stream::quarantined_window_count() const {
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  size_t count = 0;
  for (const auto& [cs, slot] : windows_) {
    count += slot.quarantined ? 1 : 0;
  }
  return count;
}

Status Stream::VerifyWindowKv(uint64_t cs) const {
  SS_ASSIGN_OR_RETURN(std::string stored, kv_->Get(WindowKey(id_, cs)));
  SS_ASSIGN_OR_RETURN(std::string_view payload, OpenEnvelope(stored));
  Reader reader(payload);
  SS_ASSIGN_OR_RETURN(SummaryWindow window, SummaryWindow::Deserialize(reader));
  if (window.cs() != cs) {
    return Status::Corruption("window identity mismatch: key cs " + std::to_string(cs) +
                              " decoded cs " + std::to_string(window.cs()));
  }
  return Status::Ok();
}

Status Stream::Scrub(bool repair, ScrubReport* report) {
  static Counter& scrub_windows =
      MetricRegistry::Default().GetCounter("ss_core_scrub_windows_total");
  static Counter& scrub_errors =
      MetricRegistry::Default().GetCounter("ss_core_scrub_errors_total");
  static Counter& scrub_repaired =
      MetricRegistry::Default().GetCounter("ss_core_scrub_repaired_total");
  static Counter& quarantine_total =
      MetricRegistry::Default().GetCounter("ss_core_window_quarantine_total");

  // Pass 1: verify every persisted window's KV copy end to end.
  for (auto& [cs, slot] : windows_) {
    if (!slot.persisted) {
      continue;  // only copy is in memory; nothing on disk to verify
    }
    ++report->windows_checked;
    scrub_windows.Inc();
    Status verify = VerifyWindowKv(cs);
    if (verify.ok()) {
      if (slot.quarantined) {
        // The stored copy verifies again (e.g. a transient read fault, or an
        // external restore): lift the quarantine. Span metadata from a
        // load-time reconstruction stays conservative, which is safe.
        slot.quarantined = false;
        ++report->healed;
      }
      continue;
    }
    ++report->errors;
    scrub_errors.Inc();
    if (slot.window != nullptr) {
      // Memory still holds a clean copy: re-flushing rewrites the bad KV
      // value. Only mutate when repairing (dry runs just report).
      if (repair) {
        slot.dirty = true;
        ++report->repaired;
        scrub_repaired.Inc();
      }
    } else if (!slot.quarantined) {
      slot.quarantined = true;
      slot.dirty = false;
      ++report->quarantined;
      quarantine_total.Inc();
      FlightRecorder::Default().Record(FlightEventType::kWindowQuarantine, id_, cs);
    }
  }

  // Verify landmark KV copies. Landmarks are lossless and fully resident, so
  // a corrupt stored copy is always repairable by re-persisting from memory.
  for (size_t i = 0; i < landmarks_.size(); ++i) {
    ++report->landmarks_checked;
    auto verify = [&]() -> Status {
      SS_ASSIGN_OR_RETURN(std::string stored, kv_->Get(LandmarkKey(id_, landmarks_[i].id)));
      SS_ASSIGN_OR_RETURN(std::string_view payload, OpenEnvelope(stored));
      Reader lm_reader(payload);
      SS_ASSIGN_OR_RETURN(LandmarkWindow lm, LandmarkWindow::Deserialize(lm_reader));
      if (lm.id != landmarks_[i].id) {
        return Status::Corruption("landmark identity mismatch");
      }
      return Status::Ok();
    }();
    if (!verify.ok()) {
      ++report->errors;
      scrub_errors.Inc();
      if (repair) {
        first_dirty_landmark_ = std::min(first_dirty_landmark_, i);
        ++report->repaired;
        scrub_repaired.Inc();
      }
    }
  }

  if (!repair) {
    return Status::Ok();
  }

  // Repair pass: a quarantined window's data is gone, but its *span* is
  // known. Merging it into its left neighbor as an explicit lost-element
  // range keeps covers tiling with one fewer degraded slot and survives
  // restarts (lost_count is serialized). Left is preferred — the merged
  // window keeps its key, so no KV key dance is needed; a quarantined run
  // at the stream head merges rightward instead.
  std::vector<uint64_t> quarantined_cs;
  for (auto& [cs, slot] : windows_) {
    if (slot.quarantined) {
      quarantined_cs.push_back(cs);
    }
  }
  for (uint64_t cs : quarantined_cs) {
    auto it = windows_.find(cs);
    if (it == windows_.end()) {
      continue;  // already absorbed as part of an earlier head run
    }
    if (it == windows_.begin()) {
      // No left neighbor: absorb the whole quarantined head run into the
      // first intact window to its right. That survivor's cs changes, so it
      // moves to a new KV key (tombstones for every old key in the run) —
      // the key dance is only worth it at the stream head.
      auto right_it = std::next(it);
      while (right_it != windows_.end() && right_it->second.quarantined) {
        ++right_it;
      }
      if (right_it == windows_.end()) {
        continue;  // nothing intact to absorb the span; stays quarantined
      }
      auto right_window = LoadWindow(right_it->first, right_it->second);
      if (!right_window.ok()) {
        continue;  // survivor went bad too; a later scrub pass will retry
      }
      uint64_t right_cs = right_it->first;
      uint64_t lost = right_cs - cs;  // head-run element counts tile [cs, right_cs)
      (*right_window)->AbsorbLostLeft(cs, it->second.ts_start, lost);
      WindowSlot moved = std::move(right_it->second);
      ts_index_.erase({moved.ts_start, right_cs});
      if (moved.persisted) {
        pending_deletes_.push_back(right_cs);
        moved.persisted = false;
      }
      moved.ts_start = it->second.ts_start;
      moved.dirty = true;
      moved.size_bytes = (*right_window)->SizeBytes();
      uint64_t absorbed = 0;
      for (auto run = it; run != right_it;) {
        ts_index_.erase({run->second.ts_start, run->first});
        // No tombstone for `cs` itself: the survivor is re-put at that key,
        // and batch deletes land after puts.
        if (run->second.persisted && run->first != cs) {
          pending_deletes_.push_back(run->first);
        }
        run = windows_.erase(run);
        ++absorbed;
      }
      windows_.erase(right_it);
      ts_index_.insert({moved.ts_start, cs});
      windows_.emplace(cs, std::move(moved));
      report->repaired += absorbed;
      scrub_repaired.Inc(absorbed);
      FlightRecorder::Default().Record(FlightEventType::kScrubRepair, id_, absorbed);
      PushCandidate(cs);  // re-arm the merge pair with the new right neighbor
      continue;
    }
    auto left_it = std::prev(it);
    WindowSlot& left = left_it->second;
    if (left.quarantined) {
      continue;
    }
    auto left_window = LoadWindow(left_it->first, left);
    if (!left_window.ok()) {
      continue;  // left went bad too; a later scrub pass will retry
    }
    uint64_t lost = it->second.ce - cs + 1;
    (*left_window)->AbsorbLost(it->second.ce, it->second.ts_last, lost);
    left.ce = it->second.ce;
    left.ts_last = std::max(left.ts_last, it->second.ts_last);
    left.dirty = true;
    left.size_bytes = (*left_window)->SizeBytes();
    ts_index_.erase({it->second.ts_start, cs});
    if (it->second.persisted) {
      pending_deletes_.push_back(cs);
    }
    windows_.erase(it);
    ++report->repaired;
    scrub_repaired.Inc();
    FlightRecorder::Default().Record(FlightEventType::kScrubRepair, id_, 1);
    // Neighbor pairs changed; re-arm merge candidates around the survivor.
    if (left_it != windows_.begin()) {
      PushCandidate(std::prev(left_it)->first);
    }
    PushCandidate(left_it->first);
  }
  return Flush();
}

std::vector<const LandmarkWindow*> Stream::LandmarksOverlapping(Timestamp t1,
                                                                Timestamp t2) const {
  std::vector<const LandmarkWindow*> out;
  for (const auto& lm : landmarks_) {
    if (lm.ts_start > t2) {
      break;
    }
    if (lm.ts_end >= t1) {
      out.push_back(&lm);
    }
  }
  return out;
}

std::vector<Event> Stream::QueryLandmarks(Timestamp t1, Timestamp t2) const {
  std::vector<Event> out;
  for (const LandmarkWindow* lm : LandmarksOverlapping(t1, t2)) {
    for (const Event& event : lm->events) {
      if (event.ts >= t1 && event.ts <= t2) {
        out.push_back(event);
      }
    }
  }
  return out;
}

}  // namespace ss
