// Stream: one time series inside a SummaryStore — the owner of its decayed
// summary windows, landmark windows, stream-level statistics, and the
// window-merge ingest machinery (Algorithm 1 of the paper).
//
// Ingest path: every non-landmark append creates a fresh single-element
// window and registers a merge candidate for the (previous tail, new tail)
// pair in a min-heap ordered by "earliest stream length N at which the pair
// fits inside one decay target bucket". Candidates are validated lazily
// (windows may have merged away) and recomputed on pop — this is the
// "efficient heap used by the merge procedure to identify candidate window
// merges" from §6. Amortized cost is O(log W) per append.
#ifndef SUMMARYSTORE_SRC_CORE_STREAM_H_
#define SUMMARYSTORE_SRC_CORE_STREAM_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <shared_mutex>
#include <span>
#include <vector>

#include "src/core/decay.h"
#include "src/core/keys.h"
#include "src/core/window.h"
#include "src/obs/trace.h"
#include "src/stats/welford.h"
#include "src/storage/kv_backend.h"

namespace ss {

// Arrival-process model assumed by the error estimators (§5.2 / Table 6):
// kPoisson enables the tighter Binomial bounds; kGeneric uses the
// renewal-theoretic normal approximation valid for any i.i.d. interarrivals.
enum class ArrivalModel : uint8_t { kGeneric = 0, kPoisson = 1 };

// Dimension in which decay target-window lengths (and element ages) are
// measured. kCountBased matches the reference implementation: D[k] counts
// elements, so storage follows Table 4 exactly regardless of arrival gaps.
// kTimeBased follows the paper's prose ("windows span progressively-longer
// time lengths", §3.2): D[k] is a time span, so wall-clock-uniform queries
// see uniform per-bucket resolution even under bursty arrivals.
enum class WindowingMode : uint8_t { kCountBased = 0, kTimeBased = 1 };

struct StreamConfig {
  std::shared_ptr<const DecayFunction> decay;
  OperatorSet operators;
  ArrivalModel arrival_model = ArrivalModel::kGeneric;
  WindowingMode windowing = WindowingMode::kCountBased;
  // Windows at most this many elements keep raw events (exact answers);
  // larger windows materialize into the operator set.
  uint64_t raw_threshold = 64;
  uint64_t seed = 1;
  // Memory budget for clean (persisted, reloadable) window payloads kept
  // resident after queries; 0 = unlimited (everything stays in memory, the
  // ingest-heavy default). Long-lived query servers set a budget so cold
  // queries don't accrete the whole store into RAM.
  uint64_t window_cache_bytes = 0;
  // Bounded out-of-order tolerance: appends are staged in a min-heap of this
  // capacity and released in timestamp order, so events may arrive up to
  // `reorder_buffer` positions early/late. 0 (default) = appends must be
  // monotone. Staged events are not yet queryable; Flush() drains them.
  uint64_t reorder_buffer = 0;

  void Serialize(Writer& writer) const;
  static StatusOr<StreamConfig> Deserialize(Reader& reader);
};

// The four per-stream scalars of §5.2: mean/stddev of interarrival times and
// of values, tracked online over the whole stream.
struct StreamStats {
  WelfordAccumulator interarrival;
  WelfordAccumulator values;

  double MeanInterarrival() const { return interarrival.Mean(); }
  double StdDevInterarrival() const { return interarrival.StdDev(); }
  double MeanValue() const { return values.Mean(); }
  double StdDevValue() const { return values.StdDev(); }
};

// Tally of one scrub pass (Stream::Scrub / SummaryStore::Scrub): how much was
// verified, what failed, and what the repair pass did about it.
struct ScrubReport {
  uint64_t windows_checked = 0;
  uint64_t landmarks_checked = 0;
  uint64_t errors = 0;       // KV copies that failed envelope/decode/identity
  uint64_t quarantined = 0;  // newly quarantined (no in-memory copy to repair)
  uint64_t repaired = 0;     // re-flushed from memory or merged into a neighbor
  uint64_t healed = 0;       // previously quarantined windows that verify again
};

class Stream {
 public:
  // Index entry + (possibly evicted) payload for one summary window.
  struct WindowSlot {
    uint64_t ce = 0;
    Timestamp ts_start = 0;
    Timestamp ts_last = 0;
    size_t size_bytes = 0;  // last known logical size (valid when evicted)
    bool dirty = false;
    bool persisted = false;  // a KV entry exists; merging it away needs a delete
    // The persisted payload failed its checksum/decode and there is no clean
    // in-memory copy: the slot keeps its index entry (so covers still tile
    // stream time) but window stays null and queries treat the span as
    // fully uncertain. Cleared when scrub re-verifies or repairs it.
    bool quarantined = false;
    uint64_t last_access = 0;  // LRU stamp for the window-cache budget
    std::shared_ptr<SummaryWindow> window;  // null when evicted to the KV store
  };

  Stream(StreamId id, StreamConfig config, KvBackend* kv);

  // Rebuilds a stream (meta, window index, landmarks) from the KV store.
  static StatusOr<std::unique_ptr<Stream>> Load(StreamId id, KvBackend* kv);

  // --- ingest -----------------------------------------------------------
  Status Append(Timestamp ts, double value);
  // Ingests `events` with the same ordering rules — and byte-identical
  // final window state — as repeated Append. Merges deliberately drain per
  // event, not per batch: ComputeMergeAt picks a decay bucket from the
  // *current* stream position, so deferring the drain ages candidates into
  // deeper buckets and changes the final window partition (covered by
  // reorder_buffer_test BatchedAppendsMatchSingleAppends). The batch win is
  // upstream: one registry lookup + one stream lock per span at the
  // SummaryStore layer, and one group commit per Flush at the KV layer. On
  // error the prefix before the failing event is ingested (same as a failed
  // Append mid-loop).
  Status AppendBatch(std::span<const Event> events);
  Status BeginLandmark(Timestamp ts);
  Status EndLandmark(Timestamp ts);
  bool in_landmark() const { return in_landmark_; }
  // Events staged in the reorder buffer, not yet ingested/queryable.
  size_t reorder_buffered() const { return reorder_.size(); }
  // Ingests everything still staged in the reorder buffer (also runs on
  // Flush). After draining, the watermark advances to the newest staged ts.
  Status DrainReorderBuffer();

  // Persists dirty windows, landmarks and metadata to the KV store.
  Status Flush();
  // Flush + drop all in-memory window payloads (queries reload on demand).
  Status EvictAllWindows();
  // Drops clean payloads only (cold-cache experiments).
  void DropCleanWindowPayloads();
  // Removes every persisted key for this stream (DeleteStream).
  Status Erase();

  // Verifies every persisted window/landmark KV copy against its checksum
  // envelope and decoder (forcing real backend reads), quarantines windows
  // whose only copy is corrupt, un-quarantines windows that verify again,
  // and — with `repair` — re-flushes corrupt-on-disk windows still resident
  // in memory and merges unrepairable quarantined windows into their left
  // neighbor as an explicit lost-element span. Requires exclusive ownership
  // of mutex(). Tallies into `report` (never null).
  Status Scrub(bool repair, ScrubReport* report);

  // --- concurrency --------------------------------------------------------
  // Stream-level reader/writer lock, acquired by SummaryStore (lock order:
  // registry -> stream -> window cache -> backend). Mutating calls (Append,
  // landmarks, Flush, Evict*, Erase) require exclusive ownership; the query
  // surface (WindowsOverlapping, Landmarks*, SizeBytes, getters) is safe
  // under shared ownership — the window payload cache, the only state the
  // read path mutates, is internally guarded by cache_mu_. Code that drives
  // a Stream directly (tools, benches, single-threaded tests) may skip
  // locking entirely.
  std::shared_mutex& mutex() const { return mu_; }

  // --- introspection ------------------------------------------------------
  StreamId id() const { return id_; }
  const StreamConfig& config() const { return config_; }
  const StreamStats& stats() const { return stats_; }
  uint64_t element_count() const { return n_; }           // summarized elements
  uint64_t landmark_element_count() const { return landmark_elements_; }
  size_t window_count() const { return windows_.size(); }
  size_t landmark_window_count() const { return landmarks_.size(); }
  Timestamp start_time() const { return first_ts_; }
  Timestamp watermark() const { return last_ts_; }
  uint64_t merge_count() const { return merges_; }
  // Observed [min, max] over every ingested value (landmarks included), or
  // nullopt for an empty or legacy-loaded stream. Degraded queries use these
  // as worst-case bounds for corruption-lost elements.
  std::optional<std::pair<double, double>> value_bounds() const {
    if (!has_value_bounds_) {
      return std::nullopt;
    }
    return std::make_pair(value_min_, value_max_);
  }
  // Non-OK when Load skipped a landmark window whose persisted copy was
  // corrupt. Landmarks are lossless by contract, so queries over them must
  // fail hard rather than degrade.
  const Status& landmark_status() const { return landmark_status_; }
  // Windows currently quarantined (persisted copy corrupt, no clean copy).
  size_t quarantined_window_count() const;
  // Logical decayed size: Σ window SizeBytes + landmark bytes (the "s" in
  // the paper's compaction factor S/s, measured pre-serialization like §7).
  uint64_t SizeBytes() const;
  // Bytes of window payloads currently resident in memory (cache telemetry).
  uint64_t ResidentWindowBytes() const;

  // --- query support (used by the query engine) ---------------------------
  // Windows whose covered time span intersects [t1, t2], oldest first; loads
  // evicted payloads from the KV store. Each entry carries the *cover* span:
  // cover_start = window ts_start, cover_end = next window's ts_start (or
  // watermark+1 for the tail) so that windows tile stream time contiguously.
  struct WindowView {
    std::shared_ptr<SummaryWindow> window;  // null iff the span is quarantined
    Timestamp cover_start;
    Timestamp cover_end;  // exclusive
    // Elements in this cover whose data is unavailable (quarantined window).
    // 0 for a healthy view; when non-zero, window is null and the query
    // layer must fold the span into the answer's uncertainty.
    uint64_t missing_count = 0;
  };
  // `trace`, when non-null, accumulates window-scan and payload-load
  // accounting (explain mode).
  StatusOr<std::vector<WindowView>> WindowsOverlapping(Timestamp t1, Timestamp t2,
                                                       QueryTrace* trace = nullptr);

  // Landmark windows intersecting [t1, t2].
  std::vector<const LandmarkWindow*> LandmarksOverlapping(Timestamp t1, Timestamp t2) const;

  // Raw-event enumeration over landmarks (the Ql query of Table 3).
  std::vector<Event> QueryLandmarks(Timestamp t1, Timestamp t2) const;

 private:
  struct MergeCandidate {
    uint64_t merge_at;  // earliest N at which the pair fits one target bucket
    uint64_t left_cs;
    uint64_t right_cs;
    bool operator>(const MergeCandidate& other) const { return merge_at > other.merge_at; }
  };

  // Shared body of Append/AppendBatch: reorder-buffer staging, then ordered
  // ingest (merge drain included — see the AppendBatch contract above).
  Status AppendOne(Timestamp ts, double value);
  // The monotone ingest path Append delegates to (after reorder staging).
  Status AppendOrdered(Timestamp ts, double value);
  // Current position along the decay axis: element count (count-based) or
  // watermark timestamp (time-based).
  uint64_t Position() const;
  // A window's start/end coordinates along the decay axis.
  uint64_t StartPos(const WindowSlot& slot, uint64_t cs) const;
  uint64_t EndPos(const WindowSlot& slot) const;
  std::optional<uint64_t> ComputeMergeAt(uint64_t left_start, uint64_t right_end) const;
  void PushCandidate(uint64_t left_cs);  // candidate for (left, successor(left))
  Status DrainMerges();
  Status MergePair(uint64_t left_cs, uint64_t right_cs);
  StatusOr<std::shared_ptr<SummaryWindow>> LoadWindow(uint64_t cs, WindowSlot& slot,
                                                      QueryTrace* trace = nullptr);
  // Loads every evicted window with cs in [cs_first, cs_last] through one
  // backend range scan — decoding each storage block once instead of once
  // per window (large range queries touch thousands of adjacent windows).
  Status BulkLoadWindows(uint64_t cs_first, uint64_t cs_last, QueryTrace* trace = nullptr);
  // Drops least-recently-used clean payloads until resident clean bytes fit
  // the configured window_cache_bytes budget. No-op when the budget is 0.
  void EnforceWindowCacheBudget();
  void SerializeMeta(Writer& writer) const;
  // Fetches the persisted copy of window `cs` and fully verifies it:
  // envelope CRC, deserialization, and identity (decoded cs == key cs).
  Status VerifyWindowKv(uint64_t cs) const;

  StreamId id_;
  StreamConfig config_;
  KvBackend* kv_;
  DecaySequence seq_;

  // See mutex() above. cache_mu_ serializes the query path's only mutations
  // — window payload loads/evictions and LRU stamps — so concurrent queries
  // holding mu_ shared stay race-free; the expensive aggregation over the
  // returned WindowViews still runs fully in parallel.
  mutable std::shared_mutex mu_;
  mutable std::mutex cache_mu_;

  uint64_t n_ = 0;  // summarized (non-landmark) elements ingested
  uint64_t landmark_elements_ = 0;
  Timestamp first_ts_ = kMaxTimestamp;
  Timestamp last_ts_ = kMinTimestamp;
  StreamStats stats_;
  // Observed value extremes (see value_bounds()); persisted as trailing
  // optional meta fields, so streams written before the corruption-defense
  // release load with has_value_bounds_ == false.
  double value_min_ = 0;
  double value_max_ = 0;
  bool has_value_bounds_ = false;
  Status landmark_status_ = Status::Ok();  // see landmark_status()
  bool in_landmark_ = false;
  uint64_t next_landmark_id_ = 0;
  uint64_t merges_ = 0;

  std::map<uint64_t, WindowSlot> windows_;  // keyed by cs
  // Time index for query routing: (ts_start, cs) pairs, one per live window.
  // cs disambiguates windows sharing a start timestamp.
  std::set<std::pair<Timestamp, uint64_t>> ts_index_;
  std::vector<LandmarkWindow> landmarks_;   // ordered by ts_start
  size_t first_dirty_landmark_ = 0;
  std::priority_queue<MergeCandidate, std::vector<MergeCandidate>, std::greater<>> heap_;
  std::vector<uint64_t> pending_deletes_;  // cs of merged-away windows
  bool meta_dirty_ = true;
  uint64_t access_clock_ = 0;  // monotone stamp source for slot.last_access
  // Min-heap (by timestamp) staging out-of-order arrivals; see
  // StreamConfig::reorder_buffer.
  std::priority_queue<std::pair<Timestamp, double>, std::vector<std::pair<Timestamp, double>>,
                      std::greater<>>
      reorder_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_STREAM_H_
