// Per-stream summary-operator configuration (CreateStream's
// "[Summary Operators]" argument, Table 3). Each stream independently
// selects which operators its windows maintain and how each is sized; the
// default enables the full collection, matching the paper's default
// ("the default is to use the entire collection").
#ifndef SUMMARYSTORE_SRC_CORE_OPERATORS_H_
#define SUMMARYSTORE_SRC_CORE_OPERATORS_H_

#include <memory>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/sketch/summary.h"

namespace ss {

struct OperatorSet {
  bool count = true;
  bool sum = true;
  bool minmax = true;

  bool bloom = false;
  uint32_t bloom_bits = 1024;  // the paper's microbenchmarks use width ~1000
  uint32_t bloom_hashes = 5;

  bool counting_bloom = false;
  uint32_t cbf_counters = 1024;
  uint32_t cbf_hashes = 5;

  bool cms = false;
  uint32_t cms_width = 1000;
  uint32_t cms_depth = 5;

  bool hll = false;
  uint32_t hll_precision = 12;

  bool histogram = false;
  double hist_lo = 0.0;
  double hist_hi = 1.0;
  uint32_t hist_buckets = 64;

  bool quantile = false;
  uint32_t quantile_k = 128;

  bool reservoir = false;
  uint32_t reservoir_capacity = 64;

  bool spacesaving = false;
  uint32_t spacesaving_capacity = 64;  // tracked heavy-hitter candidates

  // Aggregates only (the cheap default).
  static OperatorSet AggregatesOnly() { return OperatorSet{}; }

  // The full collection with paper-like sizing.
  static OperatorSet Full() {
    OperatorSet ops;
    ops.bloom = true;
    ops.counting_bloom = true;
    ops.cms = true;
    ops.hll = true;
    ops.histogram = true;
    ops.quantile = true;
    ops.reservoir = true;
    ops.spacesaving = true;
    return ops;
  }

  // The §7.2.2 microbenchmark set: Count, Sum, Bloom filter, CMS.
  static OperatorSet Microbench() {
    OperatorSet ops;
    ops.bloom = true;
    ops.cms = true;
    return ops;
  }

  // Instantiates fresh (empty) summaries for one window. `seed` fixes the
  // randomized operators (quantile compaction coin, reservoir) so replays
  // are deterministic.
  std::vector<std::unique_ptr<Summary>> CreateAll(uint64_t seed) const;

  void Serialize(Writer& writer) const;
  static StatusOr<OperatorSet> Deserialize(Reader& reader);
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_OPERATORS_H_
