#include "src/core/operators.h"

#include "src/sketch/aggregates.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/counting_bloom.h"
#include "src/sketch/histogram.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/quantile.h"
#include "src/sketch/reservoir.h"
#include "src/sketch/spacesaving.h"

namespace ss {

std::vector<std::unique_ptr<Summary>> OperatorSet::CreateAll(uint64_t seed) const {
  std::vector<std::unique_ptr<Summary>> out;
  if (count) {
    out.push_back(std::make_unique<CountSummary>());
  }
  if (sum) {
    out.push_back(std::make_unique<SumSummary>());
  }
  if (minmax) {
    out.push_back(std::make_unique<MinMaxSummary>());
  }
  if (bloom) {
    out.push_back(std::make_unique<BloomFilter>(bloom_bits, bloom_hashes));
  }
  if (counting_bloom) {
    out.push_back(std::make_unique<CountingBloomFilter>(cbf_counters, cbf_hashes));
  }
  if (cms) {
    out.push_back(std::make_unique<CountMinSketch>(cms_width, cms_depth));
  }
  if (hll) {
    out.push_back(std::make_unique<HyperLogLog>(hll_precision));
  }
  if (histogram) {
    out.push_back(std::make_unique<Histogram>(hist_lo, hist_hi, hist_buckets));
  }
  if (quantile) {
    out.push_back(std::make_unique<QuantileSketch>(quantile_k, Mix64(seed ^ 0x71)) );
  }
  if (reservoir) {
    out.push_back(std::make_unique<ReservoirSample>(reservoir_capacity, Mix64(seed ^ 0x52)));
  }
  if (spacesaving) {
    out.push_back(std::make_unique<SpaceSavingSketch>(spacesaving_capacity));
  }
  return out;
}

void OperatorSet::Serialize(Writer& writer) const {
  uint32_t flags = 0;
  flags |= count ? 1u << 0 : 0;
  flags |= sum ? 1u << 1 : 0;
  flags |= minmax ? 1u << 2 : 0;
  flags |= bloom ? 1u << 3 : 0;
  flags |= counting_bloom ? 1u << 4 : 0;
  flags |= cms ? 1u << 5 : 0;
  flags |= hll ? 1u << 6 : 0;
  flags |= histogram ? 1u << 7 : 0;
  flags |= quantile ? 1u << 8 : 0;
  flags |= reservoir ? 1u << 9 : 0;
  flags |= spacesaving ? 1u << 10 : 0;
  writer.PutVarint(flags);
  writer.PutVarint(bloom_bits);
  writer.PutVarint(bloom_hashes);
  writer.PutVarint(cbf_counters);
  writer.PutVarint(cbf_hashes);
  writer.PutVarint(cms_width);
  writer.PutVarint(cms_depth);
  writer.PutVarint(hll_precision);
  writer.PutDouble(hist_lo);
  writer.PutDouble(hist_hi);
  writer.PutVarint(hist_buckets);
  writer.PutVarint(quantile_k);
  writer.PutVarint(reservoir_capacity);
  // Written only when the operator is enabled: OperatorSet is embedded
  // mid-stream (StreamConfig), so an unconditional new field would break the
  // framing of payloads written before the operator existed.
  if (spacesaving) {
    writer.PutVarint(spacesaving_capacity);
  }
}

StatusOr<OperatorSet> OperatorSet::Deserialize(Reader& reader) {
  OperatorSet ops;
  SS_ASSIGN_OR_RETURN(uint64_t flags, reader.ReadVarint());
  ops.count = (flags & (1u << 0)) != 0;
  ops.sum = (flags & (1u << 1)) != 0;
  ops.minmax = (flags & (1u << 2)) != 0;
  ops.bloom = (flags & (1u << 3)) != 0;
  ops.counting_bloom = (flags & (1u << 4)) != 0;
  ops.cms = (flags & (1u << 5)) != 0;
  ops.hll = (flags & (1u << 6)) != 0;
  ops.histogram = (flags & (1u << 7)) != 0;
  ops.quantile = (flags & (1u << 8)) != 0;
  ops.reservoir = (flags & (1u << 9)) != 0;
  ops.spacesaving = (flags & (1u << 10)) != 0;
  SS_ASSIGN_OR_RETURN(uint64_t v, reader.ReadVarint());
  ops.bloom_bits = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.bloom_hashes = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.cbf_counters = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.cbf_hashes = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.cms_width = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.cms_depth = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.hll_precision = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(ops.hist_lo, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(ops.hist_hi, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.hist_buckets = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.quantile_k = static_cast<uint32_t>(v);
  SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
  ops.reservoir_capacity = static_cast<uint32_t>(v);
  if (ops.spacesaving) {  // flag-conditional field; absent in legacy payloads
    SS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
    ops.spacesaving_capacity = static_cast<uint32_t>(v);
  }

  // Validate every enabled operator's configuration so CreateAll can never
  // trip an invariant check on corrupt input.
  auto bad = [] { return Status::Corruption("OperatorSet: invalid configuration"); };
  if (ops.bloom && (ops.bloom_bits == 0 || ops.bloom_bits > (1u << 30) || ops.bloom_hashes == 0 ||
                    ops.bloom_hashes > 64)) {
    return bad();
  }
  if (ops.counting_bloom && (ops.cbf_counters == 0 || ops.cbf_counters > (1u << 28) ||
                             ops.cbf_hashes == 0 || ops.cbf_hashes > 64)) {
    return bad();
  }
  if (ops.cms && (ops.cms_width == 0 || ops.cms_depth == 0 ||
                  static_cast<uint64_t>(ops.cms_width) * ops.cms_depth > (1u << 28))) {
    return bad();
  }
  if (ops.hll && (ops.hll_precision < 4 || ops.hll_precision > 18)) {
    return bad();
  }
  if (ops.histogram && (!(ops.hist_hi > ops.hist_lo) || ops.hist_buckets == 0 ||
                        ops.hist_buckets > (1u << 24))) {
    return bad();
  }
  if (ops.quantile && (ops.quantile_k < 8 || ops.quantile_k > (1u << 24))) {
    return bad();
  }
  if (ops.reservoir && (ops.reservoir_capacity == 0 || ops.reservoir_capacity > (1u << 28))) {
    return bad();
  }
  if (ops.spacesaving &&
      (ops.spacesaving_capacity == 0 || ops.spacesaving_capacity > (1u << 24))) {
    return bad();
  }
  return ops;
}

}  // namespace ss
