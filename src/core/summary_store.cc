#include "src/core/summary_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss {

namespace {

// Maintained across create/delete/open so a flight-bundle metrics snapshot
// always carries the store's stream population.
Gauge& StreamCountGauge() {
  static Gauge& gauge = MetricRegistry::Default().GetGauge("ss_store_stream_count");
  return gauge;
}

}  // namespace

StatusOr<std::unique_ptr<SummaryStore>> SummaryStore::Open(const StoreOptions& options) {
  std::unique_ptr<KvBackend> kv;
  if (options.dir.empty()) {
    kv = std::make_unique<MemoryBackend>();
  } else {
    SS_ASSIGN_OR_RETURN(std::unique_ptr<LsmStore> lsm, LsmStore::Open(options.dir, options.lsm));
    kv = std::move(lsm);
  }
  std::unique_ptr<SummaryStore> store(
      new SummaryStore(std::move(kv), options.fleet_query_threads));

  // Store meta: varint next_id, varint count, then stream ids. No locking:
  // the store is not published to other threads until Open returns.
  auto meta = store->kv_->Get(StoreMetaKey());
  if (meta.ok()) {
    Reader reader(*meta);
    SS_ASSIGN_OR_RETURN(store->next_stream_id_, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      SS_ASSIGN_OR_RETURN(StreamId id, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(std::unique_ptr<Stream> stream, Stream::Load(id, store->kv_.get()));
      store->streams_.emplace(id, std::move(stream));
    }
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }
  StreamCountGauge().Set(static_cast<int64_t>(store->streams_.size()));
  if (options.scrub_interval_ms > 0) {
    store->StartScrubThread(options.scrub_interval_ms, options.scrub_repair);
  }
  return store;
}

SummaryStore::~SummaryStore() {
  if (scrub_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(scrub_mu_);
      scrub_stop_ = true;
    }
    scrub_cv_.notify_all();
    scrub_thread_.join();
  }
}

void SummaryStore::StartScrubThread(uint64_t interval_ms, bool repair) {
  scrub_thread_ = std::thread([this, interval_ms, repair] {
    static Counter& cycles =
        MetricRegistry::Default().GetCounter("ss_core_scrub_cycles_total");
    std::unique_lock<std::mutex> lock(scrub_mu_);
    for (;;) {
      scrub_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return scrub_stop_; });
      if (scrub_stop_) {
        return;
      }
      lock.unlock();
      ScrubReport report;
      Status status = Scrub(repair, &report);
      if (!status.ok()) {
        SS_LOG(Warning) << "background scrub cycle failed: " << status.ToString();
      }
      cycles.Inc();
      lock.lock();
    }
  });
}

Status SummaryStore::Scrub(bool repair, ScrubReport* report) {
  // Force real storage reads: cached LSM blocks would mask on-disk
  // corruption. Resident window payloads are kept — verification always
  // fetches the KV copy regardless, and the resident clean copies are
  // exactly what the repair pass re-flushes from.
  kv_->DropCaches();
  ScrubReport local;
  if (report == nullptr) {
    report = &local;
  }
  uint64_t checked_before = report->windows_checked;
  uint64_t errors_before = report->errors;
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  Status first_error = Status::Ok();
  for (auto& [id, stream] : streams_) {
    std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
    Status status = stream->Scrub(repair, report);
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  FlightRecorder::Default().Record(FlightEventType::kScrubCycle,
                                   report->windows_checked - checked_before,
                                   report->errors - errors_before);
  return first_error;
}

Status SummaryStore::PersistStreamList() {
  Writer writer;
  writer.PutVarint(next_stream_id_);
  writer.PutVarint(streams_.size());
  for (const auto& [id, stream] : streams_) {
    writer.PutVarint(id);
  }
  return kv_->Put(StoreMetaKey(), writer.data());
}

StatusOr<Stream*> SummaryStore::FindStreamLocked(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(id) + " not found");
  }
  return it->second.get();
}

StatusOr<StreamId> SummaryStore::CreateStream(StreamConfig config) {
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  // The id is committed only if creation succeeds (CreateStreamWithIdLocked
  // bumps next_stream_id_ past it); a rejected config leaks nothing.
  const StreamId id = next_stream_id_;
  SS_RETURN_IF_ERROR(CreateStreamWithIdLocked(id, std::move(config)));
  return id;
}

Status SummaryStore::CreateStreamWithId(StreamId id, StreamConfig config) {
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  return CreateStreamWithIdLocked(id, std::move(config));
}

Status SummaryStore::CreateStreamWithIdLocked(StreamId id, StreamConfig config) {
  if (streams_.contains(id)) {
    return Status::AlreadyExists("stream " + std::to_string(id) + " exists");
  }
  if (config.decay == nullptr) {
    return Status::InvalidArgument("stream config requires a decay function");
  }
  next_stream_id_ = std::max(next_stream_id_, id + 1);
  auto stream = std::make_unique<Stream>(id, std::move(config), kv_.get());
  streams_.emplace(id, std::move(stream));
  StreamCountGauge().Set(static_cast<int64_t>(streams_.size()));
  return PersistStreamList();
}

Status SummaryStore::DeleteStream(StreamId id) {
  std::unique_lock<std::shared_mutex> registry(registry_mu_);
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(id) + " not found");
  }
  SS_RETURN_IF_ERROR(it->second->Erase());
  streams_.erase(it);
  StreamCountGauge().Set(static_cast<int64_t>(streams_.size()));
  return PersistStreamList();
}

std::vector<StreamId> SummaryStore::ListStreams() const {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  std::vector<StreamId> ids;
  ids.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) {
    ids.push_back(id);
  }
  return ids;
}

StatusOr<Stream*> SummaryStore::GetStream(StreamId id) {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  return FindStreamLocked(id);
}

Status SummaryStore::Append(StreamId id, Timestamp ts, double value) {
  static Counter& appends = MetricRegistry::Default().GetCounter("ss_core_append_total");
  static LatencyHistogram& append_us =
      MetricRegistry::Default().GetHistogram("ss_core_append_us");
  static LatencyHistogram& lock_wait_us = MetricRegistry::Default().GetHistogram(
      "ss_core_stream_lock_wait_us", "op=\"append\"");
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  appends.Inc();
  // Latency and lock wait are sampled 1-in-64: the extra clock reads cost
  // ~8% of a raw append, well past the 5% instrumentation budget, while a
  // 1/64 sample keeps the histograms honest at any realistic ingest rate.
  if ((appends.value() & 63) == 0) {
    // The flight-recorder append event rides the same 1-in-64 sample so the
    // journal stays inside the <1% append-path overhead budget.
    FlightRecorder::Default().Record(FlightEventType::kAppend, id, 1);
    Stopwatch wait;
    std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
    lock_wait_us.Record(static_cast<uint64_t>(wait.ElapsedMicros()));
    ScopedTimer timer(append_us);
    return stream->Append(ts, value);
  }
  std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
  return stream->Append(ts, value);
}

Status SummaryStore::Append(StreamId id, double value) { return Append(id, NowMicros(), value); }

Status SummaryStore::AppendBatch(StreamId id, std::span<const Event> events) {
  static Counter& appends = MetricRegistry::Default().GetCounter("ss_core_append_total");
  static Counter& batches =
      MetricRegistry::Default().GetCounter("ss_core_append_batch_total");
  static LatencyHistogram& batch_events =
      MetricRegistry::Default().GetHistogram("ss_core_append_batch_events");
  if (events.empty()) {
    return Status::Ok();
  }
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  appends.Inc(events.size());
  batches.Inc();
  batch_events.Record(events.size());
  FlightRecorder::Default().Record(FlightEventType::kAppendBatch, id, events.size());
  std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
  return stream->AppendBatch(events);
}

Status SummaryStore::BeginLandmark(StreamId id, Timestamp ts) {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
  return stream->BeginLandmark(ts);
}

Status SummaryStore::EndLandmark(StreamId id, Timestamp ts) {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
  return stream->EndLandmark(ts);
}

StatusOr<QueryResult> SummaryStore::Query(StreamId id, const QuerySpec& spec) {
  static Counter& queries = MetricRegistry::Default().GetCounter("ss_core_query_total");
  static LatencyHistogram& query_us =
      MetricRegistry::Default().GetHistogram("ss_core_query_us");
  static LatencyHistogram& lock_wait_us = MetricRegistry::Default().GetHistogram(
      "ss_core_stream_lock_wait_us", "op=\"query\"");
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  queries.Inc();
  ScopedTimer timer(query_us);
  // Shared ownership for the whole query: concurrent queries overlap freely,
  // appends to this stream wait (and vice versa — see stream.h).
  Stopwatch wait;
  std::shared_lock<std::shared_mutex> stream_lock(stream->mutex());
  lock_wait_us.Record(static_cast<uint64_t>(wait.ElapsedMicros()));
  if (!spec.collect_trace) {
    return RunQuery(*stream, spec);
  }
  // Explain mode: bracket the query with backend cache counters so the trace
  // reports the block-cache traffic this query caused. (Counters are global:
  // concurrent queries bleed into each other's deltas; explain is a
  // diagnostic, not an isolation domain.)
  KvBackend::CacheStats before = kv_->GetCacheStats();
  StatusOr<QueryResult> result = RunQuery(*stream, spec);
  if (result.ok() && result->trace != nullptr) {
    KvBackend::CacheStats after = kv_->GetCacheStats();
    result->trace->block_cache_hits = after.hits - before.hits;
    result->trace->block_cache_misses = after.misses - before.misses;
  }
  return result;
}

StatusOr<std::vector<Event>> SummaryStore::QueryLandmark(StreamId id, Timestamp t1, Timestamp t2) {
  static Counter& queries = MetricRegistry::Default().GetCounter("ss_core_query_landmark_total");
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  SS_ASSIGN_OR_RETURN(Stream * stream, FindStreamLocked(id));
  queries.Inc();
  std::shared_lock<std::shared_mutex> stream_lock(stream->mutex());
  return stream->QueryLandmarks(t1, t2);
}

ThreadPool* SummaryStore::FleetPool() {
  if (fleet_query_threads_ == 1) {
    return nullptr;  // explicit serial configuration
  }
  std::call_once(pool_once_, [this] {
    size_t threads = fleet_query_threads_ == 0 ? ThreadPool::DefaultThreadCount()
                                               : fleet_query_threads_;
    static Gauge& queue_depth =
        MetricRegistry::Default().GetGauge("ss_core_fleet_pool_queue_depth");
    static LatencyHistogram& queue_us =
        MetricRegistry::Default().GetHistogram("ss_core_fleet_task_queue_us");
    fleet_pool_ = std::make_unique<ThreadPool>(
        threads, [](uint64_t queue_wait_us, size_t depth) {
          queue_us.Record(queue_wait_us);
          queue_depth.Set(static_cast<int64_t>(depth));
        });
    MetricRegistry::Default()
        .GetGauge("ss_core_fleet_pool_threads")
        .Set(static_cast<int64_t>(threads));
  });
  return fleet_pool_.get();
}

StatusOr<QueryResult> SummaryStore::QueryAggregate(std::span<const StreamId> ids,
                                                   const QuerySpec& spec) {
  if (ids.empty()) {
    return Status::InvalidArgument("QueryAggregate requires at least one stream");
  }
  const bool additive = spec.op == QueryOp::kCount || spec.op == QueryOp::kSum;
  const bool extremum = spec.op == QueryOp::kMin || spec.op == QueryOp::kMax;
  if (!additive && !extremum) {
    return Status::InvalidArgument("QueryAggregate supports count, sum, min, max");
  }
  static Counter& fleet_queries =
      MetricRegistry::Default().GetCounter("ss_core_query_aggregate_total");
  static LatencyHistogram& fleet_streams =
      MetricRegistry::Default().GetHistogram("ss_core_query_aggregate_streams");
  fleet_queries.Inc();
  fleet_streams.Record(ids.size());

  // Ascending stream-id order makes the floating-point merge deterministic
  // regardless of the caller's id order or worker scheduling.
  std::vector<StreamId> ordered(ids.begin(), ids.end());
  std::sort(ordered.begin(), ordered.end());

  // Fan the per-stream queries out on the worker pool. Each sub-query takes
  // the registry and stream locks itself; no lock is held while waiting on
  // the futures, so lifecycle writers can never deadlock against a fleet
  // query (a stream deleted mid-flight surfaces as its NotFound status).
  std::vector<StatusOr<QueryResult>> results;
  results.reserve(ordered.size());
  ThreadPool* pool = ordered.size() > 1 ? FleetPool() : nullptr;
  if (pool == nullptr) {
    for (StreamId id : ordered) {
      results.push_back(Query(id, spec));
    }
  } else {
    static Counter& fleet_tasks =
        MetricRegistry::Default().GetCounter("ss_core_fleet_tasks_total");
    std::vector<std::future<StatusOr<QueryResult>>> futures;
    futures.reserve(ordered.size());
    for (StreamId id : ordered) {
      fleet_tasks.Inc();
      futures.push_back(pool->Submit([this, id, &spec] { return Query(id, spec); }));
    }
    for (auto& future : futures) {
      results.push_back(future.get());
    }
  }

  QueryResult combined;
  combined.confidence = spec.confidence;
  combined.exact = true;
  double variance = 0.0;  // from per-stream CI half-widths, quadrature
  struct Candidate {
    double estimate;
    double ci_lo;
    double ci_hi;
  };
  std::vector<Candidate> candidates;  // extremum path only
  for (const StatusOr<QueryResult>& result : results) {
    SS_RETURN_IF_ERROR(result.status());
    combined.windows_read += result->windows_read;
    combined.landmark_events += result->landmark_events;
    combined.exact = combined.exact && result->exact;
    if (result->degraded) {
      combined.degraded = true;
      combined.skipped_spans.insert(combined.skipped_spans.end(),
                                    result->skipped_spans.begin(),
                                    result->skipped_spans.end());
    }
    if (additive) {
      combined.estimate += result->estimate;
      double hw = result->CiWidth() / 2.0;
      variance += hw * hw;
    } else {
      candidates.push_back(Candidate{result->estimate, result->ci_lo, result->ci_hi});
    }
  }
  if (additive) {
    double hw = std::sqrt(variance);
    combined.ci_lo = combined.estimate - hw;
    combined.ci_hi = combined.estimate + hw;
    // Counts cannot go negative; sums over negative-valued streams can, so
    // only the count CI clamps its lower bound at zero.
    if (spec.op == QueryOp::kCount) {
      combined.ci_lo = std::max(0.0, combined.ci_lo);
    }
  } else {
    const bool is_min = spec.op == QueryOp::kMin;
    size_t win = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      bool better = is_min ? candidates[i].estimate < candidates[win].estimate
                           : candidates[i].estimate > candidates[win].estimate;
      if (better) {
        win = i;
      }
    }
    combined.estimate = candidates[win].estimate;
    // Any stream whose interval overlaps the winner's could hold the true
    // extremum; the combined CI is the envelope of those candidates. With
    // all sub-answers exact this degenerates to the point estimate.
    combined.ci_lo = candidates[win].ci_lo;
    combined.ci_hi = candidates[win].ci_hi;
    for (const Candidate& c : candidates) {
      bool contender = is_min ? c.ci_lo <= candidates[win].ci_hi
                              : c.ci_hi >= candidates[win].ci_lo;
      if (contender) {
        combined.ci_lo = std::min(combined.ci_lo, c.ci_lo);
        combined.ci_hi = std::max(combined.ci_hi, c.ci_hi);
      }
    }
  }
  return combined;
}

Status SummaryStore::Flush() {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  for (auto& [id, stream] : streams_) {
    std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
    SS_RETURN_IF_ERROR(stream->Flush());
  }
  return kv_->Flush();
}

Status SummaryStore::EvictAll() {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  for (auto& [id, stream] : streams_) {
    std::unique_lock<std::shared_mutex> stream_lock(stream->mutex());
    SS_RETURN_IF_ERROR(stream->EvictAllWindows());
  }
  return kv_->Flush();
}

void SummaryStore::DropCaches() {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  for (auto& [id, stream] : streams_) {
    // Shared suffices: payload drops are guarded by the stream's internal
    // cache mutex, and clean/dirty flags only change under exclusive locks.
    std::shared_lock<std::shared_mutex> stream_lock(stream->mutex());
    stream->DropCleanWindowPayloads();
  }
  kv_->DropCaches();
}

uint64_t SummaryStore::TotalSizeBytes() const {
  std::shared_lock<std::shared_mutex> registry(registry_mu_);
  uint64_t bytes = 0;
  for (const auto& [id, stream] : streams_) {
    std::shared_lock<std::shared_mutex> stream_lock(stream->mutex());
    bytes += stream->SizeBytes();
  }
  return bytes;
}

}  // namespace ss
