#include "src/core/summary_store.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace ss {

StatusOr<std::unique_ptr<SummaryStore>> SummaryStore::Open(const StoreOptions& options) {
  std::unique_ptr<KvBackend> kv;
  if (options.dir.empty()) {
    kv = std::make_unique<MemoryBackend>();
  } else {
    SS_ASSIGN_OR_RETURN(std::unique_ptr<LsmStore> lsm, LsmStore::Open(options.dir, options.lsm));
    kv = std::move(lsm);
  }
  std::unique_ptr<SummaryStore> store(new SummaryStore(std::move(kv)));

  // Store meta: varint next_id, varint count, then stream ids.
  auto meta = store->kv_->Get(StoreMetaKey());
  if (meta.ok()) {
    Reader reader(*meta);
    SS_ASSIGN_OR_RETURN(store->next_stream_id_, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      SS_ASSIGN_OR_RETURN(StreamId id, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(std::unique_ptr<Stream> stream, Stream::Load(id, store->kv_.get()));
      store->streams_.emplace(id, std::move(stream));
    }
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }
  return store;
}

Status SummaryStore::PersistStreamList() {
  Writer writer;
  writer.PutVarint(next_stream_id_);
  writer.PutVarint(streams_.size());
  for (const auto& [id, stream] : streams_) {
    writer.PutVarint(id);
  }
  return kv_->Put(StoreMetaKey(), writer.data());
}

StatusOr<StreamId> SummaryStore::CreateStream(StreamConfig config) {
  StreamId id = next_stream_id_++;
  SS_RETURN_IF_ERROR(CreateStreamWithId(id, std::move(config)));
  return id;
}

Status SummaryStore::CreateStreamWithId(StreamId id, StreamConfig config) {
  if (streams_.contains(id)) {
    return Status::AlreadyExists("stream " + std::to_string(id) + " exists");
  }
  if (config.decay == nullptr) {
    return Status::InvalidArgument("stream config requires a decay function");
  }
  next_stream_id_ = std::max(next_stream_id_, id + 1);
  auto stream = std::make_unique<Stream>(id, std::move(config), kv_.get());
  streams_.emplace(id, std::move(stream));
  return PersistStreamList();
}

Status SummaryStore::DeleteStream(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(id) + " not found");
  }
  SS_RETURN_IF_ERROR(it->second->Erase());
  streams_.erase(it);
  return PersistStreamList();
}

std::vector<StreamId> SummaryStore::ListStreams() const {
  std::vector<StreamId> ids;
  ids.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) {
    ids.push_back(id);
  }
  return ids;
}

StatusOr<Stream*> SummaryStore::GetStream(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(id) + " not found");
  }
  return it->second.get();
}

Status SummaryStore::Append(StreamId id, Timestamp ts, double value) {
  static Counter& appends = MetricRegistry::Default().GetCounter("ss_core_append_total");
  static LatencyHistogram& append_us =
      MetricRegistry::Default().GetHistogram("ss_core_append_us");
  SS_ASSIGN_OR_RETURN(Stream * stream, GetStream(id));
  appends.Inc();
  // Latency is sampled 1-in-64: the two clock reads of a ScopedTimer cost
  // ~8% of a raw append, well past the 5% instrumentation budget, while a
  // 1/64 sample keeps the histogram honest at any realistic ingest rate.
  if ((appends.value() & 63) == 0) {
    ScopedTimer timer(append_us);
    return stream->Append(ts, value);
  }
  return stream->Append(ts, value);
}

Status SummaryStore::Append(StreamId id, double value) { return Append(id, NowMicros(), value); }

Status SummaryStore::BeginLandmark(StreamId id, Timestamp ts) {
  SS_ASSIGN_OR_RETURN(Stream * stream, GetStream(id));
  return stream->BeginLandmark(ts);
}

Status SummaryStore::EndLandmark(StreamId id, Timestamp ts) {
  SS_ASSIGN_OR_RETURN(Stream * stream, GetStream(id));
  return stream->EndLandmark(ts);
}

StatusOr<QueryResult> SummaryStore::Query(StreamId id, const QuerySpec& spec) {
  static Counter& queries = MetricRegistry::Default().GetCounter("ss_core_query_total");
  static LatencyHistogram& query_us =
      MetricRegistry::Default().GetHistogram("ss_core_query_us");
  SS_ASSIGN_OR_RETURN(Stream * stream, GetStream(id));
  queries.Inc();
  ScopedTimer timer(query_us);
  if (!spec.collect_trace) {
    return RunQuery(*stream, spec);
  }
  // Explain mode: bracket the query with backend cache counters so the trace
  // reports the block-cache traffic this query caused.
  KvBackend::CacheStats before = kv_->GetCacheStats();
  StatusOr<QueryResult> result = RunQuery(*stream, spec);
  if (result.ok() && result->trace != nullptr) {
    KvBackend::CacheStats after = kv_->GetCacheStats();
    result->trace->block_cache_hits = after.hits - before.hits;
    result->trace->block_cache_misses = after.misses - before.misses;
  }
  return result;
}

StatusOr<std::vector<Event>> SummaryStore::QueryLandmark(StreamId id, Timestamp t1, Timestamp t2) {
  static Counter& queries = MetricRegistry::Default().GetCounter("ss_core_query_landmark_total");
  SS_ASSIGN_OR_RETURN(Stream * stream, GetStream(id));
  queries.Inc();
  return stream->QueryLandmarks(t1, t2);
}

StatusOr<QueryResult> SummaryStore::QueryAggregate(std::span<const StreamId> ids,
                                                   const QuerySpec& spec) {
  if (ids.empty()) {
    return Status::InvalidArgument("QueryAggregate requires at least one stream");
  }
  const bool additive = spec.op == QueryOp::kCount || spec.op == QueryOp::kSum;
  const bool extremum = spec.op == QueryOp::kMin || spec.op == QueryOp::kMax;
  if (!additive && !extremum) {
    return Status::InvalidArgument("QueryAggregate supports count, sum, min, max");
  }
  static Counter& fleet_queries =
      MetricRegistry::Default().GetCounter("ss_core_query_aggregate_total");
  static LatencyHistogram& fleet_streams =
      MetricRegistry::Default().GetHistogram("ss_core_query_aggregate_streams");
  fleet_queries.Inc();
  fleet_streams.Record(ids.size());

  QueryResult combined;
  combined.confidence = spec.confidence;
  combined.exact = true;
  double variance = 0.0;  // from per-stream CI half-widths, quadrature
  bool first = true;
  for (StreamId id : ids) {
    SS_ASSIGN_OR_RETURN(QueryResult result, Query(id, spec));
    combined.windows_read += result.windows_read;
    combined.landmark_events += result.landmark_events;
    combined.exact = combined.exact && result.exact;
    if (additive) {
      combined.estimate += result.estimate;
      double hw = result.CiWidth() / 2.0;
      variance += hw * hw;
    } else {
      bool better = first || (spec.op == QueryOp::kMin ? result.estimate < combined.estimate
                                                       : result.estimate > combined.estimate);
      if (better) {
        combined.estimate = result.estimate;
      }
    }
    first = false;
  }
  if (additive) {
    double hw = std::sqrt(variance);
    combined.ci_lo = std::max(0.0, combined.estimate - hw);
    combined.ci_hi = combined.estimate + hw;
  } else {
    combined.ci_lo = combined.ci_hi = combined.estimate;
  }
  return combined;
}

Status SummaryStore::Flush() {
  for (auto& [id, stream] : streams_) {
    SS_RETURN_IF_ERROR(stream->Flush());
  }
  return kv_->Flush();
}

Status SummaryStore::EvictAll() {
  for (auto& [id, stream] : streams_) {
    SS_RETURN_IF_ERROR(stream->EvictAllWindows());
  }
  return kv_->Flush();
}

void SummaryStore::DropCaches() {
  for (auto& [id, stream] : streams_) {
    stream->DropCleanWindowPayloads();
  }
  kv_->DropCaches();
}

uint64_t SummaryStore::TotalSizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& [id, stream] : streams_) {
    bytes += stream->SizeBytes();
  }
  return bytes;
}

}  // namespace ss
