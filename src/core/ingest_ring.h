// Striped lock-free ingest front (§7.1 "write throughput"): producer threads
// enqueue (ts, value) pairs into private SPSC rings without ever touching the
// stream's shared_mutex; one merge worker per front drains every ring,
// restores timestamp order across producers, and owns all window mutation by
// handing sorted batches to SummaryStore::AppendBatch. The stream lock is
// therefore taken by exactly one thread, turning N producers × per-append
// lock traffic into wait-free ring pushes plus one batched consumer.
//
// Backpressure mirrors the sserver admission modes (ss::net::Server::
// Backpressure): a full ring either blocks the producer (kBlock, lossless)
// or sheds the event (kShed, counted and reported to the caller).
//
// Ordering contract: each drain sweep is sorted before it is appended, so
// events are in timestamp order *within* a sweep, but an event can linger in
// a slow producer's ring while newer timestamps from other rings are drained.
// With multiple producers the target stream must therefore be configured
// with StreamConfig::reorder_buffer at least the worst-case cross-ring skew.
// Note the skew is NOT bounded by ring capacity alone: a producer
// descheduled between obtaining a timestamp and pushing it can be overtaken
// by arbitrarily many newer stamps, so callers must either bound producer
// lag themselves (e.g. re-sync producers every K events, capping the skew
// at (P-1)*K) or size the slack to the peers' remaining event budget. A
// skew overrun makes the stream's monotone-watermark check reject the late
// batch; the failure is sticky and reported through Drain()/status().
#ifndef SUMMARYSTORE_SRC_CORE_INGEST_RING_H_
#define SUMMARYSTORE_SRC_CORE_INGEST_RING_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/summary_store.h"

namespace ss {

struct IngestRingOptions {
  // Events per producer ring; rounded up to a power of two.
  size_t ring_capacity = 4096;
  // Full-ring policy, mirroring ss::net::Server::Backpressure.
  enum class Policy : uint8_t { kBlock = 0, kShed = 1 };
  Policy policy = Policy::kBlock;
  // Hard cap on RegisterProducer calls (rings are allocated eagerly so the
  // drain loop never takes a lock).
  size_t max_producers = 16;
  // Max events the worker hands to AppendBatch per drain sweep.
  size_t drain_batch = 4096;
};

// Single-producer single-consumer bounded event queue. Push and pop are
// wait-free: one relaxed load of the opposing cursor (refreshed on apparent
// full/empty), acquire/release publication, no CAS.
class SpscRing {
 public:
  explicit SpscRing(size_t capacity);

  // Producer side. Returns false when the ring is full.
  bool TryPush(const Event& event);

  // Consumer side: pops up to `max` events into `out`, returns the count.
  size_t PopBatch(Event* out, size_t max);

  size_t capacity() const { return mask_ + 1; }
  // Approximate occupancy (racy by design; used for depth telemetry).
  size_t SizeApprox() const;

 private:
  std::vector<Event> slots_;
  size_t mask_;
  // Producer and consumer cursors on separate cache lines, each with a local
  // cache of the opposing cursor to keep the hot path single-load.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next write (producer-owned)
  alignas(64) std::atomic<uint64_t> head_{0};  // next read (consumer-owned)
};

// One stream's striped ingest front. Typical use:
//
//   IngestFront front(store, stream_id);
//   // per producer thread:
//   IngestFront::Producer* p = front.RegisterProducer();
//   while (...) SS_RETURN_IF_ERROR(p->Offer(ts, value));
//   // when done:
//   front.Drain();   // rings empty, appends applied
//   front.Stop();    // joins the worker; further Offers fail
class IngestFront {
 public:
  // A registered producer's handle; owned by the front, valid until Stop().
  // Each handle is single-threaded (SPSC contract); distinct producers may
  // run on distinct threads concurrently.
  class Producer {
   public:
    // Enqueues one event. kBlock: waits (spin + yield) for ring space, so Ok
    // is the only non-shutdown outcome. kShed: drops the event and returns
    // FailedPrecondition when the ring is full (the sserver shed-status
    // convention). FailedPrecondition after Stop().
    Status Offer(Timestamp ts, double value);

   private:
    friend class IngestFront;
    Producer(IngestFront* front, size_t slot) : front_(front), slot_(slot) {}
    IngestFront* front_;
    size_t slot_;
  };

  IngestFront(SummaryStore& store, StreamId stream, IngestRingOptions options = {});
  ~IngestFront();

  // Registers (or re-uses) the next producer ring. Null once max_producers
  // handles are out. Thread-safe.
  Producer* RegisterProducer();

  // Blocks until everything enqueued before the call has been appended.
  // Returns the sticky ingest status (first append failure, if any).
  Status Drain();

  // Drain + join the worker. Idempotent; Offers after Stop fail.
  void Stop();

  // First append error the worker hit, sticky. Events offered after a
  // failure are still consumed but dropped (counted as shed).
  Status status() const;

  uint64_t shed_count() const { return shed_.load(std::memory_order_relaxed); }

 private:
  bool PushBlocking(size_t slot, const Event& event);
  void WorkerLoop();
  // One sweep over all rings: drain, sort by timestamp, append. Returns the
  // number of events consumed.
  size_t DrainOnce();

  SummaryStore& store_;
  const StreamId stream_;
  const IngestRingOptions options_;

  std::vector<std::unique_ptr<SpscRing>> rings_;  // sized max_producers up front
  std::vector<std::unique_ptr<Producer>> producers_;
  std::atomic<size_t> producer_count_{0};
  std::mutex register_mu_;

  std::thread worker_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> shed_{0};

  // Sticky first failure, published by the worker.
  mutable std::mutex status_mu_;
  Status status_;
  std::atomic<bool> failed_{false};

  // Drain handshake: producers count enqueues, the worker counts consumed
  // events; Drain waits for consumed >= enqueued-at-call while rings empty.
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> consumed_{0};
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_INGEST_RING_H_
