#include "src/core/decay.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ss {

namespace {

enum class DecayTag : uint8_t { kPowerLaw = 1, kExponential = 2, kUniform = 3 };

// Saturating integer power; window lengths can exceed any stream we ingest
// but must not overflow while we compute them.
uint64_t SatPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    if (result > UINT64_MAX / (base == 0 ? 1 : base)) {
      return UINT64_MAX;
    }
    result *= base;
  }
  return result;
}

uint64_t SatAdd(uint64_t a, uint64_t b) { return a > UINT64_MAX - b ? UINT64_MAX : a + b; }

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a > UINT64_MAX / b ? UINT64_MAX : a * b;
}

}  // namespace

// -------------------------------------------------------------- PowerLawDecay

PowerLawDecay::PowerLawDecay(uint32_t p, uint32_t q, uint32_t r, uint32_t s)
    : p_(p), q_(q), r_(r), s_(s) {
  SS_CHECK(p >= 1) << "PowerLawDecay: p must be >= 1";
  SS_CHECK(p + q >= 1) << "PowerLawDecay: p+q must be >= 1";
  SS_CHECK(r >= 1 && s >= 1) << "PowerLawDecay: R and S must be >= 1";
}

void PowerLawDecay::ExtendGroupsTo(uint64_t k) const {
  while (group_end_.empty() || group_end_.back() <= k) {
    uint64_t j = group_end_.size() + 1;  // 1-based group index
    uint64_t count = SatMul(r_, SatPow(j, p_ - 1));
    uint64_t prev = group_end_.empty() ? 0 : group_end_.back();
    group_end_.push_back(SatAdd(prev, count));
  }
}

uint64_t PowerLawDecay::WindowLength(uint64_t k) const {
  ExtendGroupsTo(k);
  auto it = std::upper_bound(group_end_.begin(), group_end_.end(), k);
  uint64_t j = static_cast<uint64_t>(it - group_end_.begin()) + 1;  // group of window k
  return SatMul(s_, SatPow(j, q_));
}

std::string PowerLawDecay::Describe() const {
  return "PowerLaw(" + std::to_string(p_) + "," + std::to_string(q_) + "," + std::to_string(r_) +
         "," + std::to_string(s_) + ")";
}

std::unique_ptr<DecayFunction> PowerLawDecay::Clone() const {
  return std::make_unique<PowerLawDecay>(p_, q_, r_, s_);
}

void PowerLawDecay::Serialize(Writer& writer) const {
  writer.PutU8(static_cast<uint8_t>(DecayTag::kPowerLaw));
  writer.PutVarint(p_);
  writer.PutVarint(q_);
  writer.PutVarint(r_);
  writer.PutVarint(s_);
}

// ----------------------------------------------------------- ExponentialDecay

ExponentialDecay::ExponentialDecay(double b, uint32_t r, uint32_t s) : b_(b), r_(r), s_(s) {
  SS_CHECK(b >= 1.0001) << "ExponentialDecay: b must exceed 1";
  SS_CHECK(r >= 1 && s >= 1) << "ExponentialDecay: R and S must be >= 1";
}

uint64_t ExponentialDecay::WindowLength(uint64_t k) const {
  // R windows per group; group j (0-based) has length S·b^j, so
  // Exponential(2,1,1) yields the classic 1,2,4,8,... windowing of Figure 3.
  uint64_t j = k / r_;
  double len = static_cast<double>(s_) * std::pow(b_, static_cast<double>(j));
  if (len >= 9e18) {
    return UINT64_MAX;
  }
  return std::max<uint64_t>(1, static_cast<uint64_t>(len));
}

std::string ExponentialDecay::Describe() const {
  return "Exponential(" + std::to_string(b_) + "," + std::to_string(r_) + "," +
         std::to_string(s_) + ")";
}

std::unique_ptr<DecayFunction> ExponentialDecay::Clone() const {
  return std::make_unique<ExponentialDecay>(b_, r_, s_);
}

void ExponentialDecay::Serialize(Writer& writer) const {
  writer.PutU8(static_cast<uint8_t>(DecayTag::kExponential));
  writer.PutDouble(b_);
  writer.PutVarint(r_);
  writer.PutVarint(s_);
}

// ---------------------------------------------------------------- UniformDecay

UniformDecay::UniformDecay(uint64_t window_length) : window_length_(window_length) {
  SS_CHECK(window_length >= 1) << "UniformDecay: window length must be >= 1";
}

uint64_t UniformDecay::WindowLength(uint64_t /*k*/) const { return window_length_; }

std::string UniformDecay::Describe() const {
  return "Uniform(" + std::to_string(window_length_) + ")";
}

std::unique_ptr<DecayFunction> UniformDecay::Clone() const {
  return std::make_unique<UniformDecay>(window_length_);
}

void UniformDecay::Serialize(Writer& writer) const {
  writer.PutU8(static_cast<uint8_t>(DecayTag::kUniform));
  writer.PutVarint(window_length_);
}

StatusOr<std::unique_ptr<DecayFunction>> DeserializeDecay(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  switch (static_cast<DecayTag>(tag)) {
    case DecayTag::kPowerLaw: {
      SS_ASSIGN_OR_RETURN(uint64_t p, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(uint64_t q, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(uint64_t r, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(uint64_t s, reader.ReadVarint());
      if (p < 1 || p > 16 || q > 16 || r < 1 || r > UINT32_MAX || s < 1 || s > UINT32_MAX) {
        return Status::Corruption("PowerLawDecay: parameters out of range");
      }
      return std::unique_ptr<DecayFunction>(
          std::make_unique<PowerLawDecay>(static_cast<uint32_t>(p), static_cast<uint32_t>(q),
                                          static_cast<uint32_t>(r), static_cast<uint32_t>(s)));
    }
    case DecayTag::kExponential: {
      SS_ASSIGN_OR_RETURN(double b, reader.ReadDouble());
      SS_ASSIGN_OR_RETURN(uint64_t r, reader.ReadVarint());
      SS_ASSIGN_OR_RETURN(uint64_t s, reader.ReadVarint());
      if (!(b >= 1.0001) || !(b <= 1e6) || r < 1 || r > UINT32_MAX || s < 1 || s > UINT32_MAX) {
        return Status::Corruption("ExponentialDecay: parameters out of range");
      }
      return std::unique_ptr<DecayFunction>(std::make_unique<ExponentialDecay>(
          b, static_cast<uint32_t>(r), static_cast<uint32_t>(s)));
    }
    case DecayTag::kUniform: {
      SS_ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint());
      if (len < 1) {
        return Status::Corruption("UniformDecay: zero window length");
      }
      return std::unique_ptr<DecayFunction>(std::make_unique<UniformDecay>(len));
    }
  }
  return Status::Corruption("unknown decay function tag");
}

// --------------------------------------------------------------- DecaySequence

DecaySequence::DecaySequence(std::shared_ptr<const DecayFunction> decay)
    : decay_(std::move(decay)) {
  boundaries_.push_back(0);
}

void DecaySequence::ExtendTo(uint64_t k) const {
  while (boundaries_.size() <= k + 1) {
    uint64_t next_idx = boundaries_.size() - 1;  // window index being added
    boundaries_.push_back(SatAdd(boundaries_.back(), decay_->WindowLength(next_idx)));
  }
}

void DecaySequence::ExtendUntilBoundary(uint64_t n) const {
  while (boundaries_.back() < n) {
    uint64_t next_idx = boundaries_.size() - 1;
    boundaries_.push_back(SatAdd(boundaries_.back(), decay_->WindowLength(next_idx)));
  }
}

uint64_t DecaySequence::WindowLength(uint64_t k) const {
  ExtendTo(k);
  return boundaries_[k + 1] - boundaries_[k];
}

uint64_t DecaySequence::BucketBoundary(uint64_t k) const {
  ExtendTo(k == 0 ? 0 : k - 1);
  if (k >= boundaries_.size()) {
    ExtendTo(k);
  }
  return boundaries_[k];
}

uint64_t DecaySequence::FirstBucketWithLengthAtLeast(uint64_t len) const {
  // Lengths are non-decreasing, so find any index satisfying the request by
  // doubling probes, then binary-search below it. Non-growing sequences
  // (UniformDecay, power law with q=0) may never reach `len`; return the
  // kNoBucket sentinel after a generous probe horizon — such pairs simply
  // never merge.
  uint64_t k = 1;
  while (decay_->WindowLength(k) < len) {
    if (k >= (uint64_t{1} << 40)) {
      return kNoBucket;
    }
    k *= 2;
  }
  ExtendTo(k);
  // Binary search for the first index with length >= len.
  uint64_t lo = 0;
  uint64_t hi = k;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (WindowLength(mid) >= len) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

uint64_t DecaySequence::FirstBoundaryGreaterThan(uint64_t x) const {
  ExtendUntilBoundary(x == UINT64_MAX ? x : x + 1);
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  return static_cast<uint64_t>(it - boundaries_.begin());
}

uint64_t DecaySequence::WindowCountFor(uint64_t n) const {
  ExtendUntilBoundary(n);
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), n);
  return static_cast<uint64_t>(it - boundaries_.begin());
}

}  // namespace ss
