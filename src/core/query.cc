#include "src/core/query.h"

#include <algorithm>
#include <cmath>

#include "src/core/estimator.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sketch/aggregates.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/counting_bloom.h"
#include "src/sketch/histogram.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/quantile.h"
#include "src/sketch/spacesaving.h"

namespace ss {

namespace {

// Length of the intersection of half-open spans [s1, e1) and [s2, e2).
double SpanOverlap(double s1, double e1, double s2, double e2) {
  return std::max(0.0, std::min(e1, e2) - std::max(s1, s2));
}

// One window's contribution geometry: query∩cover boundaries plus the
// landmark-hollowed effective fractions of §5.1.
struct Overlap {
  Timestamp a;   // query∩cover start (inclusive)
  Timestamp b;   // query∩cover end (exclusive)
  double frac;   // t_eff / T_eff in [0, 1]
  bool full;     // the query fully covers the window's (hollowed) span
};

Overlap ComputeOverlap(const Stream& stream, const Stream::WindowView& view, Timestamp t1,
                       Timestamp t2) {
  Overlap o;
  if (view.cover_end <= view.cover_start) {
    // Degenerate cover: several windows share a start timestamp (high-rate
    // streams with quantized clocks). All of this window's events sit at the
    // single instant cover_start; a query containing that instant gets the
    // whole window, any other query gets none of it.
    bool hit = t1 <= view.cover_start && view.cover_start <= t2;
    o.a = view.cover_start;
    o.b = hit ? view.cover_start + 1 : view.cover_start;
    o.frac = hit ? 1.0 : 0.0;
    o.full = true;
    return o;
  }
  o.a = std::max(t1, view.cover_start);
  o.b = std::min(t2 + 1, view.cover_end);
  double cover_len = static_cast<double>(view.cover_end - view.cover_start);
  double overlap_len = static_cast<double>(o.b - o.a);

  // Hollow out landmark spans (§4.3): both the window span and the query
  // overlap shrink by their intersection with landmark intervals.
  double lm_in_window = 0.0;
  double lm_in_overlap = 0.0;
  for (const LandmarkWindow* lm : stream.LandmarksOverlapping(view.cover_start,
                                                              view.cover_end - 1)) {
    double lm_start = static_cast<double>(lm->ts_start);
    double lm_end = static_cast<double>(lm->ts_end) + 1.0;
    lm_in_window += SpanOverlap(lm_start, lm_end, static_cast<double>(view.cover_start),
                                static_cast<double>(view.cover_end));
    lm_in_overlap += SpanOverlap(lm_start, lm_end, static_cast<double>(o.a),
                                 static_cast<double>(o.b));
  }
  double t_eff = std::max(0.0, overlap_len - lm_in_overlap);
  double big_t_eff = std::max(0.0, cover_len - lm_in_window);
  if (big_t_eff <= 0.0) {
    o.frac = 0.0;
    o.full = true;  // nothing summarized lives here
  } else {
    o.frac = std::clamp(t_eff / big_t_eff, 0.0, 1.0);
    o.full = o.frac >= 1.0;
  }
  return o;
}

const CountSummary* GetCount(const SummaryWindow& window) {
  return SummaryCast<CountSummary>(window.Find(SummaryKind::kCount));
}

// One span of missing data inside the query range: a quarantined window
// (view.window == nullptr) or the lost-element remnant a scrub repair folded
// into a surviving window. The element count is known exactly from the
// window index even though the data is gone; what's unknown is where inside
// [a, b) those elements sit and what their values were.
struct MissingPart {
  Timestamp a;     // query∩span start (inclusive)
  Timestamp b;     // query∩span end (exclusive)
  uint64_t count;  // lost elements attributed to this span
  double frac;     // estimated share of the span inside the query
  bool full;       // the query covers the entire span: all `count` elements
                   // are certainly inside the range (values still unknown)
};

std::vector<MissingPart> CollectMissing(const Stream& stream,
                                        const std::vector<Stream::WindowView>& views,
                                        Timestamp t1, Timestamp t2) {
  std::vector<MissingPart> parts;
  for (const auto& view : views) {
    uint64_t count = view.window != nullptr ? view.window->lost_count() : view.missing_count;
    if (count == 0) {
      continue;
    }
    Overlap o = ComputeOverlap(stream, view, t1, t2);
    if (o.b <= o.a) {
      continue;
    }
    // A fully covered span contributes all of its lost elements. A partial
    // overlap keeps its proportional share for the point estimate, but the
    // interval still brackets every possible placement ([0, count]) below —
    // even at frac == 0, where the elements merely *probably* aren't here.
    double frac = o.full ? 1.0 : std::max(0.0, o.frac);
    parts.push_back(MissingPart{o.a, o.b, count, frac, o.full});
  }
  return parts;
}

// Aggregate view of the missing parts, applied per-op as an interval-level
// adjustment after the healthy-window answer is computed.
struct Degradation {
  bool any = false;
  std::vector<std::pair<Timestamp, Timestamp>> spans;  // inclusive, per part
  uint64_t full_count = 0;   // lost elements certainly inside the range
  uint64_t total_count = 0;  // lost elements possibly inside the range
  double expected = 0.0;     // Σ frac·count — maximum-likelihood occupancy
};

Degradation Degrade(const std::vector<MissingPart>& parts) {
  Degradation d;
  for (const MissingPart& p : parts) {
    d.any = true;
    d.spans.emplace_back(p.a, p.b - 1);
    d.total_count += p.count;
    if (p.full) {
      d.full_count += p.count;
    }
    d.expected += p.frac * static_cast<double>(p.count);
  }
  return d;
}

// Whole-window frequency of `value` from whichever frequency operator the
// stream maintains (CMS preferred, counting Bloom as fallback), plus the
// sketch's own noise variance: per-cell collision mass is ~Poisson with
// mean (total inserts)/(width), which the noise-corrected point estimate
// removes in expectation but not in variance.
struct FreqEstimate {
  double freq;
  double sketch_variance;
};

std::optional<FreqEstimate> WindowFrequency(const SummaryWindow& window, double value) {
  if (const auto* cms = SummaryCast<CountMinSketch>(window.Find(SummaryKind::kCountMin))) {
    double noise = static_cast<double>(cms->total_count()) / cms->width();
    return FreqEstimate{cms->EstimateCountCorrected(value), noise};
  }
  if (const auto* cbf =
          SummaryCast<CountingBloomFilter>(window.Find(SummaryKind::kCountingBloom))) {
    double noise = static_cast<double>(cbf->inserted_count()) * cbf->num_hashes() /
                   std::max(1u, cbf->num_counters());
    return FreqEstimate{static_cast<double>(cbf->EstimateCount(value)), noise};
  }
  return std::nullopt;
}

struct Accumulation {
  double exact = 0.0;      // contributions with zero posterior variance
  double mean = 0.0;       // estimated (partial-window) mean
  double variance = 0.0;   // posterior variance of the estimated part
  // Correlated sketch noise: every window's CMS shares one hash family (a
  // union requirement, §3.1), so the same colliding values pollute value v
  // in every window. Per-window sketch errors therefore add linearly in
  // standard deviation, not in quadrature.
  double sketch_std = 0.0;
  int partials = 0;        // number of partially covered summarized windows
  // Binomial shortcut bookkeeping (single-partial Poisson case, Thm B.2).
  int64_t binom_n = 0;
  double binom_p = 0.0;
};

// `floor_estimated_at_zero`: the estimated (partial-window) part of the
// answer is a provably non-negative quantity — counts, frequencies, sums over
// windows whose minima are >= 0 — so the interval's lower bound is floored at
// the exact part (NormalInterval's floor_at_zero). Signed quantities (general
// sums) must NOT pass it: clamping a genuinely negative lower bound would
// push lo above the true value (the bug this replaces clamped every op at 0,
// which even placed lo above the estimate for negative-valued sum queries).
QueryResult FinishAdditive(const Accumulation& acc, const QuerySpec& spec, bool poisson,
                           size_t windows_read, size_t landmark_events,
                           bool floor_estimated_at_zero) {
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = windows_read;
  result.landmark_events = landmark_events;
  result.estimate = acc.exact + acc.mean;
  double total_variance = acc.variance + acc.sketch_std * acc.sketch_std;
  result.exact = acc.partials == 0 && total_variance == 0.0;
  if (result.exact) {
    result.ci_lo = result.ci_hi = result.estimate;
    return result;
  }
  Interval interval;
  if (poisson && acc.partials == 1 && acc.binom_n > 0) {
    // Binom(n, p) quantiles are already >= 0, so lo >= exact holds by
    // construction here (counts are the only op on this path).
    interval = BinomialInterval(acc.exact, acc.binom_n, acc.binom_p, spec.confidence);
  } else {
    interval = NormalInterval(acc.exact, acc.mean, total_variance, spec.confidence,
                              floor_estimated_at_zero);
  }
  result.ci_lo = interval.lo;
  result.ci_hi = std::max(interval.lo, interval.hi);
  return result;
}

StatusOr<QueryResult> RunCountOrSum(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  const bool is_sum = spec.op == QueryOp::kSum;
  const bool poisson = stream.config().arrival_model == ArrivalModel::kPoisson;
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  Accumulation acc;
  // Sums keep the exact-part floor only when every partially covered window
  // is provably non-negative (its MinMax minimum >= 0); counts always do.
  bool sum_floor = true;
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: folded into the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      // Raw events are exact: filter by the query bounds themselves (an
      // event may share its timestamp with the next window's cover start,
      // which the half-open cover span would wrongly exclude).
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2) {
          acc.exact += is_sum ? event.value : 1.0;
        }
      }
      continue;
    }
    const CountSummary* count = GetCount(window);
    if (count == nullptr) {
      return Status::FailedPrecondition("stream has no count operator");
    }
    double window_count = static_cast<double>(count->count());
    double window_value;
    if (is_sum) {
      const auto* sum = SummaryCast<SumSummary>(window.Find(SummaryKind::kSum));
      if (sum == nullptr) {
        return Status::FailedPrecondition("stream has no sum operator");
      }
      window_value = sum->sum();
    } else {
      window_value = window_count;
    }
    if (o.full) {
      acc.exact += window_value;
      continue;
    }
    MeanVar est = is_sum ? EstimateSubWindowSum(window_value, window_count, o.frac,
                                                stream.stats(), stream.config().arrival_model)
                         : EstimateSubWindowCount(window_value, o.frac, stream.stats(),
                                                  stream.config().arrival_model);
    acc.mean += est.mean;
    acc.variance += est.variance;
    ++acc.partials;
    if (is_sum) {
      const auto* minmax = SummaryCast<MinMaxSummary>(window.Find(SummaryKind::kMinMax));
      if (minmax == nullptr || minmax->empty() || minmax->min() < 0) {
        sum_floor = false;
      }
    }
    if (!is_sum) {
      acc.binom_n = count->count() <= static_cast<uint64_t>(INT64_MAX)
                        ? static_cast<int64_t>(count->count())
                        : 0;
      acc.binom_p = o.frac;
    }
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  for (const Event& event : lm_events) {
    acc.exact += is_sum ? event.value : 1.0;
  }
  merge_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  QueryResult result = FinishAdditive(acc, spec, poisson && !is_sum, views.size(),
                                      lm_events.size(),
                                      /*floor_estimated_at_zero=*/!is_sum || sum_floor);
  ci_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  if (d.any) {
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    if (is_sum) {
      // A lost element's value is only known to lie inside the stream's
      // observed extremes; without them no sound bound exists.
      auto bounds = stream.value_bounds();
      if (!bounds.has_value()) {
        return Status::Corruption(
            "degraded sum: stream has no recorded value bounds to price the lost elements");
      }
      auto [vmin, vmax] = *bounds;
      uint64_t partial = d.total_count - d.full_count;
      double full = static_cast<double>(d.full_count);
      result.ci_lo += full * vmin + static_cast<double>(partial) * std::min(0.0, vmin);
      result.ci_hi += full * vmax + static_cast<double>(partial) * std::max(0.0, vmax);
      result.estimate += d.expected * stream.stats().MeanValue();
      result.exact = false;
    } else {
      // The lost element *count* is exact from the window index: elements in
      // fully covered spans are certainly in range; the rest lie in [0, n].
      result.estimate += d.expected;
      result.ci_lo += static_cast<double>(d.full_count);
      result.ci_hi += static_cast<double>(d.total_count);
      if (d.full_count != d.total_count) {
        result.exact = false;
      }
    }
  }
  return result;
}

StatusOr<QueryResult> RunMinMax(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  const bool is_min = spec.op == QueryOp::kMin;
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = views.size();
  bool found = false;
  double best = 0.0;
  // Best value *witnessed inside the query range* (raw events, landmark
  // events, fully covered windows). The conservative whole-window bound and
  // the witness bracket the true range-restricted extremum from both sides.
  bool witnessed = false;
  double witness = 0.0;
  auto consider = [&](double v) {
    best = found ? (is_min ? std::min(best, v) : std::max(best, v)) : v;
    found = true;
  };
  auto consider_witness = [&](double v) {
    witness = witnessed ? (is_min ? std::min(witness, v) : std::max(witness, v)) : v;
    witnessed = true;
  };
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: handled after the landmark pass
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2) {
          consider(event.value);
          consider_witness(event.value);
        }
      }
      continue;
    }
    const auto* minmax = SummaryCast<MinMaxSummary>(window.Find(SummaryKind::kMinMax));
    if (minmax == nullptr) {
      return Status::FailedPrecondition("stream has no minmax operator");
    }
    if (!minmax->empty()) {
      // Partial windows cannot localize the extremum; include the whole
      // window's bound (conservative) and mark the answer inexact.
      consider(is_min ? minmax->min() : minmax->max());
      if (o.full) {
        consider_witness(is_min ? minmax->min() : minmax->max());
      } else {
        result.exact = false;
      }
    }
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  result.landmark_events = lm_events.size();
  for (const Event& event : lm_events) {
    consider(event.value);
    consider_witness(event.value);
  }
  merge_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  degrade_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  std::optional<std::pair<double, double>> bounds;
  if (d.any) {
    // A lost element might have been the extremum: the stream-wide value
    // bound joins the bracket, and the answer can no longer be exact.
    bounds = stream.value_bounds();
    if (!bounds.has_value()) {
      return Status::Corruption(
          "degraded min/max: stream has no recorded value bounds to price the lost elements");
    }
    consider(is_min ? bounds->first : bounds->second);
    result.exact = false;
  }
  if (!found) {
    return Status::NotFound("no data in query range");
  }
  result.estimate = best;
  if (result.exact) {
    result.ci_lo = result.ci_hi = best;
  } else if (is_min) {
    // True min lies between the conservative bound and the best value known
    // to occur in range (min: [bound, witness]; max: mirrored below).
    result.ci_lo = best;
    result.ci_hi = witnessed ? witness : best;
  } else {
    result.ci_hi = best;
    result.ci_lo = witnessed ? witness : best;
  }
  if (d.any) {
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    if (!witnessed) {
      // Nothing is known to be inside the range, so the true extremum (if
      // any element exists) can sit anywhere within the stream bounds.
      (is_min ? result.ci_hi : result.ci_lo) = is_min ? bounds->second : bounds->first;
    }
  }
  return result;
}

StatusOr<QueryResult> RunFrequency(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  Accumulation acc;
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: folded into the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2 && event.value == spec.value) {
          acc.exact += 1.0;
        }
      }
      continue;
    }
    std::optional<FreqEstimate> freq = WindowFrequency(window, spec.value);
    if (!freq.has_value()) {
      return Status::FailedPrecondition("stream has no frequency operator (CMS/counting Bloom)");
    }
    if (o.full) {
      acc.exact += freq->freq;
      acc.sketch_std += std::sqrt(freq->sketch_variance);  // correlated across windows
      continue;
    }
    const CountSummary* count = GetCount(window);
    double window_count = count != nullptr ? static_cast<double>(count->count()) : 0.0;
    MeanVar count_est = EstimateSubWindowCount(window_count, o.frac, stream.stats(),
                                               stream.config().arrival_model);
    MeanVar est =
        EstimateSubWindowFrequency(window_count, freq->freq, o.frac, count_est.variance);
    acc.mean += est.mean;
    acc.variance += est.variance;
    acc.sketch_std += std::sqrt(freq->sketch_variance) * o.frac;
    ++acc.partials;
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  for (const Event& event : lm_events) {
    if (event.value == spec.value) {
      acc.exact += 1.0;
    }
  }
  merge_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  // Frequencies are counts of occurrences: the estimated part is >= 0.
  QueryResult result = FinishAdditive(acc, spec, /*poisson=*/false, views.size(),
                                      lm_events.size(),
                                      /*floor_estimated_at_zero=*/true);
  ci_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  if (d.any) {
    // Any subset of the lost elements could equal `value`: [0, n] more
    // occurrences are possible; none are certain.
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    result.ci_hi += static_cast<double>(d.total_count);
    result.exact = false;
  }
  return result;
}

StatusOr<QueryResult> RunExistence(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = views.size();

  // Combine per-window presence probabilities: p = 1 − Π(1 − p_i). The CI
  // brackets the unknown whole-window occurrence count V between 1 and the
  // window count C (Bloom alone cannot localize, §7.2.2); a frequency
  // operator, when configured, pins the estimate.
  double log_not_present = 0.0;      // Σ log(1 − p̂_i)
  double log_not_present_lo = 0.0;   // with V = 1        (lower bracket)
  double log_not_present_hi = 0.0;   // with V = C        (upper bracket)
  bool certain_hit = false;
  bool any_estimate = false;

  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: widens the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2 && event.value == spec.value) {
          certain_hit = true;
        }
      }
      continue;
    }
    const auto* bloom = SummaryCast<BloomFilter>(window.Find(SummaryKind::kBloom));
    const auto* cbf =
        SummaryCast<CountingBloomFilter>(window.Find(SummaryKind::kCountingBloom));
    bool might_contain;
    double fp_rate;
    if (bloom != nullptr) {
      might_contain = bloom->MightContain(spec.value);
      fp_rate = bloom->FalsePositiveRate();
    } else if (cbf != nullptr) {
      might_contain = cbf->MightContain(spec.value);
      fp_rate = 0.01;  // CBF sizing default; refined below by frequency
    } else {
      return Status::FailedPrecondition("stream has no membership operator (Bloom)");
    }
    if (!might_contain) {
      continue;  // Bloom "false" is certain (§5.2)
    }
    const CountSummary* count = GetCount(window);
    double window_count =
        count != nullptr ? static_cast<double>(count->count()) : 1.0;
    // The frequency operator, when configured, pins the occurrence count; a
    // noise-corrected estimate of ~0 means the Bloom hit was almost surely a
    // false positive. Without one, bracket V in [1, C] (§7.2.2). When the
    // filter itself is trustworthy (low fill), its positive already implies
    // at least one occurrence, overriding a CMS under-correction.
    std::optional<FreqEstimate> freq = WindowFrequency(window, spec.value);
    double v_hat = freq.has_value() ? freq->freq : std::max(1.0, window_count / 2.0);
    if (freq.has_value() && fp_rate < 0.1) {
      v_hat = std::max(v_hat, 1.0);
    }
    double p_est = (1.0 - fp_rate) * MembershipProbability(o.frac, v_hat);
    double p_lo = (1.0 - fp_rate) * MembershipProbability(o.frac, 1.0);
    double p_hi = (1.0 - fp_rate) * MembershipProbability(o.frac, std::max(1.0, window_count));
    log_not_present += std::log1p(-std::min(p_est, 1.0 - 1e-12));
    log_not_present_lo += std::log1p(-std::min(p_lo, 1.0 - 1e-12));
    log_not_present_hi += std::log1p(-std::min(p_hi, 1.0 - 1e-12));
    any_estimate = true;
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  result.landmark_events = lm_events.size();
  for (const Event& event : lm_events) {
    if (event.value == spec.value) {
      certain_hit = true;
    }
  }
  merge_span.End();

  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  if (d.any) {
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
  }
  degrade_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  if (certain_hit) {
    // A witnessed occurrence stays certain no matter what was lost.
    result.estimate = 1.0;
    result.bool_answer = true;
    result.ci_lo = result.ci_hi = 1.0;
    result.exact = true;
    return result;
  }
  result.exact = !any_estimate;
  result.estimate = 1.0 - std::exp(log_not_present);
  result.ci_lo = 1.0 - std::exp(log_not_present_lo);
  result.ci_hi = 1.0 - std::exp(log_not_present_hi);
  result.bool_answer = result.estimate >= 0.5;
  if (d.any) {
    // A lost element might have carried `value`: presence can no longer be
    // ruled out, so the interval's upper end opens to 1.
    result.ci_hi = 1.0;
    result.exact = false;
  }
  return result;
}

StatusOr<QueryResult> RunDistinct(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = views.size();
  std::unique_ptr<HyperLogLog> merged;
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: widens the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      if (merged == nullptr) {
        merged = std::make_unique<HyperLogLog>(stream.config().operators.hll_precision);
      }
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2) {
          merged->AddHash(HashValue(event.value));
        }
      }
      continue;
    }
    const auto* hll = SummaryCast<HyperLogLog>(window.Find(SummaryKind::kHyperLogLog));
    if (hll == nullptr) {
      return Status::FailedPrecondition("stream has no hyperloglog operator");
    }
    if (merged == nullptr) {
      merged = std::make_unique<HyperLogLog>(hll->precision());
    }
    SS_RETURN_IF_ERROR(merged->MergeFrom(*hll));
    // Summaries cannot restrict to a sub-window; partial windows contribute
    // their full distinct set (upper-biased), so the answer is inexact.
    if (!o.full) {
      result.exact = false;
    }
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  result.landmark_events = lm_events.size();
  if (!lm_events.empty() && merged == nullptr) {
    merged = std::make_unique<HyperLogLog>(stream.config().operators.hll_precision);
  }
  for (const Event& event : lm_events) {
    merged->AddHash(HashValue(event.value));
  }
  merge_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  degrade_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  if (merged == nullptr) {
    result.estimate = 0.0;
    result.ci_lo = result.ci_hi = 0.0;
    if (d.any) {
      // Only lost data overlaps the range: up to n distinct values possible.
      result.degraded = true;
      result.skipped_spans = std::move(d.spans);
      result.ci_hi = static_cast<double>(d.total_count);
      result.exact = false;
    }
    return result;
  }
  result.estimate = merged->EstimateCardinality();
  // HLL standard error 1.04/sqrt(m); always an approximation.
  result.exact = false;
  double m = std::ldexp(1.0, static_cast<int>(merged->precision()));
  double rel = 1.04 / std::sqrt(m);
  NormalDist dist(result.estimate, result.estimate * rel);
  double alpha = (1.0 - spec.confidence) / 2.0;
  result.ci_lo = std::max(0.0, dist.Quantile(alpha));
  result.ci_hi = dist.Quantile(1.0 - alpha);
  if (d.any) {
    // Every lost element could have carried a previously unseen value.
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    result.ci_hi += static_cast<double>(d.total_count);
  }
  return result;
}

StatusOr<QueryResult> RunQuantile(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = views.size();
  result.exact = false;
  std::unique_ptr<QuantileSketch> merged;
  auto ensure = [&]() {
    if (merged == nullptr) {
      merged = std::make_unique<QuantileSketch>(stream.config().operators.quantile_k,
                                                stream.config().seed ^ 0x9e3779b9);
    }
  };
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: widens the rank interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      ensure();
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2) {
          merged->Update(event.ts, event.value);
        }
      }
      continue;
    }
    const auto* sketch = SummaryCast<QuantileSketch>(window.Find(SummaryKind::kQuantile));
    if (sketch == nullptr) {
      return Status::FailedPrecondition("stream has no quantile operator");
    }
    ensure();
    SS_RETURN_IF_ERROR(merged->MergeFrom(*sketch));
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  result.landmark_events = lm_events.size();
  if (!lm_events.empty()) {
    ensure();
  }
  for (const Event& event : lm_events) {
    merged->Update(event.ts, event.value);
  }
  if (merged == nullptr || merged->total_count() == 0) {
    return Status::NotFound("no data in query range");
  }
  merge_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  double q = std::clamp(spec.quantile_q, 0.0, 1.0);
  result.estimate = merged->EstimateQuantile(q);
  double rank_err = 2.0 / static_cast<double>(stream.config().operators.quantile_k);
  ci_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  if (!d.any) {
    result.ci_lo = merged->EstimateQuantile(std::max(0.0, q - rank_err));
    result.ci_hi = merged->EstimateQuantile(std::min(1.0, q + rank_err));
    return result;
  }
  // Up to n lost elements may belong to the range. The true q-quantile of
  // the full population (T observed + up to M lost) sits at rank q·(T+M);
  // among the observed values that rank shifts by at most M in either
  // direction, depending on where the lost values fall. When the widened
  // rank leaves [0, 1], the quantile escapes the observed sample entirely
  // and only the stream-wide value bounds contain it.
  result.degraded = true;
  result.skipped_spans = std::move(d.spans);
  double total = static_cast<double>(merged->total_count());
  double m_lost = static_cast<double>(d.total_count);
  double q_hi = (q * (total + m_lost)) / total + rank_err;
  double q_lo = (q * (total + m_lost) - m_lost) / total - rank_err;
  auto bounds = stream.value_bounds();
  if ((q_lo < 0.0 || q_hi > 1.0) && !bounds.has_value()) {
    return Status::Corruption(
        "degraded quantile: stream has no recorded value bounds to price the lost elements");
  }
  result.ci_lo = q_lo < 0.0 ? bounds->first : merged->EstimateQuantile(q_lo);
  result.ci_hi = q_hi > 1.0 ? bounds->second : merged->EstimateQuantile(q_hi);
  result.estimate = std::clamp(result.estimate, result.ci_lo, result.ci_hi);
  return result;
}

StatusOr<QueryResult> RunValueRangeCount(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  if (!(spec.value_hi > spec.value_lo)) {
    return Status::InvalidArgument("value range [value_lo, value_hi) is empty");
  }
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  Accumulation acc;
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: folded into the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2 && event.value >= spec.value_lo &&
            event.value < spec.value_hi) {
          acc.exact += 1.0;
        }
      }
      continue;
    }
    const auto* hist = SummaryCast<Histogram>(window.Find(SummaryKind::kHistogram));
    if (hist == nullptr) {
      return Status::FailedPrecondition("stream has no histogram operator");
    }
    // Whole-window selection count from the histogram (bucket interpolation
    // is the operator's inherent approximation), then the usual
    // time-proportional share with the count posterior's spread.
    double selected = hist->EstimateRangeCount(spec.value_lo, spec.value_hi);
    if (o.full) {
      acc.exact += selected;
      continue;
    }
    MeanVar est =
        EstimateSubWindowCount(selected, o.frac, stream.stats(), stream.config().arrival_model);
    acc.mean += est.mean;
    acc.variance += est.variance;
    ++acc.partials;
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  for (const Event& event : lm_events) {
    if (event.value >= spec.value_lo && event.value < spec.value_hi) {
      acc.exact += 1.0;
    }
  }
  merge_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  // Range-restricted counts: the estimated part is >= 0.
  QueryResult result = FinishAdditive(acc, spec, /*poisson=*/false, views.size(),
                                      lm_events.size(),
                                      /*floor_estimated_at_zero=*/true);
  ci_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  if (d.any) {
    // Any subset of the lost elements could fall inside [value_lo, value_hi).
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    result.ci_hi += static_cast<double>(d.total_count);
    result.exact = false;
  }
  return result;
}

StatusOr<QueryResult> RunTopK(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  if (spec.top_k == 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views,
                      stream.WindowsOverlapping(spec.t1, spec.t2, trace));
  QueryPhaseSpan merge_span(QueryPhase::kSketchMerge, trace);
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = views.size();
  const OperatorSet& ops = stream.config().operators;
  std::unique_ptr<SpaceSavingSketch> merged;
  // Optional bracket tightener: the merged CMS min-estimate is an independent
  // upper bound on any value's occurrence count, and its noise-corrected
  // estimate a better point answer than the space-saving count.
  std::unique_ptr<CountMinSketch> cms;
  bool cms_ok = ops.cms;
  auto ensure = [&]() {
    if (merged == nullptr) {
      merged = std::make_unique<SpaceSavingSketch>(ops.spacesaving_capacity);
    }
    if (cms_ok && cms == nullptr) {
      cms = std::make_unique<CountMinSketch>(ops.cms_width, ops.cms_depth);
    }
  };
  // Partially covered windows contribute their whole-window candidates (the
  // summary cannot restrict to a sub-window). Their counts stay in the upper
  // bound, but each candidate's lower bound must shed everything those
  // windows might have contributed outside the query range.
  std::vector<const SpaceSavingSketch*> partial_sketches;
  for (const auto& view : views) {
    if (view.window == nullptr) {
      continue;  // quarantined span: widens the interval below
    }
    Overlap o = ComputeOverlap(stream, view, spec.t1, spec.t2);
    if (o.b <= o.a) {
      continue;
    }
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      ensure();
      for (const Event& event : window.raw()) {
        if (event.ts >= spec.t1 && event.ts <= spec.t2) {
          merged->Add(event.value);
          if (cms != nullptr) {
            cms->Update(event.ts, event.value);
          }
        }
      }
      continue;
    }
    const auto* sketch = SummaryCast<SpaceSavingSketch>(window.Find(SummaryKind::kSpaceSaving));
    if (sketch == nullptr) {
      return Status::FailedPrecondition("stream has no spacesaving operator");
    }
    ensure();
    SS_RETURN_IF_ERROR(merged->MergeFrom(*sketch));
    if (cms != nullptr) {
      const auto* wcms = SummaryCast<CountMinSketch>(window.Find(SummaryKind::kCountMin));
      if (wcms != nullptr) {
        SS_RETURN_IF_ERROR(cms->MergeFrom(*wcms));
      } else {
        cms.reset();  // mixed configuration: drop the tightener entirely
        cms_ok = false;
      }
    }
    if (!o.full) {
      partial_sketches.push_back(sketch);
      result.exact = false;
    }
  }
  std::vector<Event> lm_events = stream.QueryLandmarks(spec.t1, spec.t2);
  result.landmark_events = lm_events.size();
  if (!lm_events.empty()) {
    ensure();
  }
  for (const Event& event : lm_events) {
    merged->Add(event.value);
    if (cms != nullptr) {
      cms->Update(event.ts, event.value);
    }
  }
  merge_span.End();
  QueryPhaseSpan degrade_span(QueryPhase::kDegrade, trace);
  Degradation d = Degrade(CollectMissing(stream, views, spec.t1, spec.t2));
  degrade_span.End();
  QueryPhaseSpan ci_span(QueryPhase::kCiCombine, trace);
  if (merged == nullptr || merged->total_count() == 0) {
    if (d.any) {
      // Only lost data overlaps the range: no candidate is known, but the
      // lost elements could hide up to n occurrences of anything.
      result.degraded = true;
      result.skipped_spans = std::move(d.spans);
      result.exact = false;
      result.ci_hi = static_cast<double>(d.total_count);
      return result;
    }
    return Status::NotFound("no data in query range");
  }
  for (const SpaceSavingSketch::Candidate& cand : merged->TopK(spec.top_k)) {
    TopKEntry entry;
    entry.value = cand.value;
    double hi = static_cast<double>(cand.count);
    double lo = static_cast<double>(cand.count - cand.error);
    if (cms != nullptr) {
      hi = std::min(hi, static_cast<double>(cms->EstimateCount(cand.value)));
    }
    // Shed the partial windows' possible out-of-range contribution from the
    // lower bound: within each such window the candidate occurred at most
    // Bracket(v).count times, all of which might lie outside the range.
    for (const SpaceSavingSketch* partial : partial_sketches) {
      lo -= static_cast<double>(partial->Bracket(cand.value).count);
    }
    lo = std::clamp(lo, 0.0, hi);
    entry.estimate =
        cms != nullptr ? std::clamp(cms->EstimateCountCorrected(cand.value), lo, hi) : hi;
    entry.ci_lo = lo;
    // Any subset of the lost elements could also equal this value.
    entry.ci_hi = hi + (d.any ? static_cast<double>(d.total_count) : 0.0);
    if (cand.error != 0) {
      result.exact = false;
    }
    result.topk.push_back(entry);
  }
  if (d.any) {
    result.degraded = true;
    result.skipped_spans = std::move(d.spans);
    result.exact = false;
  }
  if (!result.topk.empty()) {
    // Headline answer: the strongest heavy hitter's frequency bracket.
    result.estimate = result.topk.front().estimate;
    result.ci_lo = result.topk.front().ci_lo;
    result.ci_hi = result.topk.front().ci_hi;
  }
  return result;
}

StatusOr<QueryResult> RunMean(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  // Mean genuinely walks the windows twice (count + sum); the trace, when
  // enabled, accumulates both passes.
  QuerySpec count_spec = spec;
  count_spec.op = QueryOp::kCount;
  QuerySpec sum_spec = spec;
  sum_spec.op = QueryOp::kSum;
  SS_ASSIGN_OR_RETURN(QueryResult count, RunCountOrSum(stream, count_spec, trace));
  SS_ASSIGN_OR_RETURN(QueryResult sum, RunCountOrSum(stream, sum_spec, trace));
  QueryResult result;
  result.confidence = spec.confidence;
  result.windows_read = count.windows_read;
  result.landmark_events = count.landmark_events;
  result.exact = count.exact && sum.exact;
  result.degraded = count.degraded || sum.degraded;
  result.skipped_spans =
      count.skipped_spans.empty() ? std::move(sum.skipped_spans) : std::move(count.skipped_spans);
  if (count.estimate <= 0) {
    return Status::NotFound("no data in query range");
  }
  result.estimate = sum.estimate / count.estimate;
  // First-order (delta-method) propagation of the two interval half-widths.
  double sum_hw = (sum.ci_hi - sum.ci_lo) / 2.0;
  double count_hw = (count.ci_hi - count.ci_lo) / 2.0;
  double rel = std::sqrt(std::pow(sum_hw / std::max(1e-12, std::abs(sum.estimate)), 2) +
                         std::pow(count_hw / count.estimate, 2));
  double hw = std::abs(result.estimate) * rel;
  result.ci_lo = result.estimate - hw;
  result.ci_hi = result.estimate + hw;
  return result;
}

}  // namespace

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kCount:
      return "count";
    case QueryOp::kSum:
      return "sum";
    case QueryOp::kMean:
      return "mean";
    case QueryOp::kMin:
      return "min";
    case QueryOp::kMax:
      return "max";
    case QueryOp::kExistence:
      return "existence";
    case QueryOp::kFrequency:
      return "frequency";
    case QueryOp::kDistinct:
      return "distinct";
    case QueryOp::kQuantile:
      return "quantile";
    case QueryOp::kValueRangeCount:
      return "value_range_count";
    case QueryOp::kTopK:
      return "topk";
  }
  return "unknown";
}

namespace {

StatusOr<QueryResult> Dispatch(Stream& stream, const QuerySpec& spec, QueryTrace* trace) {
  switch (spec.op) {
    case QueryOp::kCount:
    case QueryOp::kSum:
      return RunCountOrSum(stream, spec, trace);
    case QueryOp::kMean:
      return RunMean(stream, spec, trace);
    case QueryOp::kMin:
    case QueryOp::kMax:
      return RunMinMax(stream, spec, trace);
    case QueryOp::kExistence:
      return RunExistence(stream, spec, trace);
    case QueryOp::kFrequency:
      return RunFrequency(stream, spec, trace);
    case QueryOp::kDistinct:
      return RunDistinct(stream, spec, trace);
    case QueryOp::kQuantile:
      return RunQuantile(stream, spec, trace);
    case QueryOp::kValueRangeCount:
      return RunValueRangeCount(stream, spec, trace);
    case QueryOp::kTopK:
      return RunTopK(stream, spec, trace);
  }
  return Status::InvalidArgument("unknown query operator");
}

}  // namespace

StatusOr<QueryResult> RunQuery(Stream& stream, const QuerySpec& spec) {
  static Counter& degraded_total =
      MetricRegistry::Default().GetCounter("ss_core_query_degraded_total");
  std::shared_ptr<QueryTrace> trace;
  if (spec.collect_trace) {
    trace = std::make_shared<QueryTrace>();
    trace->op = QueryOpName(spec.op);
    trace->t1 = spec.t1;
    trace->t2 = spec.t2;
  }
  QueryPhaseSpan plan_span(QueryPhase::kPlan, trace.get());
  if (spec.t2 < spec.t1) {
    return Status::InvalidArgument("query range end precedes start");
  }
  if (spec.confidence <= 0.0 || spec.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  // Landmarks are lossless by contract; answering around a corrupt one
  // would silently drop raw data every op weaves in exactly. Hard error.
  if (!stream.landmark_status().ok()) {
    return Status::Corruption("landmark window corrupt: " +
                              stream.landmark_status().ToString());
  }
  plan_span.End();
  Stopwatch watch;
  StatusOr<QueryResult> result = Dispatch(stream, spec, trace.get());
  if (!result.ok()) {
    return result;
  }
  if (result->degraded) {
    degraded_total.Inc();
    FlightRecorder::Default().Record(FlightEventType::kDegradedQuery,
                                     static_cast<uint64_t>(spec.op),
                                     result->skipped_spans.size());
  }
  if (trace == nullptr) {
    return result;
  }
  trace->elapsed_micros = watch.ElapsedMicros();
  trace->landmark_windows = stream.LandmarksOverlapping(spec.t1, spec.t2).size();
  trace->landmark_events = result->landmark_events;
  trace->degraded = result->degraded;
  trace->skipped_spans = result->skipped_spans.size();
  trace->estimate = result->estimate;
  trace->ci_lo = result->ci_lo;
  trace->ci_hi = result->ci_hi;
  trace->ci_width = result->CiWidth();
  trace->exact = result->exact;
  result->trace = std::move(trace);
  return result;
}

}  // namespace ss
