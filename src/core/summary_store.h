// SummaryStore: the public API of the system (Table 3 of the paper).
//
//   CreateStream(decay, [operators])  -> CreateStream(StreamConfig)
//   DeleteStream(stream)              -> DeleteStream(id)
//   Append(stream, [ts], value)       -> Append(id, ts, value)
//   Begin/EndLandmark(stream)         -> Begin/EndLandmark(id, ts)
//   Query(stream, Ts, Te, op, params) -> Query(id, QuerySpec)
//   QueryLandmark(stream, Ts, Te)     -> QueryLandmark(id, t1, t2)
//
// A store owns one KV backend (durable LSM directory, or in-memory) shared
// by all streams.
#ifndef SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_
#define SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"

namespace ss {

struct StoreOptions {
  // Directory for the durable LSM backend; empty selects the in-memory
  // backend (tests, ephemeral analysis).
  std::string dir;
  LsmOptions lsm;
  // Worker threads for QueryAggregate's per-stream fan-out: 0 picks
  // ThreadPool::DefaultThreadCount(), 1 forces the serial in-line path (no
  // pool; benchmark baseline), N > 1 sizes the pool explicitly. The pool is
  // spawned lazily on the first multi-stream QueryAggregate.
  size_t fleet_query_threads = 0;
  // Background scrub cadence in milliseconds; 0 (the default) disables the
  // scrub thread. Each cycle drops caches and re-verifies every persisted
  // window and landmark checksum (see Scrub below).
  uint64_t scrub_interval_ms = 0;
  // Whether background scrub cycles repair what they find (merge quarantined
  // windows into their left neighbors, rewrite corrupt-but-resident windows)
  // or only detect and quarantine.
  bool scrub_repair = true;
};

// Thread-safety: all public methods are safe to call concurrently. A
// shared_mutex guards the stream registry (exclusive for Create/Delete,
// shared elsewhere) and each Stream carries its own reader/writer lock, so
// appends to different streams and queries against any stream — including
// one being appended to from another thread — proceed in parallel. Lock
// order is registry -> stream -> window cache -> backend; see DESIGN.md
// "Threading model". GetStream() hands out a raw Stream* for tools and
// benchmarks: driving it while other threads use the store is on the caller.
class SummaryStore {
 public:
  // Opens (or creates) a store and reloads every registered stream's index.
  static StatusOr<std::unique_ptr<SummaryStore>> Open(const StoreOptions& options);

  // Stops and joins the background scrub thread, if one is running.
  ~SummaryStore();

  // --- stream lifecycle --------------------------------------------------
  StatusOr<StreamId> CreateStream(StreamConfig config);
  Status CreateStreamWithId(StreamId id, StreamConfig config);
  Status DeleteStream(StreamId id);
  std::vector<StreamId> ListStreams() const;

  // --- writes (Table 3) ----------------------------------------------------
  Status Append(StreamId id, Timestamp ts, double value);
  // Timestamp-less variant: stamps with the system clock (µs since epoch).
  Status Append(StreamId id, double value);
  // Batched ingest: one registry lookup and one stream-lock acquisition for
  // the whole span (Stream::AppendBatch), amortizing per-event overhead for
  // callers that already buffer arrivals. Window state is identical to
  // appending each event in order (merges drain per event — see
  // Stream::AppendBatch); on error the prefix before the failing event is
  // ingested.
  Status AppendBatch(StreamId id, std::span<const Event> events);
  Status BeginLandmark(StreamId id, Timestamp ts);
  Status EndLandmark(StreamId id, Timestamp ts);

  // --- reads (Table 3) -----------------------------------------------------
  StatusOr<QueryResult> Query(StreamId id, const QuerySpec& spec);
  StatusOr<std::vector<Event>> QueryLandmark(StreamId id, Timestamp t1, Timestamp t2);

  // Fleet query: one additive aggregate (count / sum) or extremum
  // (min / max) over several streams at once. Additive estimates sum and
  // their CI half-widths combine in quadrature (streams are independent);
  // extrema take the min/max of the per-stream answers, with the combined
  // CI spanning every stream whose interval overlaps the winner's (any of
  // them could hold the true extremum). Per-stream queries fan out on the
  // worker pool (StoreOptions::fleet_query_threads) and merge in ascending
  // stream-id order, so the result is deterministic for a given id set
  // regardless of scheduling or the order ids were passed in.
  StatusOr<QueryResult> QueryAggregate(std::span<const StreamId> ids, const QuerySpec& spec);

  // --- maintenance ---------------------------------------------------------
  // Persists all dirty state to the backend.
  Status Flush();
  // Flush + evict all in-memory window payloads.
  Status EvictAll();
  // Simulates a cold cache: drops window payloads and backend block caches.
  void DropCaches();
  // Integrity scrub: drops caches, then re-reads and checksum-verifies every
  // persisted window and landmark across all streams. Corrupt windows are
  // quarantined; with repair=true, quarantined windows are merged into their
  // intact left neighbors (element counts survive as lost_count, priced into
  // future CIs) and corrupt-but-resident payloads are rewritten. `report`
  // accumulates across streams and may be null. Landmark corruption is
  // reported (and re-persisted from memory when repair=true and the events
  // are resident) but never dropped. Runs with each stream exclusively
  // locked, one stream at a time; queries on other streams proceed.
  Status Scrub(bool repair, ScrubReport* report);

  // --- introspection -------------------------------------------------------
  StatusOr<Stream*> GetStream(StreamId id);
  // Logical decayed size across streams (the "s" of compaction S/s).
  uint64_t TotalSizeBytes() const;
  KvBackend& backend() { return *kv_; }
  // Health probe: true once the backend is rejecting writes (poisoned WAL).
  bool Poisoned() const { return kv_->Poisoned(); }

 private:
  SummaryStore(std::unique_ptr<KvBackend> kv, size_t fleet_query_threads)
      : kv_(std::move(kv)), fleet_query_threads_(fleet_query_threads) {}

  // Starts the background scrub loop (Open calls this when
  // StoreOptions::scrub_interval_ms > 0).
  void StartScrubThread(uint64_t interval_ms, bool repair);

  // Callers must hold registry_mu_ (shared suffices for Find, exclusive for
  // Create); the returned pointer stays valid only while the lock is held.
  StatusOr<Stream*> FindStreamLocked(StreamId id);
  Status CreateStreamWithIdLocked(StreamId id, StreamConfig config);
  Status PersistStreamList();
  // Lazily spawns the fleet-query pool; returns null when configured serial.
  ThreadPool* FleetPool();

  std::unique_ptr<KvBackend> kv_;

  // Guards streams_ and next_stream_id_. Stream lifecycle (create/delete,
  // flush-all, reload) takes it exclusive; per-stream traffic takes it
  // shared and then the stream's own lock, so the registry is never a
  // bottleneck on the append/query hot paths.
  mutable std::shared_mutex registry_mu_;
  std::map<StreamId, std::unique_ptr<Stream>> streams_;
  StreamId next_stream_id_ = 1;

  const size_t fleet_query_threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> fleet_pool_;

  // Background scrub thread: sleeps on scrub_cv_ between cycles so shutdown
  // is prompt regardless of the configured interval.
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
  std::thread scrub_thread_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_
