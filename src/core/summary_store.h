// SummaryStore: the public API of the system (Table 3 of the paper).
//
//   CreateStream(decay, [operators])  -> CreateStream(StreamConfig)
//   DeleteStream(stream)              -> DeleteStream(id)
//   Append(stream, [ts], value)       -> Append(id, ts, value)
//   Begin/EndLandmark(stream)         -> Begin/EndLandmark(id, ts)
//   Query(stream, Ts, Te, op, params) -> Query(id, QuerySpec)
//   QueryLandmark(stream, Ts, Te)     -> QueryLandmark(id, t1, t2)
//
// A store owns one KV backend (durable LSM directory, or in-memory) shared
// by all streams.
#ifndef SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_
#define SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"

namespace ss {

struct StoreOptions {
  // Directory for the durable LSM backend; empty selects the in-memory
  // backend (tests, ephemeral analysis).
  std::string dir;
  LsmOptions lsm;
};

class SummaryStore {
 public:
  // Opens (or creates) a store and reloads every registered stream's index.
  static StatusOr<std::unique_ptr<SummaryStore>> Open(const StoreOptions& options);

  // --- stream lifecycle --------------------------------------------------
  StatusOr<StreamId> CreateStream(StreamConfig config);
  Status CreateStreamWithId(StreamId id, StreamConfig config);
  Status DeleteStream(StreamId id);
  std::vector<StreamId> ListStreams() const;

  // --- writes (Table 3) ----------------------------------------------------
  Status Append(StreamId id, Timestamp ts, double value);
  // Timestamp-less variant: stamps with the system clock (µs since epoch).
  Status Append(StreamId id, double value);
  Status BeginLandmark(StreamId id, Timestamp ts);
  Status EndLandmark(StreamId id, Timestamp ts);

  // --- reads (Table 3) -----------------------------------------------------
  StatusOr<QueryResult> Query(StreamId id, const QuerySpec& spec);
  StatusOr<std::vector<Event>> QueryLandmark(StreamId id, Timestamp t1, Timestamp t2);

  // Fleet query: one additive aggregate (count / sum) or extremum
  // (min / max) over several streams at once. Additive estimates sum and
  // their CI half-widths combine in quadrature (streams are independent);
  // extrema take the min/max of the per-stream answers.
  StatusOr<QueryResult> QueryAggregate(std::span<const StreamId> ids, const QuerySpec& spec);

  // --- maintenance ---------------------------------------------------------
  // Persists all dirty state to the backend.
  Status Flush();
  // Flush + evict all in-memory window payloads.
  Status EvictAll();
  // Simulates a cold cache: drops window payloads and backend block caches.
  void DropCaches();

  // --- introspection -------------------------------------------------------
  StatusOr<Stream*> GetStream(StreamId id);
  // Logical decayed size across streams (the "s" of compaction S/s).
  uint64_t TotalSizeBytes() const;
  KvBackend& backend() { return *kv_; }

 private:
  explicit SummaryStore(std::unique_ptr<KvBackend> kv) : kv_(std::move(kv)) {}

  Status PersistStreamList();

  std::unique_ptr<KvBackend> kv_;
  std::map<StreamId, std::unique_ptr<Stream>> streams_;
  StreamId next_stream_id_ = 1;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_SUMMARY_STORE_H_
