// Window representations (§3.2, §4): the summarized window — SummaryStore's
// unit of decayed storage — and the landmark window, which retains raw
// events at full resolution.
//
// A summary window covers a contiguous range of element counts [cs, ce]
// (1-based indices in arrival order, landmark elements excluded) and the
// time span of those elements. Small windows keep their raw events; once a
// window grows past the stream's `raw_threshold` it *materializes* into the
// stream's configured summary operators. This mirrors the real system's
// ingest buffer: the newest (tiny) windows are effectively exact, and decay
// converts them into constant-size digests as they age and merge.
#ifndef SUMMARYSTORE_SRC_CORE_WINDOW_H_
#define SUMMARYSTORE_SRC_CORE_WINDOW_H_

#include <memory>
#include <vector>

#include "src/common/clock.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/core/operators.h"
#include "src/sketch/summary.h"

namespace ss {

struct Event {
  Timestamp ts;
  double value;
};

class SummaryWindow {
 public:
  SummaryWindow() = default;
  // Creates a fresh single-element window at count index `c`.
  SummaryWindow(uint64_t c, Timestamp ts, double value);

  uint64_t cs() const { return cs_; }
  uint64_t ce() const { return ce_; }
  Timestamp ts_start() const { return ts_start_; }
  Timestamp ts_last() const { return ts_last_; }
  uint64_t element_count() const { return ce_ - cs_ + 1; }
  // Elements inside [cs, ce] whose data was lost to corruption and absorbed
  // from a quarantined neighbor during scrub repair. They count toward
  // element_count() but contributed nothing to raw_/summaries_; queries must
  // treat them as a fully-uncertain sub-range.
  uint64_t lost_count() const { return lost_count_; }
  bool is_raw() const { return !raw_.empty() || summaries_.empty(); }
  const std::vector<Event>& raw() const { return raw_; }
  const std::vector<std::unique_ptr<Summary>>& summaries() const { return summaries_; }

  // Extends the window with the next element (count index must be ce+1).
  void Append(uint64_t c, Timestamp ts, double value);

  // Absorbs `other`, which must be the immediately following window
  // (other.cs == ce+1). Materializes into `ops` if the combined raw size
  // exceeds `raw_threshold`. `seed` keys randomized operators.
  Status MergeFrom(SummaryWindow&& other, const OperatorSet& ops, uint64_t raw_threshold,
                   uint64_t seed);

  // Converts a raw window into summary form (idempotent).
  void Materialize(const OperatorSet& ops, uint64_t seed);

  // Extends the window rightward over a quarantined neighbor's span whose
  // data is gone: [cs, ce] grows to end at `ce`, the time span to `ts_last`,
  // and `lost` elements are recorded as unrecoverable (scrub repair).
  void AbsorbLost(uint64_t ce, Timestamp ts_last, uint64_t lost);

  // Leftward mirror of AbsorbLost, for a quarantined run at the stream head
  // (no intact left neighbor exists): [cs, ce] grows to start at `cs`.
  void AbsorbLostLeft(uint64_t cs, Timestamp ts_start, uint64_t lost);

  // First summary of the given kind, or nullptr.
  const Summary* Find(SummaryKind kind) const;

  // Logical storage footprint (the unit Table 5's compaction is measured in).
  size_t SizeBytes() const;

  void Serialize(Writer& writer) const;
  static StatusOr<SummaryWindow> Deserialize(Reader& reader);

 private:
  uint64_t cs_ = 0;
  uint64_t ce_ = 0;
  Timestamp ts_start_ = 0;
  Timestamp ts_last_ = 0;
  std::vector<Event> raw_;  // populated iff not materialized
  std::vector<std::unique_ptr<Summary>> summaries_;
  uint64_t lost_count_ = 0;  // corruption-lost elements inside [cs, ce]
};

// Raw events spanning an annotated interval of interest (§4.3). Landmark
// windows are never merged or decayed.
struct LandmarkWindow {
  uint64_t id = 0;
  Timestamp ts_start = 0;
  Timestamp ts_end = 0;  // last event (or explicit EndLandmark time)
  bool closed = false;
  std::vector<Event> events;

  size_t SizeBytes() const { return events.size() * sizeof(Event) + 24; }

  void Serialize(Writer& writer) const;
  static StatusOr<LandmarkWindow> Deserialize(Reader& reader);
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_CORE_WINDOW_H_
