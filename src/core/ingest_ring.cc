#include "src/core/ingest_ring.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss {

namespace {

struct RingMetrics {
  Counter& enqueued = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_enqueued_total");
  Counter& drained = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_drained_total");
  Counter& shed = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_shed_total");
  Counter& stalls = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_stall_total");
  Counter& sweeps = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_sweeps_total");
  Gauge& depth = MetricRegistry::Default().GetGauge("ss_core_ingest_ring_depth");
};

RingMetrics& Metrics() {
  static RingMetrics m;
  return m;
}

}  // namespace

SpscRing::SpscRing(size_t capacity) {
  size_t cap = std::bit_ceil(std::max<size_t>(capacity, 2));
  slots_.resize(cap);
  mask_ = cap - 1;
}

bool SpscRing::TryPush(const Event& event) {
  uint64_t tail = tail_.load(std::memory_order_relaxed);
  uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head > mask_) {
    return false;  // full
  }
  slots_[tail & mask_] = event;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

size_t SpscRing::PopBatch(Event* out, size_t max) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t tail = tail_.load(std::memory_order_acquire);
  size_t n = std::min<uint64_t>(tail - head, max);
  for (size_t i = 0; i < n; ++i) {
    out[i] = slots_[(head + i) & mask_];
  }
  head_.store(head + n, std::memory_order_release);
  return n;
}

size_t SpscRing::SizeApprox() const {
  return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                             head_.load(std::memory_order_relaxed));
}

IngestFront::IngestFront(SummaryStore& store, StreamId stream, IngestRingOptions options)
    : store_(store), stream_(stream), options_(options) {
  size_t producers = std::max<size_t>(1, options_.max_producers);
  rings_.reserve(producers);
  for (size_t i = 0; i < producers; ++i) {
    rings_.push_back(std::make_unique<SpscRing>(options_.ring_capacity));
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

IngestFront::~IngestFront() { Stop(); }

IngestFront::Producer* IngestFront::RegisterProducer() {
  std::lock_guard<std::mutex> lock(register_mu_);
  size_t slot = producer_count_.load(std::memory_order_relaxed);
  if (slot >= rings_.size()) {
    return nullptr;
  }
  producers_.push_back(std::unique_ptr<Producer>(new Producer(this, slot)));
  // Publish after the handle exists: the worker sweeps [0, producer_count_).
  producer_count_.store(slot + 1, std::memory_order_release);
  return producers_.back().get();
}

Status IngestFront::Producer::Offer(Timestamp ts, double value) {
  IngestFront* front = front_;
  if (front->stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ingest front stopped");
  }
  Event event{ts, value};
  if (front->rings_[slot_]->TryPush(event)) {
    front->enqueued_.fetch_add(1, std::memory_order_release);
    Metrics().enqueued.Inc();
    return Status::Ok();
  }
  if (front->options_.policy == IngestRingOptions::Policy::kShed) {
    front->shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed.Inc();
    FlightRecorder::Default().Record(FlightEventType::kIngestShed,
                                     static_cast<uint64_t>(front->stream_), 1);
    return Status::FailedPrecondition("ingest ring full (shed policy)");
  }
  if (!front->PushBlocking(slot_, event)) {
    return Status::FailedPrecondition("ingest front stopped");
  }
  front->enqueued_.fetch_add(1, std::memory_order_release);
  Metrics().enqueued.Inc();
  return Status::Ok();
}

bool IngestFront::PushBlocking(size_t slot, const Event& event) {
  Metrics().stalls.Inc();
  Stopwatch watch;
  SpscRing& ring = *rings_[slot];
  uint32_t spins = 0;
  while (!ring.TryPush(event)) {
    if (stop_.load(std::memory_order_acquire)) {
      return false;
    }
    // Spin briefly (the worker usually frees space within microseconds on a
    // loaded ring), then fall back to yielding so a descheduled worker can
    // run — essential on few-core machines.
    if (++spins < 64) {
      #if defined(__x86_64__)
      __builtin_ia32_pause();
      #endif
    } else {
      std::this_thread::yield();
    }
  }
  FlightRecorder::Default().Record(FlightEventType::kIngestStall,
                                   static_cast<uint64_t>(stream_), watch.ElapsedMicros());
  return true;
}

size_t IngestFront::DrainOnce() {
  size_t producers = producer_count_.load(std::memory_order_acquire);
  if (producers == 0) {
    return 0;
  }
  std::vector<Event> batch;
  batch.reserve(std::min(options_.drain_batch, options_.ring_capacity * producers));
  std::vector<Event> chunk(options_.drain_batch);
  size_t depth = 0;
  for (size_t i = 0; i < producers && batch.size() < options_.drain_batch; ++i) {
    size_t want = options_.drain_batch - batch.size();
    size_t got = rings_[i]->PopBatch(chunk.data(), std::min(want, chunk.size()));
    batch.insert(batch.end(), chunk.begin(), chunk.begin() + static_cast<ptrdiff_t>(got));
    depth += rings_[i]->SizeApprox();
  }
  Metrics().depth.Set(static_cast<int64_t>(depth));
  if (batch.empty()) {
    return 0;
  }
  // Restore cross-producer timestamp order; each producer's own sequence is
  // already FIFO, so a stable sort keeps per-producer arrival order for
  // equal timestamps.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  bool applied = false;
  if (!failed_.load(std::memory_order_acquire)) {
    Status s = store_.AppendBatch(stream_, batch);
    if (s.ok()) {
      applied = true;
    } else {
      std::lock_guard<std::mutex> lock(status_mu_);
      status_ = s;
      failed_.store(true, std::memory_order_release);
    }
  }
  // Every event ends up in exactly one bucket: drained if the store applied
  // it, shed if it was dropped — including the batch whose AppendBatch failed
  // (events consumed so producers never wedge, but lost).
  if (applied) {
    Metrics().drained.Inc(batch.size());
  } else {
    shed_.fetch_add(batch.size(), std::memory_order_relaxed);
    Metrics().shed.Inc(batch.size());
  }
  Metrics().sweeps.Inc();
  FlightRecorder::Default().Record(FlightEventType::kIngestDrain,
                                   static_cast<uint64_t>(stream_), batch.size());
  consumed_.fetch_add(batch.size(), std::memory_order_release);
  return batch.size();
}

void IngestFront::WorkerLoop() {
  uint32_t idle = 0;
  for (;;) {
    size_t drained = DrainOnce();
    if (drained > 0) {
      idle = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire) &&
        consumed_.load(std::memory_order_acquire) >= enqueued_.load(std::memory_order_acquire)) {
      return;
    }
    // Idle backoff: yield first, then sleep — keeps drain latency low under
    // load without burning a core when the stream goes quiet.
    if (++idle < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

Status IngestFront::Drain() {
  uint64_t target = enqueued_.load(std::memory_order_acquire);
  while (consumed_.load(std::memory_order_acquire) < target) {
    if (stop_.load(std::memory_order_acquire) && !worker_.joinable()) {
      break;
    }
    std::this_thread::yield();
  }
  return status();
}

void IngestFront::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (worker_.joinable()) {
      worker_.join();
    }
    return;
  }
  if (worker_.joinable()) {
    worker_.join();
  }
}

Status IngestFront::status() const {
  if (!failed_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

}  // namespace ss
