#include "src/core/window.h"

#include <span>

#include "src/common/logging.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/kernels.h"

namespace ss {

namespace {

// Replays a run of raw events into a summary set, routing the hashing
// sketches through the batch kernels (one HashValues pass shared by CMS,
// Bloom and HLL) and everything else through the per-event Update path. Each
// summary sees the same update sequence as the naive per-event loop, so the
// resulting state is identical — only the iteration order across summaries
// changes, and summaries are mutually independent.
void UpdateSummariesBatch(std::vector<std::unique_ptr<Summary>>& summaries,
                          std::span<const Event> events) {
  if (events.empty() || summaries.empty()) {
    return;
  }
  bool any_hashing = false;
  for (const auto& summary : summaries) {
    SummaryKind kind = summary->kind();
    if (kind == SummaryKind::kCountMin || kind == SummaryKind::kBloom ||
        kind == SummaryKind::kHyperLogLog) {
      any_hashing = true;
      break;
    }
  }
  std::vector<uint64_t> hashes;
  if (any_hashing) {
    std::vector<double> values(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      values[i] = events[i].value;
    }
    hashes.resize(events.size());
    kernels::HashValues(values.data(), values.size(), hashes.data());
  }
  for (auto& summary : summaries) {
    switch (summary->kind()) {
      case SummaryKind::kCountMin:
        static_cast<CountMinSketch*>(summary.get())->AddHashes(hashes);
        break;
      case SummaryKind::kBloom:
        static_cast<BloomFilter*>(summary.get())->AddHashes(hashes);
        break;
      case SummaryKind::kHyperLogLog:
        static_cast<HyperLogLog*>(summary.get())->AddHashes(hashes);
        break;
      default:
        for (const Event& event : events) {
          summary->Update(event.ts, event.value);
        }
        break;
    }
  }
}

}  // namespace

SummaryWindow::SummaryWindow(uint64_t c, Timestamp ts, double value)
    : cs_(c), ce_(c), ts_start_(ts), ts_last_(ts) {
  raw_.push_back(Event{ts, value});
}

void SummaryWindow::Append(uint64_t c, Timestamp ts, double value) {
  SS_DCHECK(c == ce_ + 1) << "non-contiguous append";
  ce_ = c;
  ts_last_ = ts;
  if (summaries_.empty()) {
    raw_.push_back(Event{ts, value});
  } else {
    for (auto& summary : summaries_) {
      summary->Update(ts, value);
    }
  }
}

void SummaryWindow::Materialize(const OperatorSet& ops, uint64_t seed) {
  if (!summaries_.empty()) {
    return;
  }
  summaries_ = ops.CreateAll(seed ^ cs_);
  UpdateSummariesBatch(summaries_, raw_);
  raw_.clear();
  raw_.shrink_to_fit();
}

Status SummaryWindow::MergeFrom(SummaryWindow&& other, const OperatorSet& ops,
                                uint64_t raw_threshold, uint64_t seed) {
  if (other.cs_ != ce_ + 1) {
    return Status::InvalidArgument("MergeFrom: windows not adjacent");
  }
  bool both_raw = summaries_.empty() && other.summaries_.empty();
  if (both_raw && raw_.size() + other.raw_.size() <= raw_threshold) {
    raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
  } else {
    Materialize(ops, seed);
    if (other.summaries_.empty()) {
      UpdateSummariesBatch(summaries_, other.raw_);
    } else {
      if (other.summaries_.size() != summaries_.size()) {
        return Status::InvalidArgument("MergeFrom: operator set mismatch");
      }
      for (size_t i = 0; i < summaries_.size(); ++i) {
        SS_RETURN_IF_ERROR(summaries_[i]->MergeFrom(*other.summaries_[i]));
      }
    }
  }
  ce_ = other.ce_;
  ts_last_ = other.ts_last_;
  lost_count_ += other.lost_count_;
  return Status::Ok();
}

void SummaryWindow::AbsorbLost(uint64_t ce, Timestamp ts_last, uint64_t lost) {
  SS_DCHECK(ce > ce_) << "AbsorbLost must extend rightward";
  ce_ = ce;
  if (ts_last > ts_last_) {
    ts_last_ = ts_last;
  }
  lost_count_ += lost;
}

void SummaryWindow::AbsorbLostLeft(uint64_t cs, Timestamp ts_start, uint64_t lost) {
  SS_DCHECK(cs < cs_) << "AbsorbLostLeft must extend leftward";
  cs_ = cs;
  if (ts_start < ts_start_) {
    ts_start_ = ts_start;
  }
  lost_count_ += lost;
}

const Summary* SummaryWindow::Find(SummaryKind kind) const {
  for (const auto& summary : summaries_) {
    if (summary->kind() == kind) {
      return summary.get();
    }
  }
  return nullptr;
}

size_t SummaryWindow::SizeBytes() const {
  size_t bytes = 32;  // header: count range + time span
  bytes += raw_.size() * sizeof(Event);
  for (const auto& summary : summaries_) {
    bytes += summary->SizeBytes();
  }
  return bytes;
}

void SummaryWindow::Serialize(Writer& writer) const {
  writer.PutVarint(cs_);
  writer.PutVarint(ce_);
  writer.PutSignedVarint(ts_start_);
  writer.PutSignedVarint(ts_last_);
  writer.PutVarint(raw_.size());
  Timestamp prev_ts = ts_start_;
  for (const Event& event : raw_) {
    writer.PutSignedVarint(event.ts - prev_ts);  // delta-encode timestamps
    writer.PutDouble(event.value);
    prev_ts = event.ts;
  }
  writer.PutVarint(summaries_.size());
  for (const auto& summary : summaries_) {
    SerializeSummary(*summary, writer);
  }
  writer.PutVarint(lost_count_);  // trailing: absent in legacy payloads
}

StatusOr<SummaryWindow> SummaryWindow::Deserialize(Reader& reader) {
  SummaryWindow window;
  SS_ASSIGN_OR_RETURN(window.cs_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(window.ce_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(window.ts_start_, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(window.ts_last_, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(uint64_t raw_count, reader.ReadVarint());
  // Each raw event costs at least 9 encoded bytes; bound before reserving.
  if (raw_count > reader.remaining() / 9 + 1) {
    return Status::Corruption("SummaryWindow: raw count exceeds payload");
  }
  window.raw_.reserve(raw_count);
  Timestamp prev_ts = window.ts_start_;
  for (uint64_t i = 0; i < raw_count; ++i) {
    Event event;
    SS_ASSIGN_OR_RETURN(int64_t delta, reader.ReadSignedVarint());
    event.ts = prev_ts + delta;
    prev_ts = event.ts;
    SS_ASSIGN_OR_RETURN(event.value, reader.ReadDouble());
    window.raw_.push_back(event);
  }
  SS_ASSIGN_OR_RETURN(uint64_t summary_count, reader.ReadVarint());
  if (summary_count > reader.remaining()) {
    return Status::Corruption("SummaryWindow: summary count exceeds payload");
  }
  window.summaries_.reserve(summary_count);
  for (uint64_t i = 0; i < summary_count; ++i) {
    SS_ASSIGN_OR_RETURN(std::unique_ptr<Summary> summary, DeserializeSummary(reader));
    window.summaries_.push_back(std::move(summary));
  }
  if (reader.remaining() > 0) {  // legacy payloads end at the summaries
    SS_ASSIGN_OR_RETURN(window.lost_count_, reader.ReadVarint());
  }
  return window;
}

void LandmarkWindow::Serialize(Writer& writer) const {
  writer.PutVarint(id);
  writer.PutSignedVarint(ts_start);
  writer.PutSignedVarint(ts_end);
  writer.PutU8(closed ? 1 : 0);
  writer.PutVarint(events.size());
  Timestamp prev_ts = ts_start;
  for (const Event& event : events) {
    writer.PutSignedVarint(event.ts - prev_ts);
    writer.PutDouble(event.value);
    prev_ts = event.ts;
  }
}

StatusOr<LandmarkWindow> LandmarkWindow::Deserialize(Reader& reader) {
  LandmarkWindow window;
  SS_ASSIGN_OR_RETURN(window.id, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(window.ts_start, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(window.ts_end, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(uint8_t closed, reader.ReadU8());
  window.closed = closed != 0;
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > reader.remaining() / 9 + 1) {
    return Status::Corruption("LandmarkWindow: event count exceeds payload");
  }
  window.events.reserve(count);
  Timestamp prev_ts = window.ts_start;
  for (uint64_t i = 0; i < count; ++i) {
    Event event;
    SS_ASSIGN_OR_RETURN(int64_t delta, reader.ReadSignedVarint());
    event.ts = prev_ts + delta;
    prev_ts = event.ts;
    SS_ASSIGN_OR_RETURN(event.value, reader.ReadDouble());
    window.events.push_back(event);
  }
  return window;
}

}  // namespace ss
