#include "src/core/estimator.h"

#include <algorithm>
#include <cmath>

namespace ss {

namespace {

// Squared coefficient of variation of interarrivals, (σt/µt)²; 1.0 when the
// stream model has too little data (the Poisson value — the natural prior).
double InterarrivalCv2(const StreamStats& stats) {
  double mu = stats.MeanInterarrival();
  if (stats.interarrival.count() < 2 || mu <= 0) {
    return 1.0;
  }
  double cv = stats.StdDevInterarrival() / mu;
  return cv * cv;
}

}  // namespace

MeanVar EstimateSubWindowCount(double count, double frac, const StreamStats& stats,
                               ArrivalModel model) {
  frac = std::clamp(frac, 0.0, 1.0);
  MeanVar out;
  out.mean = count * frac;
  double bernoulli = frac * (1.0 - frac);
  if (model == ArrivalModel::kPoisson) {
    out.variance = count * bernoulli;  // Binomial(C, f)
  } else {
    out.variance = InterarrivalCv2(stats) * count * bernoulli;
  }
  // Discretization floor: even a perfectly regular stream has ±1-event
  // uncertainty at each sub-window boundary (the proportional share is
  // continuous, the truth is an integer count). Without it, zero-variance
  // streams emit point intervals that systematically miss.
  out.variance = std::max(out.variance, bernoulli);
  return out;
}

MeanVar EstimateSubWindowSum(double sum, double count, double frac, const StreamStats& stats,
                             ArrivalModel model) {
  frac = std::clamp(frac, 0.0, 1.0);
  MeanVar out;
  out.mean = sum * frac;
  double mu_v = stats.MeanValue();
  double var_v = stats.StdDevValue() * stats.StdDevValue();
  double cv2 = model == ArrivalModel::kPoisson ? 1.0 : InterarrivalCv2(stats);
  out.variance = (cv2 * mu_v * mu_v + var_v) * count * frac * (1.0 - frac);
  // Boundary-discretization floor: one event's worth of value mass at each
  // sub-window edge (see EstimateSubWindowCount).
  out.variance = std::max(out.variance, (mu_v * mu_v + var_v) * frac * (1.0 - frac));
  return out;
}

MeanVar EstimateSubWindowFrequency(double count, double value_freq, double frac,
                                   double count_variance) {
  frac = std::clamp(frac, 0.0, 1.0);
  MeanVar out;
  out.mean = value_freq * frac;
  if (value_freq <= 0) {
    return out;  // no occurrences in the whole window: the sub-window has none
  }
  if (count > 1) {
    // Hypergeometric variance at the expected draw count C_t = C·f:
    //   V·(Ct/C)·(1−Ct/C)·(C−Ct)/(C−1)
    double ct = count * frac;
    double inner = value_freq * frac * (1.0 - frac) * (count - ct) / (count - 1.0);
    // Plus variance of the conditional mean (V/C)·C_t over the count posterior.
    double ratio = value_freq / count;
    out.variance = std::max(0.0, inner) + ratio * ratio * count_variance;
  }
  // Boundary-discretization floor (see EstimateSubWindowCount): the value's
  // occurrences land on whole events, so a partial overlap always carries at
  // least Bernoulli uncertainty about the boundary event. Without it,
  // single-element windows (count <= 1, where the hypergeometric term
  // degenerates) emit zero-variance point intervals that systematically miss
  // whenever 0 < frac < 1.
  out.variance = std::max(out.variance, frac * (1.0 - frac));
  return out;
}

double MembershipProbability(double frac, double occurrences) {
  frac = std::clamp(frac, 0.0, 1.0);
  if (occurrences <= 0) {
    return 0.0;
  }
  return 1.0 - std::pow(1.0 - frac, occurrences);
}

Interval NormalInterval(double exact, double mean, double variance, double confidence,
                        bool floor_at_zero) {
  double total = exact + mean;
  if (variance <= 0) {
    return Interval{total, total};
  }
  NormalDist dist(total, std::sqrt(variance));
  double alpha = (1.0 - confidence) / 2.0;
  Interval out{dist.Quantile(alpha), dist.Quantile(1.0 - alpha)};
  if (floor_at_zero) {
    // The estimated part is a non-negative quantity: its contribution to the
    // lower bound cannot go below zero, so lo never undercuts the exact part.
    out.lo = std::max(out.lo, exact);
    out.hi = std::max(out.hi, out.lo);
  }
  return out;
}

Interval BinomialInterval(double exact, int64_t n, double p, double confidence) {
  p = std::clamp(p, 0.0, 1.0);
  // Degenerate parameters make the Binomial a point mass; short-circuit them
  // rather than trusting quantile search at the support's edges.
  if (n <= 0 || p <= 0.0) {
    return Interval{exact, exact};
  }
  if (p >= 1.0) {
    return Interval{exact + static_cast<double>(n), exact + static_cast<double>(n)};
  }
  BinomialDist dist(n, p);
  double alpha = (1.0 - confidence) / 2.0;
  return Interval{exact + static_cast<double>(dist.Quantile(alpha)),
                  exact + static_cast<double>(dist.Quantile(1.0 - alpha))};
}

}  // namespace ss
