#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ss {

namespace {

constexpr Timestamp kHour = 3600;
constexpr Timestamp kDay = 24 * kHour;

}  // namespace

// ------------------------------------------------------------ SyntheticStream

SyntheticStream::SyntheticStream(const SyntheticStreamSpec& spec)
    : value_rng_(Mix64(spec.seed ^ 0x5eed0001)), value_universe_(spec.value_universe) {
  uint64_t arrival_seed = Mix64(spec.seed ^ 0x5eed0002);
  switch (spec.arrival) {
    case ArrivalKind::kPoisson:
      arrivals_ = std::make_unique<PoissonArrivals>(1.0 / spec.mean_interarrival, arrival_seed);
      break;
    case ArrivalKind::kParetoInfiniteVariance:
      arrivals_ = std::make_unique<ParetoArrivals>(spec.mean_interarrival, 1.2, arrival_seed);
      break;
    case ArrivalKind::kParetoFiniteVariance:
      arrivals_ = std::make_unique<ParetoArrivals>(spec.mean_interarrival, 2.2, arrival_seed);
      break;
    case ArrivalKind::kRegular:
      arrivals_ = std::make_unique<RegularArrivals>(
          std::max<Timestamp>(1, static_cast<Timestamp>(spec.mean_interarrival)));
      break;
  }
}

Event SyntheticStream::Next() {
  Timestamp ts = arrivals_->Next();
  // SummaryStore appends must be monotone; integer quantization of
  // sub-unit interarrivals can repeat a timestamp, which is fine (>=).
  if (ts < last_ts_) {
    ts = last_ts_;
  }
  last_ts_ = ts;
  double value = static_cast<double>(value_rng_.NextBounded(
      static_cast<uint64_t>(value_universe_)));
  return Event{ts, value};
}

// ------------------------------------------------------ ClusterTraceGenerator

ClusterTraceGenerator::ClusterTraceGenerator(Timestamp sample_period, double outlier_rate,
                                             uint64_t seed)
    : period_(sample_period), outlier_rate_(outlier_rate), rng_(Mix64(seed ^ 0xc105)) {}

Event ClusterTraceGenerator::Next() {
  t_ += period_;
  double daily = std::sin(2.0 * M_PI * static_cast<double>(t_ % kDay) / kDay);
  double base = 0.30 + 0.08 * daily + 0.02 * rng_.NextGaussian();
  double value = base;
  if (rng_.NextBernoulli(outlier_rate_)) {
    // Utilization spike: heavy-tailed burst well past the boxplot fences.
    value = base + 0.6 + 0.5 * rng_.NextPareto(0.2, 3.0);
  }
  value = std::clamp(value, 0.0, 4.0);
  return Event{t_, value};
}

// --------------------------------------------------------- MLabTraceGenerator

MLabTraceGenerator::MLabTraceGenerator(double mean_interarrival, int64_t num_ips, double zipf_s,
                                       uint64_t seed)
    : arrivals_(1.0 / mean_interarrival, Mix64(seed ^ 0x31ab0001)),
      zipf_(num_ips, zipf_s),
      rng_(Mix64(seed ^ 0x31ab0002)) {}

Event MLabTraceGenerator::Next() {
  Timestamp ts = arrivals_.Next();
  double ip = static_cast<double>(zipf_.Sample(rng_));
  return Event{ts, ip};
}

// --------------------------------------------------------- TsmBackupGenerator

TsmBackupGenerator::TsmBackupGenerator(uint64_t node_id, double failure_rate, uint64_t seed)
    : failure_rate_(failure_rate), rng_(Mix64(seed ^ node_id)), t_(0) {
  // Per-node scale spans ~2 orders of magnitude (production backup
  // populations are highly skewed).
  node_scale_ = std::exp(rng_.NextGaussian() * 1.2 + 1.0);
}

Event TsmBackupGenerator::Next() {
  t_ += kHour;
  if (rng_.NextBernoulli(failure_rate_)) {
    return Event{t_, 0.0};  // failed backup uploads nothing
  }
  // Mostly-incremental backups: lognormal around ~100 MB × node scale.
  double mb = node_scale_ * std::exp(rng_.NextGaussian() * 0.8 + std::log(100.0));
  return Event{t_, mb};
}

// ------------------------------------------------------ forecast series (§7.1)

const char* ForecastDatasetName(ForecastDataset dataset) {
  switch (dataset) {
    case ForecastDataset::kEcon:
      return "econ";
    case ForecastDataset::kWiki:
      return "wiki";
    case ForecastDataset::kNoaa:
      return "noaa";
  }
  return "unknown";
}

std::vector<Event> GenerateForecastSeries(ForecastDataset dataset, int days, uint64_t seed) {
  Rng rng(Mix64(seed ^ (0xf04ecau + static_cast<uint64_t>(dataset))));
  std::vector<Event> series;
  series.reserve(static_cast<size_t>(days));
  double level = 100.0;
  for (int d = 0; d < days; ++d) {
    double t = static_cast<double>(d);
    double value = 0.0;
    switch (dataset) {
      case ForecastDataset::kEcon: {
        // Economic indicator: strong trend + mild noise + rare large
        // outliers concentrated early in the series (old outliers are what
        // decay helpfully forgets — the paper saw a net accuracy *gain*).
        level += 0.08 + 0.02 * rng.NextGaussian();
        value = level + 1.5 * rng.NextGaussian();
        bool early = d < days / 2;
        if (rng.NextBernoulli(early ? 0.02 : 0.002)) {
          value += (rng.NextBernoulli(0.5) ? 1 : -1) * (30.0 + 20.0 * rng.NextDouble());
        }
        break;
      }
      case ForecastDataset::kWiki: {
        // Page traffic: trend + strong weekly cycle + mild annual cycle +
        // multiplicative noise. Long-range seasonal history matters, so
        // exponential decay's aggressive forgetting hurts (§7.1.1).
        double trend = 200.0 + 0.05 * t;
        double weekly = 40.0 * std::sin(2.0 * M_PI * t / 7.0);
        double annual = 25.0 * std::sin(2.0 * M_PI * t / 365.25);
        value = (trend + weekly + annual) * (1.0 + 0.05 * rng.NextGaussian());
        break;
      }
      case ForecastDataset::kNoaa: {
        // Daily temperature: dominant, highly regular annual cycle (kept
        // strictly positive so percentage-error metrics stay meaningful).
        double annual = 10.0 * std::sin(2.0 * M_PI * (t + 30.0) / 365.25);
        value = 18.0 + annual + 1.5 * rng.NextGaussian();
        break;
      }
    }
    series.push_back(Event{static_cast<Timestamp>(d) * kDay, value});
  }
  return series;
}

}  // namespace ss
