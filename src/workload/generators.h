// Synthetic stream generators standing in for the paper's datasets. Every
// generator takes an explicit seed and is deterministic, so all experiments
// reproduce bit-for-bit.
//
//   SyntheticStream        — §7.2 microbenchmark streams: Poisson or Pareto
//                            (α=1.2 / α=2.2) arrivals, uniform values from a
//                            finite set.
//   ClusterTraceGenerator  — Google-cluster-style CPU utilization: outlier-
//                            heavy (the paper's trace has outliers in ~60% of
//                            intervals).
//   MLabTraceGenerator     — M-Lab-style visit log: Poisson arrivals, Zipf-
//                            distributed client IPs.
//   TsmBackupGenerator     — TSM-style backup log: per-node hourly backups,
//                            ~1% failures, heavy-tailed backup sizes.
//   ForecastSeriesGenerator— Econ / Wiki / NOAA stand-ins: daily series with
//                            trend, seasonality, noise, and outliers chosen
//                            to mimic each dataset's character (§7.1.1).
#ifndef SUMMARYSTORE_SRC_WORKLOAD_GENERATORS_H_
#define SUMMARYSTORE_SRC_WORKLOAD_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/window.h"  // Event
#include "src/random/arrival.h"
#include "src/random/rng.h"
#include "src/random/zipf.h"

namespace ss {

// ----------------------------------------------------------- microbenchmarks

enum class ArrivalKind : uint8_t {
  kPoisson = 0,
  kParetoInfiniteVariance = 1,  // α = 1.2 (paper's pathological case)
  kParetoFiniteVariance = 2,    // α = 2.2
  kRegular = 3,
};

struct SyntheticStreamSpec {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double mean_interarrival = 1.0;  // stream time units between events
  int64_t value_universe = 1000;   // values uniform over {0 .. universe-1}
  uint64_t seed = 42;
};

// Pull-based generator of time-ordered events.
class SyntheticStream {
 public:
  explicit SyntheticStream(const SyntheticStreamSpec& spec);

  Event Next();

 private:
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng value_rng_;
  int64_t value_universe_;
  Timestamp last_ts_ = -1;
};

// -------------------------------------------------------------- applications

// CPU utilization samples in [0, 1]. Regular sampling with a daily pattern;
// `outlier_rate` controls per-sample spike probability, tuned so that with
// the paper's interval-based boxplot test the majority of intervals contain
// at least one outlier.
class ClusterTraceGenerator {
 public:
  ClusterTraceGenerator(Timestamp sample_period, double outlier_rate, uint64_t seed);

  Event Next();

 private:
  Timestamp period_;
  double outlier_rate_;
  Rng rng_;
  Timestamp t_ = 0;
};

// Visit log: Poisson arrivals, value = client IP rank drawn from Zipf.
class MLabTraceGenerator {
 public:
  MLabTraceGenerator(double mean_interarrival, int64_t num_ips, double zipf_s, uint64_t seed);

  Event Next();
  int64_t num_ips() const { return zipf_.n(); }

 private:
  PoissonArrivals arrivals_;
  ZipfSampler zipf_;
  Rng rng_;
};

// One node's backup history: hourly events, value = bytes uploaded (0 on
// failure). Backup sizes are lognormal (heavy-tailed, per Wallace et al.).
class TsmBackupGenerator {
 public:
  TsmBackupGenerator(uint64_t node_id, double failure_rate, uint64_t seed);

  Event Next();

 private:
  double failure_rate_;
  Rng rng_;
  Timestamp t_;
  double node_scale_;  // per-node mean backup size multiplier
};

// ----------------------------------------------------------------- forecasting

enum class ForecastDataset : uint8_t { kEcon = 0, kWiki = 1, kNoaa = 2 };

const char* ForecastDatasetName(ForecastDataset dataset);

// Daily observations over `days` days (ts = day index).
std::vector<Event> GenerateForecastSeries(ForecastDataset dataset, int days, uint64_t seed);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_WORKLOAD_GENERATORS_H_
