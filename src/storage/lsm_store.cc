#include "src/storage/lsm_store.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <set>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kWalName[] = "wal.log";

// MANIFEST format v1: [fixed32 magic "MSSF"][body][fixed32 crc32c(body)],
// body = [u8 version][varint table_count][varint file_id]*. The legacy
// format (bare varint count + ids) is still read for pre-existing dirs.
constexpr uint32_t kManifestMagic = 0x4653534d;  // "MSSF" little-endian
constexpr uint8_t kManifestVersion = 1;

StatusOr<std::vector<uint32_t>> ParseManifest(const std::string& contents) {
  std::vector<uint32_t> ids;
  bool new_format = false;
  if (contents.size() >= 4) {
    Reader probe(contents);
    auto magic = probe.ReadFixed32();
    new_format = magic.ok() && *magic == kManifestMagic;
  }
  std::string_view body = contents;
  if (new_format) {
    if (contents.size() < 4 + 1 + 4) {
      return Status::Corruption("manifest truncated");
    }
    body = std::string_view(contents).substr(4, contents.size() - 8);
    Reader crc_reader(std::string_view(contents).substr(contents.size() - 4));
    uint32_t stored_crc = *crc_reader.ReadFixed32();
    if (Crc32c(body) != stored_crc) {
      return Status::Corruption("manifest checksum mismatch");
    }
  }
  Reader reader(body);
  if (new_format) {
    SS_ASSIGN_OR_RETURN(uint8_t version, reader.ReadU8());
    if (version > kManifestVersion) {
      return Status::Corruption("unsupported manifest version " + std::to_string(version));
    }
  }
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(uint64_t file_id, reader.ReadVarint());
    ids.push_back(static_cast<uint32_t>(file_id));
  }
  return ids;
}

// file_id of a "<digits>.sst" directory entry, or nullopt for anything else.
std::optional<uint32_t> SstFileId(const std::string& name) {
  if (name.size() <= 4 || name.substr(name.size() - 4) != ".sst") {
    return std::nullopt;
  }
  std::string stem = name.substr(0, name.size() - 4);
  if (stem.empty() || stem.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return static_cast<uint32_t>(std::strtoul(stem.c_str(), nullptr, 10));
}

}  // namespace

LsmStore::LsmStore(std::string dir, const LsmOptions& options)
    : dir_(std::move(dir)), options_(options), block_cache_(options.block_cache_bytes) {}

LsmStore::~LsmStore() {
  // Make a best effort to persist the memtable so short-lived stores survive
  // reopen even without an explicit Flush(); WAL replay would recover it
  // anyway. Destroying the store while writers are still calling into it is
  // a caller bug, but an in-flight group commit from a writer that has
  // already been acknowledged cannot happen (the leader acks only after
  // reacquiring mu_), so waiting for the flag is enough to keep the WAL
  // rotation in FlushMemtableLocked exclusive.
  std::unique_lock<std::mutex> lock(mu_);
  write_cv_.wait(lock, [this] { return !commit_in_flight_; });
  if (!memtable_.empty() && !wal_poisoned_) {
    Status s = FlushMemtableLocked();
    if (!s.ok()) {
      SS_LOG(Warning) << "LsmStore shutdown flush failed: " << s;
    }
  }
}

StatusOr<std::unique_ptr<LsmStore>> LsmStore::Open(const std::string& dir,
                                                   const LsmOptions& options) {
  SS_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<LsmStore> store(new LsmStore(dir, options));
  SS_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string LsmStore::TablePath(uint32_t file_id) const {
  return dir_ + "/" + std::to_string(file_id) + ".sst";
}

Status LsmStore::Recover() {
  static Counter& orphan_gc =
      MetricRegistry::Default().GetCounter("ss_storage_orphan_gc_total");
  static Counter& salvage_skipped =
      MetricRegistry::Default().GetCounter("ss_storage_salvage_skipped_tables_total");
  static Counter& recovery_flush =
      MetricRegistry::Default().GetCounter("ss_storage_recovery_flush_total");
  std::lock_guard<std::mutex> lock(mu_);
  std::string manifest_path = dir_ + "/" + kManifestName;
  std::vector<uint32_t> live_ids;
  if (FileExists(manifest_path)) {
    SS_ASSIGN_OR_RETURN(std::string manifest, ReadFileToString(manifest_path));
    SS_ASSIGN_OR_RETURN(live_ids, ParseManifest(manifest));
  }
  std::set<uint32_t> live(live_ids.begin(), live_ids.end());
  for (uint32_t file_id : live_ids) {
    next_file_id_ = std::max(next_file_id_, file_id + 1);
    auto table = SsTable::Open(TablePath(file_id), file_id);
    if (!table.ok()) {
      if (!options_.salvage) {
        return table.status();
      }
      salvage_skipped.Inc();
      // Keep the damaged file on disk for forensics; it stays GC-protected
      // until the next manifest rewrite drops it from the live set.
      SS_LOG(Warning) << "LsmStore salvage: skipping unreadable table " << TablePath(file_id)
                      << ": " << table.status();
      continue;
    }
    tables_.push_back(std::move(table).value());
  }
  // Scan the directory: garbage-collect .sst files a crash orphaned before
  // they reached the MANIFEST, stray atomic-write temps, and half-finished
  // WAL rotations. Advance next_file_id_ past every id ever seen on disk so
  // a new table can never collide with (and silently shadow) a leftover.
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  for (const std::string& name : names) {
    if (std::optional<uint32_t> file_id = SstFileId(name)) {
      next_file_id_ = std::max(next_file_id_, *file_id + 1);
      if (live.find(*file_id) == live.end()) {
        SS_RETURN_IF_ERROR(RemoveFileIfExists(dir_ + "/" + name));
        orphan_gc.Inc();
        SS_LOG(Warning) << "LsmStore recovery: removed orphaned table " << name;
      }
    } else if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      SS_RETURN_IF_ERROR(RemoveFileIfExists(dir_ + "/" + name));
      orphan_gc.Inc();
    } else if (name == std::string(kWalName) + ".new") {
      SS_RETURN_IF_ERROR(RemoveFileIfExists(dir_ + "/" + name));
      orphan_gc.Inc();
    }
  }
  // Replay the WAL into the memtable, then keep appending to the same log.
  std::string wal_path = dir_ + "/" + kWalName;
  SS_ASSIGN_OR_RETURN(uint64_t recovered,
                      WalReplay(wal_path, [this](std::string_view key,
                                                 std::optional<std::string_view> value) {
                        memtable_bytes_ += key.size() + (value ? value->size() : 0) + 32;
                        if (value.has_value()) {
                          memtable_.insert_or_assign(std::string(key), std::string(*value));
                        } else {
                          memtable_.insert_or_assign(std::string(key), std::nullopt);
                        }
                      }));
  if (recovered > 0) {
    SS_LOG(Debug) << "LsmStore recovered " << recovered << " WAL records";
  }
  if (memtable_bytes_ >= options_.memtable_bytes && !memtable_.empty()) {
    // A replayed memtable already over threshold would otherwise sit
    // unflushed until the next write; flush now (this also rotates the WAL
    // and leaves wal_ open on the fresh log).
    recovery_flush.Inc();
    SS_RETURN_IF_ERROR(FlushMemtableLocked());
  } else {
    SS_ASSIGN_OR_RETURN(wal_, WalWriter::Open(wal_path, /*truncate=*/false));
    // Open may have just created the log: persist its directory entry, or a
    // power loss could drop the whole file along with fsynced records in it.
    SS_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return Status::Ok();
}

Status LsmStore::PutBatch(const WriteBatch& batch) {
  static LatencyHistogram& follower_wait_us = MetricRegistry::Default().GetHistogram(
      "ss_storage_group_commit_wait_us", "role=\"follower\"");
  static LatencyHistogram& leader_wait_us = MetricRegistry::Default().GetHistogram(
      "ss_storage_group_commit_wait_us", "role=\"leader\"");
  if (batch.empty()) {
    return Status::Ok();
  }
  PendingWrite self;
  self.batch = &batch;
  std::unique_lock<std::mutex> lock(mu_);
  write_queue_.push_back(&self);
  bool waited = write_queue_.front() != &self;
  Stopwatch wait;
  // Park until a leader commits us, or we reach the front of the queue and
  // become the leader ourselves. Group members stay in the queue until their
  // commit completes, so "front of queue" alone means no commit is running.
  write_cv_.wait(lock, [this, &self] { return self.done || write_queue_.front() == &self; });
  if (self.done) {
    double us = wait.ElapsedMicros();
    follower_wait_us.Record(us);
    FlightRecorder::Default().Record(FlightEventType::kGroupCommitFollow,
                                     static_cast<uint64_t>(us));
    return self.status;
  }
  if (waited) {
    // Queued behind an in-flight commit, then promoted to lead the next group.
    leader_wait_us.Record(wait.ElapsedMicros());
  }
  return CommitGroupLocked(lock);
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(key, value);
  return PutBatch(batch);
}

Status LsmStore::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(key);
  return PutBatch(batch);
}

Status LsmStore::CommitGroupLocked(std::unique_lock<std::mutex>& lock) {
  static Counter& poison_total =
      MetricRegistry::Default().GetCounter("ss_storage_wal_poison_total");
  static Counter& group_commits =
      MetricRegistry::Default().GetCounter("ss_storage_group_commit_total");
  static LatencyHistogram& group_size =
      MetricRegistry::Default().GetHistogram("ss_storage_group_commit_size");
  static LatencyHistogram& apply_us =
      MetricRegistry::Default().GetHistogram("ss_storage_batch_apply_us");
  static LatencyHistogram& wal_append_phase_us = MetricRegistry::Default().GetHistogram(
      "ss_storage_write_phase_us", "phase=\"wal_append\"");
  static LatencyHistogram& wal_fsync_phase_us = MetricRegistry::Default().GetHistogram(
      "ss_storage_write_phase_us", "phase=\"wal_fsync\"");
  static LatencyHistogram& apply_phase_us = MetricRegistry::Default().GetHistogram(
      "ss_storage_write_phase_us", "phase=\"memtable_apply\"");
  // Adopt every writer queued so far as one commit group. Writers arriving
  // after this point stay queued behind us and form the next group.
  std::vector<PendingWrite*> group(write_queue_.begin(), write_queue_.end());
  Status log_status;
  size_t records = 0;
  if (wal_poisoned_) {
    log_status = Status::IoError("LsmStore: WAL poisoned by an earlier write failure");
  } else {
    // Log the whole group with mu_ released: one WAL append pass, one fsync.
    // Exclusive WAL access without the lock is guaranteed by queue position
    // (only the front writer commits) plus commit_in_flight_, which blocks
    // WAL rotation until we reacquire mu_. Readers proceed during the fsync.
    commit_in_flight_ = true;
    lock.unlock();
    Stopwatch append_phase;
    for (PendingWrite* writer : group) {
      for (const WriteBatch::Op& op : writer->batch->ops()) {
        log_status = wal_->Append(
            op.key, op.value ? std::optional<std::string_view>(*op.value) : std::nullopt);
        if (!log_status.ok()) {
          break;
        }
        ++records;
      }
      if (!log_status.ok()) {
        break;
      }
    }
    wal_append_phase_us.Record(append_phase.ElapsedMicros());
    FlightRecorder::Default().Record(FlightEventType::kWalAppend, records);
    if (log_status.ok() && options_.sync_wal) {
      Stopwatch fsync_phase;
      log_status = wal_->Sync();
      wal_fsync_phase_us.Record(fsync_phase.ElapsedMicros());
    }
    lock.lock();
    commit_in_flight_ = false;
    group_commits.Inc();
    group_size.Record(records);
    FlightRecorder::Default().Record(FlightEventType::kGroupCommitLead, group.size(), records);
  }
  if (!log_status.ok()) {
    // A failed append may have left a torn record; a failed fsync leaves
    // records on disk while their writers are told they failed. Either way
    // the log can no longer be trusted to match what we acknowledged, so
    // poison it: the whole group fails, and every subsequent write fails
    // fast instead of acknowledging data that might replay inconsistently.
    if (!wal_poisoned_) {
      wal_poisoned_ = true;
      poison_total.Inc();
      SS_LOG(Warning) << "LsmStore: WAL write failed, store is now read-only: " << log_status;
      PoisonDumpLocked("wal-commit-poison", 0);
    }
  } else {
    // Apply to the memtable only after the full log step succeeded, in queue
    // order so later writes to the same key shadow earlier ones.
    Stopwatch apply_phase;
    ScopedTimer apply_timer(apply_us);
    for (PendingWrite* writer : group) {
      for (const WriteBatch::Op& op : writer->batch->ops()) {
        memtable_bytes_ += op.key.size() + (op.value ? op.value->size() : 0) + 32;
        memtable_.insert_or_assign(op.key, op.value);
      }
    }
    apply_phase_us.Record(apply_phase.ElapsedMicros());
    FlightRecorder::Default().Record(FlightEventType::kMemtableApply, records);
  }
  // Acknowledge the group (we are its first member) and hand leadership to
  // the next queued writer, if any.
  for (PendingWrite* writer : group) {
    write_queue_.pop_front();
    writer->status = log_status;
    writer->done = true;
  }
  Status result = log_status;
  if (log_status.ok() && memtable_bytes_ >= options_.memtable_bytes) {
    // Only the leader flushes; group members were already acknowledged (their
    // data is durable in the WAL), so a flush failure surfaces on the leader.
    Status flush_status = FlushMemtableLocked();
    if (!flush_status.ok()) {
      result = flush_status;
    }
  }
  write_cv_.notify_all();
  return result;
}

StatusOr<std::string> LsmStore::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second.has_value()) {
      return Status::NotFound("deleted");
    }
    return *it->second;
  }
  for (auto table = tables_.rbegin(); table != tables_.rend(); ++table) {
    auto result = (*table)->Get(key, &block_cache_);
    if (result.ok()) {
      if (result->tombstone) {
        return Status::NotFound("deleted");
      }
      return std::move(result->value);
    }
    if (result.status().code() != StatusCode::kNotFound) {
      return result.status();
    }
  }
  return Status::NotFound("key not present");
}

Status LsmStore::Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) {
  std::lock_guard<std::mutex> lock(mu_);
  // K-way merge across the memtable and all tables; on duplicate keys the
  // newest source wins (memtable first, then tables in reverse age order).
  std::vector<std::unique_ptr<SsTable::Iterator>> iters;
  iters.reserve(tables_.size());
  for (const auto& table : tables_) {
    auto iter = std::make_unique<SsTable::Iterator>(table.get(), &block_cache_);
    SS_RETURN_IF_ERROR(iter->Seek(start));
    iters.push_back(std::move(iter));
  }
  auto mem_it = memtable_.lower_bound(start);

  auto in_range = [&end](std::string_view key) { return end.empty() || key < end; };

  std::string last_emitted;
  bool emitted_any = false;
  while (true) {
    // Find the smallest current key across all cursors; prefer the newest
    // source on ties.
    std::string_view best_key;
    int best_source = -1;  // -2 = memtable, >=0 = table index (older = smaller)
    bool have = false;
    if (mem_it != memtable_.end() && in_range(mem_it->first)) {
      best_key = mem_it->first;
      best_source = -2;
      have = true;
    }
    for (size_t i = 0; i < iters.size(); ++i) {
      if (!iters[i]->Valid()) {
        continue;
      }
      std::string_view key = iters[i]->entry().key;
      if (!in_range(key)) {
        continue;
      }
      // Memtable and newer tables shadow this entry on equal keys, and newer
      // tables appear later in iters; ">= best" on later entries would pick
      // older duplicates, so use strict "<".
      if (!have || key < best_key) {
        best_key = key;
        best_source = static_cast<int>(i);
        have = true;
      }
    }
    if (!have) {
      break;
    }

    std::string key(best_key);
    bool tombstone;
    std::string value;
    if (best_source == -2) {
      tombstone = !mem_it->second.has_value();
      if (!tombstone) {
        value = *mem_it->second;
      }
    } else {
      // Among tables with this same key, the newest (largest index) wins —
      // but the memtable still outranks all of them (handled above because
      // the memtable cursor was preferred on ties via best_source order).
      int winner = best_source;
      for (size_t i = static_cast<size_t>(best_source) + 1; i < iters.size(); ++i) {
        if (iters[i]->Valid() && iters[i]->entry().key == key) {
          winner = static_cast<int>(i);
        }
      }
      tombstone = iters[static_cast<size_t>(winner)]->entry().tombstone;
      value = iters[static_cast<size_t>(winner)]->entry().value;
    }

    bool keep_going = true;
    if (!tombstone && (!emitted_any || key != last_emitted)) {
      keep_going = visit(key, value);
      last_emitted = key;
      emitted_any = true;
    }

    // Advance every cursor positioned at `key`.
    if (mem_it != memtable_.end() && mem_it->first == key) {
      ++mem_it;
    }
    for (auto& iter : iters) {
      while (iter->Valid() && iter->entry().key == key) {
        SS_RETURN_IF_ERROR(iter->Next());
      }
    }
    if (!keep_going) {
      break;
    }
  }
  return Status::Ok();
}

Status LsmStore::RotateWalLocked() {
  static Counter& poison_total =
      MetricRegistry::Default().GetCounter("ss_storage_wal_poison_total");
  FlightRecorder::Default().Record(FlightEventType::kWalRotate);
  auto rotated = WalWriter::RotateAndOpen(dir_ + "/" + kWalName);
  if (!rotated.ok()) {
    // The rename may have committed before a later step failed, in which
    // case the old writer's fd points at an unlinked inode and its appends
    // would silently vanish. Poison rather than guess.
    wal_poisoned_ = true;
    poison_total.Inc();
    SS_LOG(Warning) << "LsmStore: WAL rotation failed, store is now read-only: "
                    << rotated.status();
    PoisonDumpLocked("wal-rotate-poison", 1);
    return rotated.status();
  }
  wal_ = std::move(rotated).value();
  return Status::Ok();
}

std::string LsmStore::StateTextLocked() const {
  std::string state;
  state += "dir=" + dir_ + "\n";
  state += "wal=" + dir_ + "/" + kWalName + (wal_poisoned_ ? " (poisoned)\n" : "\n");
  state += "memtable_entries=" + std::to_string(memtable_.size()) +
           " memtable_bytes=" + std::to_string(memtable_bytes_) + "\n";
  state += "next_file_id=" + std::to_string(next_file_id_) + "\n";
  state += "tables=";
  for (size_t i = 0; i < tables_.size(); ++i) {
    state += (i == 0 ? "" : ",") + std::to_string(tables_[i]->file_id());
  }
  state += "\n";
  state += "write_queue_depth=" + std::to_string(write_queue_.size()) + "\n";
  return state;
}

void LsmStore::PoisonDumpLocked(const char* reason, uint64_t site) {
  FlightRecorder::Default().Record(FlightEventType::kStorePoison, site);
  auto path = FlightRecorder::Default().Dump(dir_ + "/debug", reason, StateTextLocked());
  if (path.ok()) {
    SS_LOG(Warning) << "LsmStore: flight bundle dumped to " << *path;
  } else {
    SS_LOG(Warning) << "LsmStore: flight dump failed: " << path.status();
  }
}

Status LsmStore::FlushMemtableLocked() {
  if (memtable_.empty()) {
    return Status::Ok();
  }
  static Counter& flush_total =
      MetricRegistry::Default().GetCounter("ss_storage_memtable_flush_total");
  static LatencyHistogram& flush_us =
      MetricRegistry::Default().GetHistogram("ss_storage_memtable_flush_us");
  flush_total.Inc();
  ScopedTimer timer(flush_us);
  FlightRecorder::Default().Record(FlightEventType::kMemtableFlush, memtable_.size(),
                                   next_file_id_);
  // Write ordering (each step durable before the next): (1) SST data +
  // fsync, (2) directory entry, (3) MANIFEST referencing it (atomic replace
  // + dir fsync inside WriteManifestLocked), (4) WAL restart via
  // rotate-then-swap. A crash between any two steps leaves either the old
  // manifest + full WAL, or the new manifest + a WAL whose replay is
  // idempotent over the new table.
  uint32_t file_id = next_file_id_++;
  SS_ASSIGN_OR_RETURN(SstBuilder builder, SstBuilder::Create(TablePath(file_id)));
  for (const auto& [key, value] : memtable_) {
    SS_RETURN_IF_ERROR(builder.Add(key, !value.has_value(), value ? *value : std::string_view()));
  }
  SS_RETURN_IF_ERROR(builder.Finish().status());
  SS_RETURN_IF_ERROR(SyncDir(dir_));
  SS_ASSIGN_OR_RETURN(std::shared_ptr<SsTable> table, SsTable::Open(TablePath(file_id), file_id));
  tables_.push_back(std::move(table));
  SS_RETURN_IF_ERROR(WriteManifestLocked());
  memtable_.clear();
  memtable_bytes_ = 0;
  // The memtable is durable in the table now; restart the WAL.
  SS_RETURN_IF_ERROR(RotateWalLocked());
  if (tables_.size() >= options_.compaction_trigger) {
    SS_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status LsmStore::CompactLocked() {
  if (tables_.size() <= 1) {
    return Status::Ok();
  }
  static Counter& compaction_total =
      MetricRegistry::Default().GetCounter("ss_storage_compaction_total");
  static LatencyHistogram& compaction_us =
      MetricRegistry::Default().GetHistogram("ss_storage_compaction_us");
  compaction_total.Inc();
  ScopedTimer timer(compaction_us);
  FlightRecorder::Default().Record(FlightEventType::kCompaction, tables_.size(), next_file_id_);
  uint32_t file_id = next_file_id_++;
  SS_ASSIGN_OR_RETURN(SstBuilder builder, SstBuilder::Create(TablePath(file_id)));

  // Merge all tables, newest wins, tombstones dropped (full compaction).
  std::vector<std::unique_ptr<SsTable::Iterator>> iters;
  for (const auto& table : tables_) {
    auto iter = std::make_unique<SsTable::Iterator>(table.get(), &block_cache_);
    SS_RETURN_IF_ERROR(iter->Seek(""));
    iters.push_back(std::move(iter));
  }
  while (true) {
    std::string_view best_key;
    bool have = false;
    for (const auto& iter : iters) {
      if (iter->Valid() && (!have || iter->entry().key < best_key)) {
        best_key = iter->entry().key;
        have = true;
      }
    }
    if (!have) {
      break;
    }
    std::string key(best_key);
    bool tombstone = false;
    std::string value;
    for (const auto& iter : iters) {  // last (newest) match wins
      if (iter->Valid() && iter->entry().key == key) {
        tombstone = iter->entry().tombstone;
        value = iter->entry().value;
      }
    }
    if (!tombstone) {
      SS_RETURN_IF_ERROR(builder.Add(key, false, value));
    }
    for (auto& iter : iters) {
      while (iter->Valid() && iter->entry().key == key) {
        SS_RETURN_IF_ERROR(iter->Next());
      }
    }
  }
  SS_RETURN_IF_ERROR(builder.Finish().status());
  SS_RETURN_IF_ERROR(SyncDir(dir_));

  std::vector<std::shared_ptr<SsTable>> old_tables = std::move(tables_);
  tables_.clear();
  SS_ASSIGN_OR_RETURN(std::shared_ptr<SsTable> merged, SsTable::Open(TablePath(file_id), file_id));
  tables_.push_back(std::move(merged));
  SS_RETURN_IF_ERROR(WriteManifestLocked());
  block_cache_.Clear();  // old file blocks are dead
  for (const auto& table : old_tables) {
    SS_RETURN_IF_ERROR(RemoveFileIfExists(table->path()));
  }
  return Status::Ok();
}

Status LsmStore::WriteManifestLocked() {
  Writer body;
  body.PutU8(kManifestVersion);
  body.PutVarint(tables_.size());
  for (const auto& table : tables_) {
    body.PutVarint(table->file_id());
  }
  Writer manifest;
  manifest.PutFixed32(kManifestMagic);
  manifest.PutRaw(body.data().data(), body.size());
  manifest.PutFixed32(Crc32c(body.data()));
  return WriteFileAtomic(dir_ + "/" + kManifestName, manifest.data(), /*sync_dir=*/true);
}

Status LsmStore::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // FlushMemtableLocked rotates the WAL; wait until no leader is appending
  // to it outside the lock. Queued-but-uncommitted writers are fine: they
  // have not touched the log yet and will append to the rotated one.
  write_cv_.wait(lock, [this] { return !commit_in_flight_; });
  if (wal_poisoned_) {
    return Status::IoError("LsmStore: WAL poisoned by an earlier write failure");
  }
  return FlushMemtableLocked();
}

uint64_t LsmStore::ApproximateSizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = memtable_bytes_;
  for (const auto& table : tables_) {
    bytes += table->file_size();
  }
  return bytes;
}

void LsmStore::DropCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  block_cache_.Clear();
}

size_t LsmStore::sstable_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

size_t LsmStore::memtable_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_.size();
}

uint64_t LsmStore::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return block_cache_.hits();
}

uint64_t LsmStore::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return block_cache_.misses();
}

KvBackend::CacheStats LsmStore::GetCacheStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {block_cache_.hits(), block_cache_.misses()};
}

bool LsmStore::Poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_poisoned_;
}

}  // namespace ss
