// Deterministic fault-injection FileOps for crash-consistency tests.
//
// FaultFs interposes on the mutating syscall surface of file_util (open for
// write, write, fsync, rename, unlink, mkdir, directory fsync) and supports
// two schedule kinds:
//
//  * FailAt(op, nth, err): the nth (1-based) call of `op` fails once with
//    errno `err`; all other calls proceed normally. Models a transient
//    syscall error (EIO, ENOSPC) that the process survives.
//
//  * CrashAtOpIndex(n): the nth mutating syscall across ALL kinds "loses
//    power": that call and every later mutating call fail with EIO.
//    ApplyPowerLoss() then rewinds the real filesystem to what a disk would
//    have kept under strict POSIX durability rules:
//      - file bytes written after the last fsync of that file are dropped
//        (the file is truncated back to its synced length);
//      - files created since the last fsync of their parent directory lose
//        their directory entry entirely and vanish;
//      - renames not yet followed by a parent-directory fsync roll back:
//        the target regains its previous durable contents (or disappears if
//        it did not exist) and a never-dir-synced source vanishes.
//    SetTornWriteBytes(k) additionally persists the first k bytes of the
//    crashing write's buffer (a torn tail); those bytes — and everything
//    written to that file before them — count as persisted.
//
// Reads (pread, O_RDONLY opens) and close always pass through, even after a
// crash, so a dying store can tear itself down without leaking descriptors.
// Fsync calls are tracked but NOT forwarded to the kernel: durability is
// simulated, which keeps crash-matrix runs fast and deterministic.
//
// All methods are thread-safe behind one mutex; schedules are configured
// before the store under test starts issuing I/O.
#ifndef SUMMARYSTORE_SRC_STORAGE_FAULT_FS_H_
#define SUMMARYSTORE_SRC_STORAGE_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/file_util.h"

namespace ss {

enum class FaultOp { kOpen, kWrite, kFsync, kRename, kUnlink, kMkdir, kFsyncDir };

const char* FaultOpName(FaultOp op);

class FaultFs : public FileOps {
 public:
  FaultFs() = default;

  // --- schedule configuration -------------------------------------------
  void FailAt(FaultOp op, uint64_t nth, int error_code);
  void CrashAtOpIndex(uint64_t nth);
  void SetTornWriteBytes(uint64_t bytes);
  // Deterministic sticky read corruption: every Pread of `path` XORs
  // `xor_mask` into the bytes of [offset, offset + length) it overlaps. The
  // file on disk is untouched — the corruption models a bad sector / bit rot
  // seen by the read path, and "repairing" is just ClearCorruption. The path
  // must match the one the store opens (same string). A zero mask is a no-op.
  void CorruptRange(const std::string& path, uint64_t offset, uint64_t length,
                    uint8_t xor_mask);
  void ClearCorruption(const std::string& path);
  // Clears schedules, counters, and durability tracking (not the real fs).
  void Reset();

  // --- introspection ----------------------------------------------------
  bool crashed() const;
  uint64_t mutating_op_count() const;
  uint64_t op_count(FaultOp op) const;
  uint64_t injected_faults() const;

  // Applies simulated power loss to the real filesystem (see file comment).
  // Call after the store under test has been destroyed.
  Status ApplyPowerLoss();

  // --- FileOps ----------------------------------------------------------
  int Open(const std::string& path, int flags, int mode) override;
  ssize_t Write(int fd, const void* buf, size_t n) override;
  ssize_t Pread(int fd, void* buf, size_t n, uint64_t offset) override;
  int Fsync(int fd) override;
  int Close(int fd) override;
  int Rename(const std::string& from, const std::string& to) override;
  int Unlink(const std::string& path) override;
  int Mkdir(const std::string& path, int mode) override;
  int FsyncDir(const std::string& path) override;

 private:
  struct FileState {
    uint64_t size = 0;          // bytes written through us (current length)
    uint64_t synced = 0;        // bytes guaranteed durable (covered by fsync)
    bool entry_durable = true;  // parent-directory entry fsync'd
  };
  struct RenameRollback {
    std::string from;
    std::string to;
    bool had_old = false;       // `to` existed with durable contents
    std::string old_contents;   // durable contents of `to` before the rename
    bool from_entry_durable = false;
  };
  struct CorruptSpan {
    uint64_t offset;
    uint64_t length;
    uint8_t xor_mask;
  };

  // Returns false when the op must fail, with *error_code set. Fires crash
  // and fail-at schedules. `just_crashed` reports whether THIS call tripped
  // the crash point (torn-write handling). mu_ must be held.
  bool BeginMutatingOpLocked(FaultOp op, int* error_code, bool* just_crashed);

  mutable std::mutex mu_;
  bool crashed_ = false;
  uint64_t crash_at_op_ = 0;      // 0 = no crash scheduled
  uint64_t torn_write_bytes_ = 0;
  uint64_t total_ops_ = 0;
  uint64_t injected_ = 0;
  std::map<FaultOp, uint64_t> op_counts_;
  std::map<FaultOp, std::map<uint64_t, int>> fail_at_;

  std::map<std::string, FileState> files_;   // tracked write-opened paths
  std::map<int, std::string> fds_;           // write fd -> path
  std::map<int, std::string> read_fds_;      // read-only fd -> path (corruption)
  std::map<std::string, std::vector<CorruptSpan>> corrupt_;  // sticky read faults
  std::map<std::string, RenameRollback> rollbacks_;  // keyed by rename target
  std::vector<std::string> rollback_order_;  // targets, oldest first
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_FAULT_FS_H_
