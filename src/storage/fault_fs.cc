#include "src/storage/fault_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss {

namespace {

// Raw helpers that bypass fault accounting: ApplyPowerLoss rewinds the real
// filesystem with these after the simulated machine is already "dead".
bool RawExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t RawSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

Status RawWriteFile(const std::string& path, std::string_view contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("power-loss restore: open " + path);
  }
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("power-loss restore: write " + path);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::Ok();
}

StatusOr<std::string> RawReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("snapshot: open " + path);
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return Status::IoError("snapshot: read " + path);
    }
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Counter& InjectedFaultsCounter() {
  static Counter& counter =
      MetricRegistry::Default().GetCounter("ss_storage_fault_injected_total");
  return counter;
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kFsync:
      return "fsync";
    case FaultOp::kRename:
      return "rename";
    case FaultOp::kUnlink:
      return "unlink";
    case FaultOp::kMkdir:
      return "mkdir";
    case FaultOp::kFsyncDir:
      return "fsyncdir";
  }
  return "unknown";
}

// ------------------------------------------------------------- configuration

void FaultFs::FailAt(FaultOp op, uint64_t nth, int error_code) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_[op][nth] = error_code;
}

void FaultFs::CrashAtOpIndex(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = nth;
}

void FaultFs::SetTornWriteBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_write_bytes_ = bytes;
}

void FaultFs::CorruptRange(const std::string& path, uint64_t offset, uint64_t length,
                           uint8_t xor_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_[path].push_back(CorruptSpan{offset, length, xor_mask});
}

void FaultFs::ClearCorruption(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_.erase(path);
}

void FaultFs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  crash_at_op_ = 0;
  torn_write_bytes_ = 0;
  total_ops_ = 0;
  injected_ = 0;
  op_counts_.clear();
  fail_at_.clear();
  files_.clear();
  fds_.clear();
  read_fds_.clear();
  corrupt_.clear();
  rollbacks_.clear();
  rollback_order_.clear();
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultFs::mutating_op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ops_;
}

uint64_t FaultFs::op_count(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = op_counts_.find(op);
  return it != op_counts_.end() ? it->second : 0;
}

uint64_t FaultFs::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

bool FaultFs::BeginMutatingOpLocked(FaultOp op, int* error_code, bool* just_crashed) {
  *just_crashed = false;
  if (crashed_) {
    *error_code = EIO;
    return false;
  }
  ++total_ops_;
  ++op_counts_[op];
  if (crash_at_op_ != 0 && total_ops_ == crash_at_op_) {
    crashed_ = true;
    ++injected_;
    InjectedFaultsCounter().Inc();
    FlightRecorder::Default().Record(FlightEventType::kFaultInjected,
                                     static_cast<uint64_t>(op), total_ops_);
    *error_code = EIO;
    *just_crashed = true;
    return false;
  }
  auto per_op = fail_at_.find(op);
  if (per_op != fail_at_.end()) {
    auto hit = per_op->second.find(op_counts_[op]);
    if (hit != per_op->second.end()) {
      ++injected_;
      InjectedFaultsCounter().Inc();
      FlightRecorder::Default().Record(FlightEventType::kFaultInjected,
                                       static_cast<uint64_t>(op), total_ops_);
      *error_code = hit->second;
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------------- FileOps

int FaultFs::Open(const std::string& path, int flags, int mode) {
  if ((flags & O_ACCMODE) == O_RDONLY) {
    int fd = ::open(path.c_str(), flags, mode);  // reads survive the "crash"
    if (fd >= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      read_fds_[fd] = path;  // so Pread can apply sticky corruption spans
    }
    return fd;
  }
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kOpen, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  struct stat st;
  bool existed = ::stat(path.c_str(), &st) == 0;
  int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0) {
    return fd;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileState state;
    if (existed) {
      // Pre-existing, never written through us: assume it was durable.
      state.size = static_cast<uint64_t>(st.st_size);
      state.synced = state.size;
      state.entry_durable = true;
    } else {
      state.entry_durable = false;
    }
    it = files_.emplace(path, state).first;
  }
  if (!existed) {
    it->second = FileState{};
    it->second.entry_durable = false;
  } else if ((flags & O_TRUNC) != 0) {
    // In-place truncation destroys the old bytes at once; model it as
    // immediately durable — the strictest reading for the caller.
    it->second.size = 0;
    it->second.synced = 0;
  }
  fds_[fd] = path;
  return fd;
}

ssize_t FaultFs::Write(int fd, const void* buf, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kWrite, &err, &just_crashed)) {
    if (just_crashed && torn_write_bytes_ > 0 && n > 0) {
      // Persist a torn prefix of the dying write. The prefix — and any
      // earlier unsynced bytes of the same file, which a page-granular disk
      // would have carried along — counts as durable.
      size_t torn = std::min<size_t>(torn_write_bytes_, n);
      ssize_t wrote = ::write(fd, buf, torn);
      auto fd_it = fds_.find(fd);
      if (wrote > 0 && fd_it != fds_.end()) {
        FileState& state = files_[fd_it->second];
        state.size += static_cast<uint64_t>(wrote);
        state.synced = state.size;
      }
    }
    errno = err;
    return -1;
  }
  ssize_t wrote = ::write(fd, buf, n);
  if (wrote > 0) {
    auto fd_it = fds_.find(fd);
    if (fd_it != fds_.end()) {
      files_[fd_it->second].size += static_cast<uint64_t>(wrote);
    }
  }
  return wrote;
}

ssize_t FaultFs::Pread(int fd, void* buf, size_t n, uint64_t offset) {
  ssize_t got = ::pread(fd, buf, n, static_cast<off_t>(offset));
  if (got <= 0) {
    return got;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto fd_it = read_fds_.find(fd);
  if (fd_it == read_fds_.end()) {
    fd_it = fds_.find(fd);  // write-opened files can be pread too
    if (fd_it == fds_.end()) {
      return got;
    }
  }
  auto spans_it = corrupt_.find(fd_it->second);
  if (spans_it == corrupt_.end()) {
    return got;
  }
  // Deterministic sticky corruption: XOR the mask into every byte of the
  // read that falls inside a configured span. Repeated reads see identical
  // garbage, exactly like a bad sector.
  char* bytes = static_cast<char*>(buf);
  uint64_t read_end = offset + static_cast<uint64_t>(got);
  for (const CorruptSpan& span : spans_it->second) {
    uint64_t begin = std::max(offset, span.offset);
    uint64_t end = std::min(read_end, span.offset + span.length);
    for (uint64_t pos = begin; pos < end; ++pos) {
      bytes[pos - offset] ^= static_cast<char>(span.xor_mask);
    }
  }
  return got;
}

int FaultFs::Fsync(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kFsync, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  auto fd_it = fds_.find(fd);
  if (fd_it != fds_.end()) {
    FileState& state = files_[fd_it->second];
    state.synced = state.size;
  }
  // Durability is simulated; skipping the real fsync keeps matrix runs fast.
  return 0;
}

int FaultFs::Close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.erase(fd);  // file state (keyed by path) persists until power loss
  read_fds_.erase(fd);
  return ::close(fd);
}

int FaultFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kRename, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  if (rollbacks_.find(to) == rollbacks_.end()) {
    // First uncommitted rename onto `to`: snapshot its durable contents.
    RenameRollback rb;
    rb.from = from;
    rb.to = to;
    if (RawExists(to)) {
      auto contents = RawReadFile(to);
      if (contents.ok()) {
        rb.had_old = true;
        rb.old_contents = std::move(contents).value();
        auto old_state = files_.find(to);
        if (old_state != files_.end() &&
            rb.old_contents.size() > old_state->second.synced) {
          rb.old_contents.resize(old_state->second.synced);
        }
      }
    }
    auto from_state = files_.find(from);
    rb.from_entry_durable =
        from_state != files_.end() ? from_state->second.entry_durable : RawExists(from);
    rollbacks_.emplace(to, std::move(rb));
    rollback_order_.push_back(to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return -1;
  }
  FileState moved;
  auto from_state = files_.find(from);
  if (from_state != files_.end()) {
    moved = from_state->second;
    files_.erase(from_state);
  } else {
    moved.size = RawSize(to);
    moved.synced = moved.size;
  }
  moved.entry_durable = false;  // the new entry needs a dir fsync
  files_[to] = moved;
  for (auto& [open_fd, path] : fds_) {
    (void)open_fd;
    if (path == from) {
      path = to;
    }
  }
  return 0;
}

int FaultFs::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kUnlink, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  int rc = ::unlink(path.c_str());
  if (rc == 0) {
    // Unlinked files do not resurrect: treated as immediately durable.
    files_.erase(path);
  }
  return rc;
}

int FaultFs::Mkdir(const std::string& path, int mode) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kMkdir, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  return ::mkdir(path.c_str(), mode);
}

int FaultFs::FsyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  int err;
  bool just_crashed;
  if (!BeginMutatingOpLocked(FaultOp::kFsyncDir, &err, &just_crashed)) {
    errno = err;
    return -1;
  }
  for (auto& [file_path, state] : files_) {
    if (DirName(file_path) == path) {
      state.entry_durable = true;
    }
  }
  for (auto it = rollback_order_.begin(); it != rollback_order_.end();) {
    if (DirName(*it) == path) {
      rollbacks_.erase(*it);  // rename committed
      it = rollback_order_.erase(it);
    } else {
      ++it;
    }
  }
  // Durability is simulated; no real directory fsync needed.
  return 0;
}

// ---------------------------------------------------------------- power loss

Status FaultFs::ApplyPowerLoss() {
  std::lock_guard<std::mutex> lock(mu_);
  // 1. Roll back uncommitted renames, newest first, so chained renames onto
  //    the same target unwind to the oldest durable contents.
  for (auto it = rollback_order_.rbegin(); it != rollback_order_.rend(); ++it) {
    auto rb_it = rollbacks_.find(*it);
    if (rb_it == rollbacks_.end()) {
      continue;
    }
    const RenameRollback& rb = rb_it->second;
    if (RawExists(rb.to)) {
      if (rb.from_entry_durable) {
        // The source entry was durable, so after the lost rename it is still
        // there holding the new contents.
        ::rename(rb.to.c_str(), rb.from.c_str());
        FileState resurrected;
        resurrected.size = RawSize(rb.from);
        resurrected.synced = files_.count(rb.to) ? files_[rb.to].synced : resurrected.size;
        resurrected.entry_durable = true;
        files_[rb.from] = resurrected;
      } else {
        ::unlink(rb.to.c_str());
      }
    }
    if (rb.had_old) {
      SS_RETURN_IF_ERROR(RawWriteFile(rb.to, rb.old_contents));
    }
    files_.erase(rb.to);
  }
  rollbacks_.clear();
  rollback_order_.clear();
  // 2. Drop never-dir-synced entries and truncate unsynced tails.
  for (const auto& [path, state] : files_) {
    if (!RawExists(path)) {
      continue;
    }
    if (!state.entry_durable) {
      ::unlink(path.c_str());
    } else if (RawSize(path) > state.synced) {
      if (::truncate(path.c_str(), static_cast<off_t>(state.synced)) != 0) {
        return Status::IoError("power-loss truncate " + path);
      }
    }
  }
  files_.clear();
  fds_.clear();
  return Status::Ok();
}

}  // namespace ss
