// Key-value backend interface for SummaryStore's persistence layer.
//
// The paper uses RocksDB "primarily for its good append performance",
// explicitly noting the choice "is not tied to the architecture" (§6). This
// interface captures exactly what SummaryStore needs from a backend — point
// put/get/delete and ordered range scans — with two implementations:
//   * MemoryBackend — a std::map, for tests and ephemeral stores;
//   * LsmStore      — a log-structured store (WAL + memtable + SSTables with
//                     size-tiered compaction + block cache), the durable
//                     RocksDB stand-in.
#ifndef SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_
#define SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ss {

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual StatusOr<std::string> Get(std::string_view key) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // Visits all live entries with start <= key < end in ascending key order;
  // stops early if the visitor returns false.
  using ScanVisitor = std::function<bool(std::string_view key, std::string_view value)>;
  virtual Status Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) = 0;

  // Durability barrier: after Flush returns OK, all prior writes survive
  // reopen. No-op for ephemeral backends.
  virtual Status Flush() = 0;

  // Approximate bytes of live data (logical, pre-compression).
  virtual uint64_t ApproximateSizeBytes() const = 0;

  // Empties internal read caches so subsequent reads hit storage — used by
  // the cold-cache latency benchmarks (§7.2.1 drops all caches per query).
  virtual void DropCaches() {}

  // Cumulative read-cache effectiveness (block cache for the LSM store).
  // Backends without a cache report zeros; per-query deltas of these counts
  // feed QueryTrace's block-cache accounting.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  virtual CacheStats GetCacheStats() const { return {}; }
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_
