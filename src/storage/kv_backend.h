// Key-value backend interface for SummaryStore's persistence layer.
//
// The paper uses RocksDB "primarily for its good append performance",
// explicitly noting the choice "is not tied to the architecture" (§6). This
// interface captures exactly what SummaryStore needs from a backend — point
// put/get/delete and ordered range scans — with two implementations:
//   * MemoryBackend — a std::map, for tests and ephemeral stores;
//   * LsmStore      — a log-structured store (WAL + memtable + SSTables with
//                     size-tiered compaction + block cache), the durable
//                     RocksDB stand-in.
#ifndef SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_
#define SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ss {

// An ordered list of put/delete operations applied through one PutBatch call.
// Batches exist to amortize per-write costs (WAL fsync, lock round-trips):
// a backend acknowledging a batch promises the same durability it promises
// for the equivalent sequence of individual writes, for the whole batch at
// once. Later operations shadow earlier ones on the same key, exactly as if
// they had been issued back to back.
class WriteBatch {
 public:
  // nullopt value = tombstone.
  struct Op {
    std::string key;
    std::optional<std::string> value;
  };

  void Put(std::string_view key, std::string_view value) {
    bytes_ += key.size() + value.size();
    ops_.push_back(Op{std::string(key), std::string(value)});
  }
  void Delete(std::string_view key) {
    bytes_ += key.size();
    ops_.push_back(Op{std::string(key), std::nullopt});
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  // Payload bytes (keys + values), for batch-size tuning by callers.
  size_t ApproximateBytes() const { return bytes_; }
  void Clear() {
    ops_.clear();
    bytes_ = 0;
  }

 private:
  std::vector<Op> ops_;
  size_t bytes_ = 0;
};

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual StatusOr<std::string> Get(std::string_view key) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // True once the backend has entered a fail-fast state (e.g. a poisoned
  // WAL) where writes are rejected until the store is reopened. Health
  // probes surface this so clients can fail over before hitting errors.
  virtual bool Poisoned() const { return false; }

  // Applies every operation in `batch`, in order. The default implementation
  // degrades to one write per op; backends with a write-ahead log override
  // this to log and fsync the group once. On error the batch may have been
  // partially applied (callers treat the whole batch as indeterminate, the
  // same contract a failed Put has).
  virtual Status PutBatch(const WriteBatch& batch) {
    for (const WriteBatch::Op& op : batch.ops()) {
      if (op.value.has_value()) {
        SS_RETURN_IF_ERROR(Put(op.key, *op.value));
      } else {
        SS_RETURN_IF_ERROR(Delete(op.key));
      }
    }
    return Status::Ok();
  }

  // Visits all live entries with start <= key < end in ascending key order;
  // stops early if the visitor returns false.
  using ScanVisitor = std::function<bool(std::string_view key, std::string_view value)>;
  virtual Status Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) = 0;

  // Durability barrier: after Flush returns OK, all prior writes survive
  // reopen. No-op for ephemeral backends.
  virtual Status Flush() = 0;

  // Approximate bytes of live data (logical, pre-compression).
  virtual uint64_t ApproximateSizeBytes() const = 0;

  // Empties internal read caches so subsequent reads hit storage — used by
  // the cold-cache latency benchmarks (§7.2.1 drops all caches per query).
  virtual void DropCaches() {}

  // Cumulative read-cache effectiveness (block cache for the LSM store).
  // Backends without a cache report zeros; per-query deltas of these counts
  // feed QueryTrace's block-cache accounting.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  virtual CacheStats GetCacheStats() const { return {}; }
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_KV_BACKEND_H_
