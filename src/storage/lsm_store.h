// Log-structured merge KV store: the durable backend (RocksDB stand-in).
//
// Write path:  WAL append -> memtable; memtable overflow flushes to a new
//              SSTable; too many tables triggers a full (size-tiered)
//              compaction into one table, dropping tombstones.
// Read path:   memtable, then SSTables newest-to-oldest, through a shared
//              block LRU cache.
// Recovery:    MANIFEST (magic + version + CRC, atomically replaced and
//              dir-fsynced) lists live tables; orphaned .sst/.tmp files and
//              half-rotated WALs are garbage-collected; the WAL replays into
//              a fresh memtable (flushed immediately if over threshold).
//
// Durability:  every acknowledged write under sync_wal=true survives power
//              loss. SST creation and MANIFEST renames are followed by
//              parent-directory fsyncs; the WAL restarts via rotate-then-
//              swap (never in-place truncation); a failed WAL append or
//              fsync poisons the store (writes fail fast) rather than
//              letting the log run ahead of the memtable. See DESIGN.md §8.
//
// All public methods are thread-safe behind a single mutex, but writes use a
// leader/follower group commit (DESIGN.md §9): concurrent writers queue their
// batches, the writer at the front of the queue drains the queue into one
// group, releases the mutex, appends the whole group to the WAL and fsyncs it
// once, then relocks to apply the group to the memtable and acknowledge every
// member. The mutex is never held across the fsync, so reads proceed while a
// commit is in flight, and N contended sync_wal writers share one fsync.
#ifndef SUMMARYSTORE_SRC_STORAGE_LSM_STORE_H_
#define SUMMARYSTORE_SRC_STORAGE_LSM_STORE_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/storage/kv_backend.h"
#include "src/storage/sstable.h"
#include "src/storage/wal.h"

namespace ss {

struct LsmOptions {
  size_t memtable_bytes = 4 << 20;      // flush threshold
  size_t block_cache_bytes = 32 << 20;  // shared data-block cache
  size_t compaction_trigger = 8;        // full-compact when #tables reaches this
  bool sync_wal = false;                // fsync the WAL on every write
  // Salvage mode: a missing or unreadable SSTable listed in the MANIFEST is
  // skipped with a logged warning instead of failing Open. Data in the
  // skipped table is lost; use only to bring a damaged store back online.
  bool salvage = false;
};

class LsmStore : public KvBackend {
 public:
  static StatusOr<std::unique_ptr<LsmStore>> Open(const std::string& dir,
                                                  const LsmOptions& options = {});
  ~LsmStore() override;

  Status Put(std::string_view key, std::string_view value) override;
  StatusOr<std::string> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  Status PutBatch(const WriteBatch& batch) override;
  Status Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) override;
  Status Flush() override;
  uint64_t ApproximateSizeBytes() const override;
  void DropCaches() override;
  CacheStats GetCacheStats() const override;
  bool Poisoned() const override;

  // Introspection for tests and benches.
  size_t sstable_count() const;
  size_t memtable_entries() const;
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;

 private:
  // One writer waiting in the group-commit queue. Enqueued under mu_ and only
  // touched by its owner (while holding mu_) or by the group leader (which
  // reads `batch` outside mu_ — safe because the owner blocks on `done`, and
  // the enqueue/adopt handoff through mu_ establishes happens-before).
  struct PendingWrite {
    const WriteBatch* batch = nullptr;
    Status status;
    bool done = false;
  };

  LsmStore(std::string dir, const LsmOptions& options);

  Status Recover();
  // The leader path: called by the writer at the front of write_queue_ with
  // mu_ held; commits the whole queued group, acks every member, and returns
  // the caller's (= the group's) status.
  Status CommitGroupLocked(std::unique_lock<std::mutex>& lock);
  // Called at the two poison sites with mu_ held: records the store-poison
  // flight event and best-effort dumps a flight bundle (with the store's
  // state text) to <dir>/debug so the moments before the poison survive.
  void PoisonDumpLocked(const char* reason, uint64_t site);
  std::string StateTextLocked() const;
  Status RotateWalLocked();
  Status FlushMemtableLocked();
  Status CompactLocked();
  Status WriteManifestLocked();
  std::string TablePath(uint32_t file_id) const;

  const std::string dir_;
  const LsmOptions options_;

  mutable std::mutex mu_;
  // nullopt value = tombstone.
  std::map<std::string, std::optional<std::string>, std::less<>> memtable_;
  size_t memtable_bytes_ = 0;
  std::optional<WalWriter> wal_;
  // Set when a WAL append/fsync/rotation fails: the log may be ahead of (or
  // torn relative to) the memtable, so further writes fail fast instead of
  // acknowledging data that might not replay.
  bool wal_poisoned_ = false;
  // Group-commit state (DESIGN.md §9). Writers park here in arrival order;
  // the front entry is the leader. True while the leader has dropped mu_ to
  // append/fsync the WAL: code that replaces or rotates the WAL (memtable
  // flush, shutdown) must first wait for it to clear via write_cv_.
  std::deque<PendingWrite*> write_queue_;
  std::condition_variable write_cv_;
  bool commit_in_flight_ = false;
  std::vector<std::shared_ptr<SsTable>> tables_;  // oldest first
  uint32_t next_file_id_ = 1;
  mutable BlockCache block_cache_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_LSM_STORE_H_
