#include "src/storage/wal.h"

#include "src/common/serde.h"
#include "src/obs/metrics.h"

namespace ss {

StatusOr<WalWriter> WalWriter::Open(const std::string& path, bool truncate) {
  SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path, truncate));
  return WalWriter(std::move(file));
}

Status WalWriter::Append(std::string_view key, std::optional<std::string_view> value) {
  static Counter& appends = MetricRegistry::Default().GetCounter("ss_storage_wal_appends_total");
  static Counter& bytes = MetricRegistry::Default().GetCounter("ss_storage_wal_bytes_total");
  Writer payload;
  payload.PutString(key);
  payload.PutU8(value.has_value() ? 1 : 0);
  if (value.has_value()) {
    payload.PutString(*value);
  }
  Writer record;
  record.PutFixed32(Crc32c(payload.data()));
  record.PutFixed32(static_cast<uint32_t>(payload.size()));
  record.PutRaw(payload.data().data(), payload.size());
  appends.Inc();
  bytes.Inc(record.size());
  return file_.Append(record.data());
}

Status WalWriter::Sync() {
  static Counter& fsyncs = MetricRegistry::Default().GetCounter("ss_storage_wal_fsync_total");
  static LatencyHistogram& fsync_us =
      MetricRegistry::Default().GetHistogram("ss_storage_wal_fsync_us");
  fsyncs.Inc();
  ScopedTimer timer(fsync_us);
  return file_.Sync();
}

StatusOr<uint64_t> WalReplay(const std::string& path, const WalReplayVisitor& visit) {
  if (!FileExists(path)) {
    return uint64_t{0};
  }
  SS_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  Reader reader(contents);
  uint64_t recovered = 0;
  while (!reader.AtEnd()) {
    auto crc = reader.ReadFixed32();
    if (!crc.ok()) {
      break;  // torn tail
    }
    auto len = reader.ReadFixed32();
    if (!len.ok() || reader.remaining() < *len) {
      break;
    }
    auto payload = reader.ReadRaw(*len);
    if (!payload.ok() || Crc32c(*payload) != *crc) {
      break;  // corrupt record; discard it and everything after
    }
    Reader body(*payload);
    auto key = body.ReadString();
    if (!key.ok()) {
      break;
    }
    auto has_value = body.ReadU8();
    if (!has_value.ok()) {
      break;
    }
    if (*has_value != 0) {
      auto value = body.ReadString();
      if (!value.ok()) {
        break;
      }
      visit(*key, *value);
    } else {
      visit(*key, std::nullopt);
    }
    ++recovered;
  }
  return recovered;
}

}  // namespace ss
