#include "src/storage/wal.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss {

namespace {

constexpr uint64_t kReplayChunkBytes = 64 << 10;
constexpr uint64_t kRecordHeaderBytes = 8;  // crc fixed32 + len fixed32

// Bounded-memory forward reader over the log file: serves byte ranges out of
// a sliding chunk, falling back to a direct read for records larger than
// one chunk.
class ChunkedLogReader {
 public:
  ChunkedLogReader(const RandomAccessFile* file, uint64_t file_size)
      : file_(file), file_size_(file_size) {}

  // Points `out` at `n` bytes starting at absolute offset `off`. The view is
  // valid until the next ReadAt call.
  Status ReadAt(uint64_t off, uint64_t n, std::string_view* out) {
    if (off + n > file_size_) {
      return Status::Corruption("wal read past EOF");
    }
    if (off >= buf_start_ && off + n <= buf_start_ + buf_.size()) {
      *out = std::string_view(buf_).substr(off - buf_start_, n);
      return Status::Ok();
    }
    uint64_t len = std::max(n, std::min(kReplayChunkBytes, file_size_ - off));
    SS_RETURN_IF_ERROR(file_->Read(off, len, &buf_));
    buf_start_ = off;
    *out = std::string_view(buf_).substr(0, n);
    return Status::Ok();
  }

 private:
  const RandomAccessFile* file_;
  uint64_t file_size_;
  std::string buf_;
  uint64_t buf_start_ = 0;
};

void CountTornTail(const std::string& path, uint64_t offset, const char* what) {
  static Counter& torn_tails =
      MetricRegistry::Default().GetCounter("ss_storage_wal_torn_tail_total");
  torn_tails.Inc();
  SS_LOG(Warning) << "WAL " << path << ": discarding torn/corrupt tail at offset " << offset
                  << " (" << what << ")";
}

}  // namespace

StatusOr<WalWriter> WalWriter::Open(const std::string& path, bool truncate) {
  SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path, truncate));
  return WalWriter(std::move(file));
}

StatusOr<WalWriter> WalWriter::RotateAndOpen(const std::string& path) {
  std::string fresh = path + ".new";
  SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(fresh, /*truncate=*/true));
  SS_RETURN_IF_ERROR(file.Sync());
  SS_RETURN_IF_ERROR(RenameFile(fresh, path));
  SS_RETURN_IF_ERROR(SyncDir(DirName(path)));
  // The fd follows the inode through the rename, so appends land in the new
  // log now living at `path`.
  return WalWriter(std::move(file));
}

Status WalWriter::Append(std::string_view key, std::optional<std::string_view> value) {
  static Counter& appends = MetricRegistry::Default().GetCounter("ss_storage_wal_appends_total");
  static Counter& bytes = MetricRegistry::Default().GetCounter("ss_storage_wal_bytes_total");
  Writer payload;
  payload.PutString(key);
  payload.PutU8(value.has_value() ? 1 : 0);
  if (value.has_value()) {
    payload.PutString(*value);
  }
  Writer record;
  record.PutFixed32(Crc32c(payload.data()));
  record.PutFixed32(static_cast<uint32_t>(payload.size()));
  record.PutRaw(payload.data().data(), payload.size());
  appends.Inc();
  bytes.Inc(record.size());
  return file_.Append(record.data());
}

Status WalWriter::Sync() {
  static Counter& fsyncs = MetricRegistry::Default().GetCounter("ss_storage_wal_fsync_total");
  static LatencyHistogram& fsync_us =
      MetricRegistry::Default().GetHistogram("ss_storage_wal_fsync_us");
  fsyncs.Inc();
  Stopwatch stopwatch;
  Status status = file_.Sync();
  double us = stopwatch.ElapsedMicros();
  fsync_us.Record(us);
  FlightRecorder::Default().Record(FlightEventType::kWalFsync, static_cast<uint64_t>(us),
                                   status.ok() ? 0 : 1);
  return status;
}

StatusOr<uint64_t> WalReplay(const std::string& path, const WalReplayVisitor& visit) {
  if (!FileExists(path)) {
    return uint64_t{0};
  }
  SS_ASSIGN_OR_RETURN(RandomAccessFile file, RandomAccessFile::Open(path));
  SS_ASSIGN_OR_RETURN(uint64_t file_size, file.Size());
  ChunkedLogReader chunks(&file, file_size);
  uint64_t consumed = 0;
  uint64_t recovered = 0;
  while (consumed < file_size) {
    if (file_size - consumed < kRecordHeaderBytes) {
      CountTornTail(path, consumed, "truncated header");
      break;
    }
    std::string_view header;
    SS_RETURN_IF_ERROR(chunks.ReadAt(consumed, kRecordHeaderBytes, &header));
    Reader header_reader(header);
    uint32_t crc = *header_reader.ReadFixed32();
    uint32_t len = *header_reader.ReadFixed32();
    if (len > file_size - consumed - kRecordHeaderBytes) {
      CountTornTail(path, consumed, "truncated payload");
      break;
    }
    std::string_view payload;
    SS_RETURN_IF_ERROR(chunks.ReadAt(consumed + kRecordHeaderBytes, len, &payload));
    if (Crc32c(payload) != crc) {
      CountTornTail(path, consumed, "checksum mismatch");
      break;
    }
    Reader body(payload);
    auto key = body.ReadString();
    if (!key.ok()) {
      CountTornTail(path, consumed, "bad record body");
      break;
    }
    auto has_value = body.ReadU8();
    if (!has_value.ok()) {
      CountTornTail(path, consumed, "bad record body");
      break;
    }
    if (*has_value != 0) {
      auto value = body.ReadString();
      if (!value.ok()) {
        CountTornTail(path, consumed, "bad record body");
        break;
      }
      visit(*key, *value);
    } else {
      visit(*key, std::nullopt);
    }
    ++recovered;
    consumed += kRecordHeaderBytes + len;
  }
  return recovered;
}

}  // namespace ss
