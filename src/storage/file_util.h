// Thin POSIX file wrappers used by the LSM store: append-only writers with
// fsync, positional readers (pread), atomic whole-file replacement via
// rename, and directory listing. RAII owns every descriptor.
#ifndef SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_
#define SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ss {

// Append-only file handle; created if missing.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  static StatusOr<AppendFile> Open(const std::string& path, bool truncate = false);

  Status Append(std::string_view data);
  Status Sync();
  Status Close();
  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit AppendFile(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t bytes_written_ = 0;
};

// Read-only positional-access file handle.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;
  RandomAccessFile(RandomAccessFile&& other) noexcept;
  RandomAccessFile& operator=(RandomAccessFile&& other) noexcept;

  static StatusOr<RandomAccessFile> Open(const std::string& path);

  // Reads exactly `n` bytes at `offset` into `out` (resized to n).
  Status Read(uint64_t offset, uint64_t n, std::string* out) const;
  StatusOr<uint64_t> Size() const;
  bool is_open() const { return fd_ >= 0; }

 private:
  explicit RandomAccessFile(int fd) : fd_(fd) {}

  int fd_ = -1;
};

StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes `contents` to `path` atomically: temp file + fsync + rename.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

Status CreateDirIfMissing(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
bool FileExists(const std::string& path);
// Recursively removes a directory tree (used by tests / bench cleanup).
Status RemoveDirRecursive(const std::string& path);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_
