// Thin POSIX file wrappers used by the LSM store: append-only writers with
// fsync, positional readers (pread), atomic whole-file replacement via
// rename, directory fsync, and directory listing. RAII owns every
// descriptor.
//
// Every mutating syscall (and pread) is routed through a process-pluggable
// FileOps instance so tests can interpose deterministic fault schedules and
// simulated power loss (see src/storage/fault_fs.h).
#ifndef SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_
#define SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ss {

// Raw syscall surface beneath the file classes below. The base class passes
// straight through to POSIX; FaultFs overrides individual calls to inject
// errors or simulate crashes. Return conventions mirror the syscalls: -1 on
// failure with errno set.
class FileOps {
 public:
  virtual ~FileOps() = default;

  virtual int Open(const std::string& path, int flags, int mode);
  virtual ssize_t Write(int fd, const void* buf, size_t n);
  virtual ssize_t Pread(int fd, void* buf, size_t n, uint64_t offset);
  virtual int Fsync(int fd);
  virtual int Close(int fd);
  virtual int Rename(const std::string& from, const std::string& to);
  virtual int Unlink(const std::string& path);
  virtual int Mkdir(const std::string& path, int mode);
  // fsync of the directory itself; required to make created/renamed/removed
  // entries durable across power loss.
  virtual int FsyncDir(const std::string& path);
};

// Returns the active FileOps (the POSIX passthrough unless a test installed
// an override).
FileOps& GetFileOps();

// Classifies an errno as transient (worth an immediate retry: interrupted or
// momentarily unavailable I/O) vs permanent. Shared by the file wrappers'
// retry loops and the higher-level one-retry read paths; every retry taken
// because of it is counted in ss_storage_read_retry_total (reads) so retry
// storms are visible.
bool IsTransientIoError(int err);

// Installs `ops` process-wide; nullptr restores the POSIX default. Callers
// must not swap implementations while files opened through the old one are
// still in flight (tests install before opening a store and uninstall after
// closing it).
void SetFileOpsForTest(FileOps* ops);

// Append-only file handle; created if missing.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  static StatusOr<AppendFile> Open(const std::string& path, bool truncate = false);

  Status Append(std::string_view data);
  Status Sync();
  Status Close();
  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit AppendFile(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t bytes_written_ = 0;
};

// Read-only positional-access file handle.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;
  RandomAccessFile(RandomAccessFile&& other) noexcept;
  RandomAccessFile& operator=(RandomAccessFile&& other) noexcept;

  static StatusOr<RandomAccessFile> Open(const std::string& path);

  // Reads exactly `n` bytes at `offset` into `out` (resized to n).
  Status Read(uint64_t offset, uint64_t n, std::string* out) const;
  StatusOr<uint64_t> Size() const;
  bool is_open() const { return fd_ >= 0; }

 private:
  explicit RandomAccessFile(int fd) : fd_(fd) {}

  int fd_ = -1;
};

StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes `contents` to `path` atomically: temp file + fsync + rename. With
// `sync_dir`, also fsyncs the parent directory so the rename survives power
// loss (required for anything that must be durable, e.g. the MANIFEST).
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync_dir = false);

Status CreateDirIfMissing(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
// Fsyncs a directory, making entry creations/renames/removals durable.
Status SyncDir(const std::string& path);
// Parent directory of `path` ("a/b/c" -> "a/b", "c" -> ".").
std::string DirName(const std::string& path);
bool FileExists(const std::string& path);
// Recursively removes a directory tree (used by tests / bench cleanup).
Status RemoveDirRecursive(const std::string& path);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_FILE_UTIL_H_
