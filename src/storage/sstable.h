// Immutable sorted-string-table file: the on-disk unit of the LSM store.
//
// Layout:
//   data block 0 | data block 1 | ... | index block | footer
//
// Data block: repeated entries
//   [varint klen][key][u8 tombstone][varint vlen][value]   (value absent if tombstone)
// Index block: per data block
//   [varint first_key_len][first_key][varint offset][varint size][fixed32 crc]
// Footer (fixed size, at EOF):
//   [fixed64 index_offset][fixed64 index_size][fixed32 index_crc][fixed64 magic]
//
// Readers binary-search the in-memory index to locate the data block for a
// key, fetch it (through the shared block cache), and scan within.
#ifndef SUMMARYSTORE_SRC_STORAGE_SSTABLE_H_
#define SUMMARYSTORE_SRC_STORAGE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/lru_cache.h"
#include "src/common/serde.h"
#include "src/storage/file_util.h"

namespace ss {

// Cache key: (table file id << 32) | block index.
using BlockCache = LruCache<uint64_t, std::shared_ptr<std::string>>;

inline constexpr uint64_t kSstMagic = 0x53756d6d53746f72ULL;  // "SummStor"
inline constexpr size_t kTargetBlockSize = 4096;

// Streams sorted entries into a new SSTable file.
class SstBuilder {
 public:
  static StatusOr<SstBuilder> Create(const std::string& path);

  // Keys must arrive in strictly increasing order.
  Status Add(std::string_view key, bool tombstone, std::string_view value);

  // Writes index + footer and fsyncs. Returns logical data bytes written.
  StatusOr<uint64_t> Finish();

  uint64_t entry_count() const { return entry_count_; }

 private:
  explicit SstBuilder(AppendFile file) : file_(std::move(file)) {}

  Status FlushBlock();

  AppendFile file_;
  std::string block_;
  std::string block_first_key_;
  std::string last_key_;
  uint64_t offset_ = 0;
  uint64_t entry_count_ = 0;
  Writer index_;
  uint32_t num_blocks_ = 0;
};

class SsTable {
 public:
  struct Entry {
    std::string key;
    bool tombstone;
    std::string value;
  };

  // Opens the file and loads the block index into memory.
  static StatusOr<std::shared_ptr<SsTable>> Open(const std::string& path, uint32_t file_id);

  const std::string& path() const { return path_; }
  uint32_t file_id() const { return file_id_; }
  uint64_t file_size() const { return file_size_; }
  size_t block_count() const { return index_.size(); }
  const std::string& min_key() const { return min_key_; }

  // Point lookup. Found tombstones are reported (the LSM layer must shadow
  // older tables); absent keys return kNotFound.
  struct GetResult {
    bool tombstone;
    std::string value;
  };
  StatusOr<GetResult> Get(std::string_view key, BlockCache* cache) const;

  // Forward iterator over every entry in key order, starting at the first
  // key >= `start`.
  class Iterator {
   public:
    Iterator(const SsTable* table, BlockCache* cache) : table_(table), cache_(cache) {}

    Status Seek(std::string_view start);
    bool Valid() const { return valid_; }
    const Entry& entry() const { return entry_; }
    Status Next();

   private:
    Status LoadBlock(size_t block_idx);

    const SsTable* table_;
    BlockCache* cache_;
    std::vector<Entry> block_entries_;
    size_t block_idx_ = 0;
    size_t pos_ = 0;
    bool valid_ = false;
    Entry entry_;
  };

 private:
  struct IndexEntry {
    std::string first_key;
    uint64_t offset;
    uint64_t size;
    uint32_t crc;
  };

  SsTable(std::string path, uint32_t file_id) : path_(std::move(path)), file_id_(file_id) {}

  // Returns the decoded block, via the cache when available.
  StatusOr<std::shared_ptr<std::string>> ReadBlock(size_t block_idx, BlockCache* cache) const;
  static Status DecodeBlock(std::string_view raw, std::vector<Entry>* out);
  // Index of the block that could contain `key` (last block with
  // first_key <= key), or npos if key precedes all blocks.
  size_t FindBlock(std::string_view key) const;

  std::string path_;
  uint32_t file_id_;
  RandomAccessFile file_;
  uint64_t file_size_ = 0;
  std::string min_key_;
  std::vector<IndexEntry> index_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_SSTABLE_H_
