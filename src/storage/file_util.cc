#include "src/storage/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ss {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}

}  // namespace

// ----------------------------------------------------------------- AppendFile

AppendFile::~AppendFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  return AppendFile(fd);
}

Status AppendFile::Append(std::string_view data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  bytes_written_ += data.size();
  return Status::Ok();
}

Status AppendFile::Sync() {
  if (::fsync(fd_) != 0) {
    return ErrnoStatus("fsync");
  }
  return Status::Ok();
}

Status AppendFile::Close() {
  if (fd_ >= 0) {
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus("close");
    }
  }
  return Status::Ok();
}

// ----------------------------------------------------------- RandomAccessFile

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

RandomAccessFile& RandomAccessFile::operator=(RandomAccessFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<RandomAccessFile> RandomAccessFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  return RandomAccessFile(fd);
}

Status RandomAccessFile::Read(uint64_t offset, uint64_t n, std::string* out) const {
  out->resize(n);
  char* p = out->data();
  uint64_t done = 0;
  while (done < n) {
    ssize_t got = ::pread(fd_, p + done, n - done, static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread");
    }
    if (got == 0) {
      return Status::Corruption("pread: unexpected EOF");
    }
    done += static_cast<uint64_t>(got);
  }
  return Status::Ok();
}

StatusOr<uint64_t> RandomAccessFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return ErrnoStatus("fstat");
  }
  return static_cast<uint64_t>(st.st_size);
}

// ------------------------------------------------------------------ free fns

StatusOr<std::string> ReadFileToString(const std::string& path) {
  SS_ASSIGN_OR_RETURN(RandomAccessFile file, RandomAccessFile::Open(path));
  SS_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::string out;
  SS_RETURN_IF_ERROR(file.Read(0, size, &out));
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  std::string tmp = path + ".tmp";
  {
    SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(tmp, /*truncate=*/true));
    SS_RETURN_IF_ERROR(file.Append(contents));
    SS_RETURN_IF_ERROR(file.Sync());
    SS_RETURN_IF_ERROR(file.Close());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename " + tmp);
  }
  return Status::Ok();
}

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return ErrnoStatus("opendir " + path);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      names.push_back(std::move(name));
    }
  }
  ::closedir(dir);
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveDirRecursive(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::Ok();  // nothing to do
  }
  if (!S_ISDIR(st.st_mode)) {
    return RemoveFileIfExists(path);
  }
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(path));
  for (const std::string& name : names) {
    SS_RETURN_IF_ERROR(RemoveDirRecursive(path + "/" + name));
  }
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("rmdir " + path);
  }
  return Status::Ok();
}

}  // namespace ss
