#include "src/storage/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "src/obs/metrics.h"

namespace ss {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}

std::atomic<FileOps*> g_file_ops{nullptr};

Counter& ReadRetryCounter() {
  static Counter& counter =
      MetricRegistry::Default().GetCounter("ss_storage_read_retry_total");
  return counter;
}

// Transient errors are retried at most this often per call; a descriptor
// stuck returning EAGAIN must surface as an error, not a spin.
constexpr int kMaxTransientRetries = 100;

}  // namespace

bool IsTransientIoError(int err) {
  if (err == EINTR || err == EAGAIN) {
    return true;
  }
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  if (err == EWOULDBLOCK) {
    return true;
  }
#endif
  return false;
}

// -------------------------------------------------------------------- FileOps

int FileOps::Open(const std::string& path, int flags, int mode) {
  return ::open(path.c_str(), flags, mode);
}

ssize_t FileOps::Write(int fd, const void* buf, size_t n) { return ::write(fd, buf, n); }

ssize_t FileOps::Pread(int fd, void* buf, size_t n, uint64_t offset) {
  return ::pread(fd, buf, n, static_cast<off_t>(offset));
}

int FileOps::Fsync(int fd) { return ::fsync(fd); }

int FileOps::Close(int fd) { return ::close(fd); }

int FileOps::Rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str());
}

int FileOps::Unlink(const std::string& path) { return ::unlink(path.c_str()); }

int FileOps::Mkdir(const std::string& path, int mode) { return ::mkdir(path.c_str(), mode); }

int FileOps::FsyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return -1;
  }
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  errno = saved_errno;
  return rc;
}

FileOps& GetFileOps() {
  static FileOps default_ops;
  FileOps* ops = g_file_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : default_ops;
}

void SetFileOpsForTest(FileOps* ops) { g_file_ops.store(ops, std::memory_order_release); }

// ----------------------------------------------------------------- AppendFile

AppendFile::~AppendFile() {
  if (fd_ >= 0) {
    GetFileOps().Close(fd_);
  }
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      GetFileOps().Close(fd_);
    }
    fd_ = other.fd_;
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  int fd = GetFileOps().Open(path, flags, 0644);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  return AppendFile(fd);
}

Status AppendFile::Append(std::string_view data) {
  const char* p = data.data();
  size_t left = data.size();
  int retries = 0;
  while (left > 0) {
    ssize_t n = GetFileOps().Write(fd_, p, left);
    if (n < 0) {
      if (IsTransientIoError(errno) && ++retries <= kMaxTransientRetries) {
        continue;
      }
      return ErrnoStatus("write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  bytes_written_ += data.size();
  return Status::Ok();
}

Status AppendFile::Sync() {
  if (GetFileOps().Fsync(fd_) != 0) {
    return ErrnoStatus("fsync");
  }
  return Status::Ok();
}

Status AppendFile::Close() {
  if (fd_ >= 0) {
    int fd = fd_;
    fd_ = -1;
    if (GetFileOps().Close(fd) != 0) {
      return ErrnoStatus("close");
    }
  }
  return Status::Ok();
}

// ----------------------------------------------------------- RandomAccessFile

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) {
    GetFileOps().Close(fd_);
  }
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

RandomAccessFile& RandomAccessFile::operator=(RandomAccessFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      GetFileOps().Close(fd_);
    }
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<RandomAccessFile> RandomAccessFile::Open(const std::string& path) {
  int fd = GetFileOps().Open(path, O_RDONLY, 0);
  if (fd < 0) {
    return ErrnoStatus("open " + path);
  }
  return RandomAccessFile(fd);
}

Status RandomAccessFile::Read(uint64_t offset, uint64_t n, std::string* out) const {
  out->resize(n);
  char* p = out->data();
  uint64_t done = 0;
  int retries = 0;
  while (done < n) {
    ssize_t got = GetFileOps().Pread(fd_, p + done, n - done, offset + done);
    if (got < 0) {
      if (IsTransientIoError(errno) && ++retries <= kMaxTransientRetries) {
        ReadRetryCounter().Inc();
        continue;
      }
      return ErrnoStatus("pread");
    }
    if (got == 0) {
      return Status::Corruption("pread: unexpected EOF");
    }
    done += static_cast<uint64_t>(got);
  }
  return Status::Ok();
}

StatusOr<uint64_t> RandomAccessFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return ErrnoStatus("fstat");
  }
  return static_cast<uint64_t>(st.st_size);
}

// ------------------------------------------------------------------ free fns

StatusOr<std::string> ReadFileToString(const std::string& path) {
  SS_ASSIGN_OR_RETURN(RandomAccessFile file, RandomAccessFile::Open(path));
  SS_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::string out;
  SS_RETURN_IF_ERROR(file.Read(0, size, &out));
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents, bool sync_dir) {
  std::string tmp = path + ".tmp";
  {
    SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(tmp, /*truncate=*/true));
    SS_RETURN_IF_ERROR(file.Append(contents));
    SS_RETURN_IF_ERROR(file.Sync());
    SS_RETURN_IF_ERROR(file.Close());
  }
  SS_RETURN_IF_ERROR(RenameFile(tmp, path));
  if (sync_dir) {
    SS_RETURN_IF_ERROR(SyncDir(DirName(path)));
  }
  return Status::Ok();
}

Status CreateDirIfMissing(const std::string& path) {
  if (GetFileOps().Mkdir(path, 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return ErrnoStatus("opendir " + path);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      names.push_back(std::move(name));
    }
  }
  ::closedir(dir);
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (GetFileOps().Unlink(path) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (GetFileOps().Rename(from, to) != 0) {
    return ErrnoStatus("rename " + from + " -> " + to);
  }
  return Status::Ok();
}

Status SyncDir(const std::string& path) {
  static Counter& dir_fsyncs =
      MetricRegistry::Default().GetCounter("ss_storage_dir_fsync_total");
  if (GetFileOps().FsyncDir(path) != 0) {
    return ErrnoStatus("fsync dir " + path);
  }
  dir_fsyncs.Inc();
  return Status::Ok();
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveDirRecursive(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::Ok();  // nothing to do
  }
  if (!S_ISDIR(st.st_mode)) {
    return RemoveFileIfExists(path);
  }
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(path));
  for (const std::string& name : names) {
    SS_RETURN_IF_ERROR(RemoveDirRecursive(path + "/" + name));
  }
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("rmdir " + path);
  }
  return Status::Ok();
}

}  // namespace ss
