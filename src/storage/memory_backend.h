// In-memory KvBackend: an ordered map. Used by unit tests and by benchmark
// configurations that isolate algorithmic behavior from disk effects.
//
// Thread-safe behind a single mutex, matching the LsmStore contract so the
// core layer's concurrent paths (parallel fleet queries, multi-threaded
// appends) behave identically on both backends. Scan holds the mutex across
// the whole visit — visitors must not call back into the backend.
#ifndef SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_
#define SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_

#include <map>
#include <mutex>
#include <string>

#include "src/storage/kv_backend.h"

namespace ss {

class MemoryBackend : public KvBackend {
 public:
  Status Put(std::string_view key, std::string_view value) override {
    std::lock_guard<std::mutex> lock(mu_);
    map_.insert_or_assign(std::string(key), std::string(value));
    return Status::Ok();
  }

  StatusOr<std::string> Get(std::string_view key) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(std::string(key));
    if (it == map_.end()) {
      return Status::NotFound("key not present");
    }
    return it->second;
  }

  Status Delete(std::string_view key) override {
    std::lock_guard<std::mutex> lock(mu_);
    map_.erase(std::string(key));
    return Status::Ok();
  }

  // The whole batch lands under one lock acquisition, so concurrent readers
  // observe either none or all of it.
  Status PutBatch(const WriteBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const WriteBatch::Op& op : batch.ops()) {
      if (op.value.has_value()) {
        map_.insert_or_assign(op.key, *op.value);
      } else {
        map_.erase(op.key);
      }
    }
    return Status::Ok();
  }

  Status Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.lower_bound(std::string(start));
    auto stop = end.empty() ? map_.end() : map_.lower_bound(std::string(end));
    for (; it != stop; ++it) {
      if (!visit(it->first, it->second)) {
        break;
      }
    }
    return Status::Ok();
  }

  Status Flush() override { return Status::Ok(); }

  uint64_t ApproximateSizeBytes() const override {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t bytes = 0;
    for (const auto& [k, v] : map_) {
      bytes += k.size() + v.size();
    }
    return bytes;
  }

  size_t entry_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  // std::less<> enables heterogeneous lookup; keys stay owned strings.
  std::map<std::string, std::string, std::less<>> map_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_
