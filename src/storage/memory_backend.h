// In-memory KvBackend: an ordered map. Used by unit tests and by benchmark
// configurations that isolate algorithmic behavior from disk effects.
#ifndef SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_
#define SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_

#include <map>
#include <string>

#include "src/storage/kv_backend.h"

namespace ss {

class MemoryBackend : public KvBackend {
 public:
  Status Put(std::string_view key, std::string_view value) override {
    auto [it, inserted] = map_.insert_or_assign(std::string(key), std::string(value));
    (void)it;
    (void)inserted;
    return Status::Ok();
  }

  StatusOr<std::string> Get(std::string_view key) override {
    auto it = map_.find(std::string(key));
    if (it == map_.end()) {
      return Status::NotFound("key not present");
    }
    return it->second;
  }

  Status Delete(std::string_view key) override {
    map_.erase(std::string(key));
    return Status::Ok();
  }

  Status Scan(std::string_view start, std::string_view end, const ScanVisitor& visit) override {
    auto it = map_.lower_bound(std::string(start));
    auto stop = end.empty() ? map_.end() : map_.lower_bound(std::string(end));
    for (; it != stop; ++it) {
      if (!visit(it->first, it->second)) {
        break;
      }
    }
    return Status::Ok();
  }

  Status Flush() override { return Status::Ok(); }

  uint64_t ApproximateSizeBytes() const override {
    uint64_t bytes = 0;
    for (const auto& [k, v] : map_) {
      bytes += k.size() + v.size();
    }
    return bytes;
  }

  size_t entry_count() const { return map_.size(); }

 private:
  // std::less<> enables heterogeneous lookup; keys stay owned strings.
  std::map<std::string, std::string, std::less<>> map_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_MEMORY_BACKEND_H_
