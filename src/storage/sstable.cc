#include "src/storage/sstable.h"

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

#include <algorithm>

namespace ss {

namespace {

constexpr size_t kFooterSize = 8 + 8 + 4 + 8;

void EncodeEntry(std::string* block, std::string_view key, bool tombstone,
                 std::string_view value) {
  Writer w;
  w.PutString(key);
  w.PutU8(tombstone ? 1 : 0);
  if (!tombstone) {
    w.PutString(value);
  }
  block->append(w.data());
}

}  // namespace

// ----------------------------------------------------------------- SstBuilder

StatusOr<SstBuilder> SstBuilder::Create(const std::string& path) {
  SS_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path, /*truncate=*/true));
  return SstBuilder(std::move(file));
}

Status SstBuilder::Add(std::string_view key, bool tombstone, std::string_view value) {
  if (!last_key_.empty() && key <= last_key_) {
    return Status::InvalidArgument("SstBuilder: keys out of order");
  }
  if (block_.empty()) {
    block_first_key_ = key;
  }
  EncodeEntry(&block_, key, tombstone, value);
  last_key_ = key;
  ++entry_count_;
  if (block_.size() >= kTargetBlockSize) {
    return FlushBlock();
  }
  return Status::Ok();
}

Status SstBuilder::FlushBlock() {
  if (block_.empty()) {
    return Status::Ok();
  }
  index_.PutString(block_first_key_);
  index_.PutVarint(offset_);
  index_.PutVarint(block_.size());
  index_.PutFixed32(Crc32c(block_));
  SS_RETURN_IF_ERROR(file_.Append(block_));
  offset_ += block_.size();
  block_.clear();
  ++num_blocks_;
  return Status::Ok();
}

StatusOr<uint64_t> SstBuilder::Finish() {
  SS_RETURN_IF_ERROR(FlushBlock());
  std::string index_data = index_.Release();
  Writer footer;
  footer.PutFixed64(offset_);
  footer.PutFixed64(index_data.size());
  footer.PutFixed32(Crc32c(index_data));
  footer.PutFixed64(kSstMagic);
  SS_RETURN_IF_ERROR(file_.Append(index_data));
  SS_RETURN_IF_ERROR(file_.Append(footer.data()));
  SS_RETURN_IF_ERROR(file_.Sync());
  SS_RETURN_IF_ERROR(file_.Close());
  return offset_;
}

// -------------------------------------------------------------------- SsTable

StatusOr<std::shared_ptr<SsTable>> SsTable::Open(const std::string& path, uint32_t file_id) {
  std::shared_ptr<SsTable> table(new SsTable(path, file_id));
  SS_ASSIGN_OR_RETURN(table->file_, RandomAccessFile::Open(path));
  SS_ASSIGN_OR_RETURN(table->file_size_, table->file_.Size());
  if (table->file_size_ < kFooterSize) {
    return Status::Corruption("SsTable: file too small: " + path);
  }

  std::string footer;
  SS_RETURN_IF_ERROR(table->file_.Read(table->file_size_ - kFooterSize, kFooterSize, &footer));
  Reader footer_reader(footer);
  SS_ASSIGN_OR_RETURN(uint64_t index_offset, footer_reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(uint64_t index_size, footer_reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(uint32_t index_crc, footer_reader.ReadFixed32());
  SS_ASSIGN_OR_RETURN(uint64_t magic, footer_reader.ReadFixed64());
  if (magic != kSstMagic) {
    return Status::Corruption("SsTable: bad magic: " + path);
  }
  if (index_offset + index_size + kFooterSize > table->file_size_) {
    return Status::Corruption("SsTable: index out of bounds: " + path);
  }

  std::string index_data;
  SS_RETURN_IF_ERROR(table->file_.Read(index_offset, index_size, &index_data));
  if (Crc32c(index_data) != index_crc) {
    return Status::Corruption("SsTable: index checksum mismatch: " + path);
  }
  Reader index_reader(index_data);
  while (!index_reader.AtEnd()) {
    IndexEntry entry;
    SS_ASSIGN_OR_RETURN(std::string_view first_key, index_reader.ReadString());
    entry.first_key = std::string(first_key);
    SS_ASSIGN_OR_RETURN(entry.offset, index_reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(entry.size, index_reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(entry.crc, index_reader.ReadFixed32());
    table->index_.push_back(std::move(entry));
  }
  if (!table->index_.empty()) {
    table->min_key_ = table->index_.front().first_key;
  }
  return table;
}

size_t SsTable::FindBlock(std::string_view key) const {
  // Last block whose first_key <= key.
  auto it = std::upper_bound(index_.begin(), index_.end(), key,
                             [](std::string_view k, const IndexEntry& e) { return k < e.first_key; });
  if (it == index_.begin()) {
    return index_.size();  // key precedes every block
  }
  return static_cast<size_t>(it - index_.begin()) - 1;
}

StatusOr<std::shared_ptr<std::string>> SsTable::ReadBlock(size_t block_idx,
                                                          BlockCache* cache) const {
  static Counter& cache_hits =
      MetricRegistry::Default().GetCounter("ss_storage_block_cache_hits_total");
  static Counter& cache_misses =
      MetricRegistry::Default().GetCounter("ss_storage_block_cache_misses_total");
  static Counter& read_bytes =
      MetricRegistry::Default().GetCounter("ss_storage_block_read_bytes_total");
  uint64_t cache_key = (static_cast<uint64_t>(file_id_) << 32) | block_idx;
  if (cache != nullptr) {
    if (auto hit = cache->Get(cache_key)) {
      cache_hits.Inc();
      return *hit;
    }
  }
  cache_misses.Inc();
  FlightRecorder::Default().Record(FlightEventType::kBlockCacheMiss, file_id_, block_idx);
  const IndexEntry& e = index_[block_idx];
  auto block = std::make_shared<std::string>();
  SS_RETURN_IF_ERROR(file_.Read(e.offset, e.size, block.get()));
  read_bytes.Inc(block->size());
  if (Crc32c(*block) != e.crc) {
    return Status::Corruption("SsTable: block checksum mismatch: " + path_);
  }
  if (cache != nullptr) {
    cache->Put(cache_key, block, block->size());
  }
  return block;
}

Status SsTable::DecodeBlock(std::string_view raw, std::vector<Entry>* out) {
  out->clear();
  Reader reader(raw);
  while (!reader.AtEnd()) {
    Entry entry;
    SS_ASSIGN_OR_RETURN(std::string_view key, reader.ReadString());
    entry.key = std::string(key);
    SS_ASSIGN_OR_RETURN(uint8_t tombstone, reader.ReadU8());
    entry.tombstone = tombstone != 0;
    if (!entry.tombstone) {
      SS_ASSIGN_OR_RETURN(std::string_view value, reader.ReadString());
      entry.value = std::string(value);
    }
    out->push_back(std::move(entry));
  }
  return Status::Ok();
}

StatusOr<SsTable::GetResult> SsTable::Get(std::string_view key, BlockCache* cache) const {
  size_t block_idx = FindBlock(key);
  if (block_idx >= index_.size()) {
    return Status::NotFound("key not in table");
  }
  SS_ASSIGN_OR_RETURN(std::shared_ptr<std::string> block, ReadBlock(block_idx, cache));
  std::vector<Entry> entries;
  SS_RETURN_IF_ERROR(DecodeBlock(*block, &entries));
  auto it = std::lower_bound(entries.begin(), entries.end(), key,
                             [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it == entries.end() || it->key != key) {
    return Status::NotFound("key not in table");
  }
  return GetResult{it->tombstone, it->value};
}

// --------------------------------------------------------- SsTable::Iterator

Status SsTable::Iterator::LoadBlock(size_t block_idx) {
  SS_ASSIGN_OR_RETURN(std::shared_ptr<std::string> block, table_->ReadBlock(block_idx, cache_));
  SS_RETURN_IF_ERROR(DecodeBlock(*block, &block_entries_));
  block_idx_ = block_idx;
  pos_ = 0;
  return Status::Ok();
}

Status SsTable::Iterator::Seek(std::string_view start) {
  valid_ = false;
  if (table_->index_.empty()) {
    return Status::Ok();
  }
  size_t block_idx = table_->FindBlock(start);
  if (block_idx >= table_->index_.size()) {
    block_idx = 0;  // start precedes the table; begin at the first block
  }
  SS_RETURN_IF_ERROR(LoadBlock(block_idx));
  auto it = std::lower_bound(block_entries_.begin(), block_entries_.end(), start,
                             [](const Entry& e, std::string_view k) { return e.key < k; });
  pos_ = static_cast<size_t>(it - block_entries_.begin());
  if (pos_ >= block_entries_.size()) {
    // Start falls past this block's last key; advance to the next block.
    if (block_idx_ + 1 >= table_->index_.size()) {
      return Status::Ok();
    }
    SS_RETURN_IF_ERROR(LoadBlock(block_idx_ + 1));
  }
  valid_ = true;
  entry_ = block_entries_[pos_];
  return Status::Ok();
}

Status SsTable::Iterator::Next() {
  if (!valid_) {
    return Status::FailedPrecondition("Next on invalid iterator");
  }
  ++pos_;
  if (pos_ >= block_entries_.size()) {
    if (block_idx_ + 1 >= table_->index_.size()) {
      valid_ = false;
      return Status::Ok();
    }
    SS_RETURN_IF_ERROR(LoadBlock(block_idx_ + 1));
  }
  entry_ = block_entries_[pos_];
  return Status::Ok();
}

}  // namespace ss
