#include "src/storage/checksum_envelope.h"

#include <cstring>

#include "src/common/serde.h"

namespace ss {

namespace {

// CRC over the version byte plus the payload: a flip in the version field is
// then indistinguishable from a flip in the payload — both fail the check.
uint32_t EnvelopeCrc(uint8_t version, std::string_view payload) {
  char v = static_cast<char>(version);
  uint32_t crc = Crc32c(std::string_view(&v, 1));
  // Crc32c has no incremental API; combine by hashing crc(version) into the
  // payload CRC deterministically. XOR keeps the detection property: any
  // single flip changes exactly one of the two terms.
  return crc ^ Crc32c(payload);
}

}  // namespace

bool IsEnveloped(std::string_view stored) {
  return stored.size() >= kEnvelopeHeaderSize && stored[0] == kEnvelopeMagic0 &&
         stored[1] == kEnvelopeMagic1;
}

std::string SealEnvelope(std::string_view payload) {
  std::string out;
  out.reserve(kEnvelopeHeaderSize + payload.size());
  out.push_back(kEnvelopeMagic0);
  out.push_back(kEnvelopeMagic1);
  out.push_back(static_cast<char>(kEnvelopeVersion));
  uint32_t crc = EnvelopeCrc(kEnvelopeVersion, payload);
  char crc_bytes[4];
  std::memcpy(crc_bytes, &crc, sizeof(crc));
  out.append(crc_bytes, sizeof(crc_bytes));
  out.append(payload);
  return out;
}

StatusOr<std::string_view> OpenEnvelope(std::string_view stored) {
  if (!IsEnveloped(stored)) {
    return stored;  // legacy (pre-envelope) payload: unchecked by contract
  }
  uint8_t version = static_cast<uint8_t>(stored[2]);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, stored.data() + 3, sizeof(stored_crc));
  std::string_view payload = stored.substr(kEnvelopeHeaderSize);
  if (EnvelopeCrc(version, payload) != stored_crc) {
    return Status::Corruption("checksum envelope: CRC mismatch");
  }
  if (version != kEnvelopeVersion) {
    // The CRC matched, so this really is a foreign (future) version, not a
    // flipped byte: refuse rather than misparse.
    return Status::Corruption("checksum envelope: unsupported version " +
                              std::to_string(version));
  }
  return payload;
}

}  // namespace ss
