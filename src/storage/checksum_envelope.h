// End-to-end per-value checksum envelope for persisted payloads.
//
// The storage engine already checksums SST blocks, but that guard sits below
// the block cache and only covers one backend: a bit flipped in the block
// cache, in the memtable, in a memory backend, or by a buggy writer reaches
// the deserializer unchecked. Stream::Flush therefore seals every
// window/landmark/meta payload in a small envelope:
//
//   [magic:2][version:1][crc32c:4][payload...]
//
// The CRC32C covers the version byte and the payload, so a flip anywhere past
// the magic is detected. Values that do not start with the magic are treated
// as legacy (pre-envelope) payloads and returned unchecked — stores written
// before this format keep working, they just lack the end-to-end guard.
// (A flip inside the magic itself demotes the value to "legacy"; the callers
// close that hole by cross-checking decoded identity fields — e.g. a window's
// cs against its key — after deserializing.)
#ifndef SUMMARYSTORE_SRC_STORAGE_CHECKSUM_ENVELOPE_H_
#define SUMMARYSTORE_SRC_STORAGE_CHECKSUM_ENVELOPE_H_

#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ss {

inline constexpr char kEnvelopeMagic0 = '\xc5';
inline constexpr char kEnvelopeMagic1 = '\x1e';
inline constexpr uint8_t kEnvelopeVersion = 1;
inline constexpr size_t kEnvelopeHeaderSize = 7;  // magic(2) + version(1) + crc(4)

// Wraps `payload` in a checksum envelope.
std::string SealEnvelope(std::string_view payload);

// Unwraps `stored`: returns a view of the payload bytes (into `stored`).
// Values without the magic prefix pass through unchecked (legacy format);
// enveloped values fail with kCorruption on version or checksum mismatch.
StatusOr<std::string_view> OpenEnvelope(std::string_view stored);

// True when `stored` carries the envelope magic (useful for tools/tests).
bool IsEnveloped(std::string_view stored);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_CHECKSUM_ENVELOPE_H_
