// Write-ahead log for the LSM store. Each record is
//   [crc32c(payload) : fixed32][payload_len : fixed32][payload]
// where the payload encodes one Put or Delete. Replay stops cleanly at the
// first truncated or corrupt record (standard crash semantics: a torn tail
// write loses only the unacknowledged suffix).
#ifndef SUMMARYSTORE_SRC_STORAGE_WAL_H_
#define SUMMARYSTORE_SRC_STORAGE_WAL_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/storage/file_util.h"

namespace ss {

class WalWriter {
 public:
  // Opens (appending) or creates the log at `path`; `truncate` starts fresh.
  static StatusOr<WalWriter> Open(const std::string& path, bool truncate);

  // Appends one record; value == nullopt encodes a tombstone.
  Status Append(std::string_view key, std::optional<std::string_view> value);

  Status Sync();
  uint64_t bytes_written() const { return file_.bytes_written(); }

 private:
  explicit WalWriter(AppendFile file) : file_(std::move(file)) {}

  AppendFile file_;
};

// Replays all intact records in `path`, invoking the visitor in log order.
// A missing file is not an error (fresh database). Returns the number of
// records recovered.
using WalReplayVisitor =
    std::function<void(std::string_view key, std::optional<std::string_view> value)>;
StatusOr<uint64_t> WalReplay(const std::string& path, const WalReplayVisitor& visit);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_WAL_H_
