// Write-ahead log for the LSM store. Each record is
//   [crc32c(payload) : fixed32][payload_len : fixed32][payload]
// where the payload encodes one Put or Delete. Replay stops cleanly at the
// first truncated or corrupt record (standard crash semantics: a torn tail
// write loses only the unacknowledged suffix); torn tails are counted in
// ss_storage_wal_torn_tail_total and logged.
#ifndef SUMMARYSTORE_SRC_STORAGE_WAL_H_
#define SUMMARYSTORE_SRC_STORAGE_WAL_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/storage/file_util.h"

namespace ss {

class WalWriter {
 public:
  // Opens (appending) or creates the log at `path`; `truncate` starts fresh.
  static StatusOr<WalWriter> Open(const std::string& path, bool truncate);

  // Crash-safe log restart: writes an empty `path.new`, fsyncs it, renames
  // it over `path`, and fsyncs the parent directory. The returned writer
  // appends to the new log. Unlike opening with O_TRUNC, the old log's
  // bytes stay intact on disk until the rename commits, so power loss at
  // any point leaves either the full old log or the fresh empty one.
  static StatusOr<WalWriter> RotateAndOpen(const std::string& path);

  // Appends one record; value == nullopt encodes a tombstone.
  Status Append(std::string_view key, std::optional<std::string_view> value);

  Status Sync();
  uint64_t bytes_written() const { return file_.bytes_written(); }

 private:
  explicit WalWriter(AppendFile file) : file_(std::move(file)) {}

  AppendFile file_;
};

// Replays all intact records in `path`, invoking the visitor in log order.
// The log is streamed in bounded chunks (memory stays O(chunk + one
// record), not O(file)). A missing file is not an error (fresh database).
// Returns the number of records recovered.
using WalReplayVisitor =
    std::function<void(std::string_view key, std::optional<std::string_view> value)>;
StatusOr<uint64_t> WalReplay(const std::string& path, const WalReplayVisitor& visit);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STORAGE_WAL_H_
