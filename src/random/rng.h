// Deterministic pseudo-random generation: xoshiro256++ seeded via SplitMix64.
// Every workload in this repository takes an explicit seed so experiments are
// reproducible bit-for-bit across runs and machines (std::mt19937
// distributions are not portable across standard libraries; these are).
#ifndef SUMMARYSTORE_SRC_RANDOM_RNG_H_
#define SUMMARYSTORE_SRC_RANDOM_RNG_H_

#include <cmath>
#include <cstdint>

namespace ss {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // xoshiro256++ next().
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in (0, 1]; safe as a log() argument.
  double NextDoubleOpenZero() { return 1.0 - NextDouble(); }

  // Uniform integer in [0, bound) for bound > 0 (Lemire-style rejection-free
  // approximation via 128-bit multiply; bias < 2^-64, irrelevant here).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<__uint128_t>(NextU64()) * bound) >> 64);
  }

  int64_t NextInRange(int64_t lo, int64_t hi) {  // inclusive range [lo, hi]
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate) { return -std::log(NextDoubleOpenZero()) / rate; }

  // Pareto (type I) with scale x_m > 0 and shape alpha > 0.
  // Mean x_m*alpha/(alpha-1) for alpha > 1; infinite variance for alpha <= 2.
  double NextPareto(double x_m, double alpha) {
    return x_m / std::pow(NextDoubleOpenZero(), 1.0 / alpha);
  }

  // Standard normal via Box-Muller (one value per call; simple and stateless).
  double NextGaussian() {
    double u1 = NextDoubleOpenZero();
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_RANDOM_RNG_H_
