// Zipf(s, n) sampler over ranks {1..n} by inverse-CDF binary search on a
// precomputed cumulative table. Used by the M-Lab-style IP-visit workload
// (client visit frequencies are heavy-tailed).
#ifndef SUMMARYSTORE_SRC_RANDOM_ZIPF_H_
#define SUMMARYSTORE_SRC_RANDOM_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/random/rng.h"

namespace ss {

class ZipfSampler {
 public:
  // n >= 1 distinct items, exponent s > 0 (s=1 is the classic Zipf law).
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = acc;
    }
    for (auto& v : cdf_) {
      v /= acc;
    }
  }

  // Returns a rank in [1, n]; rank 1 is the most frequent item.
  int64_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin()) + 1;
  }

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_RANDOM_ZIPF_H_
