// Arrival-process generators for the microbenchmark streams (§7.2.2):
// memoryless Poisson arrivals and heavy-tailed Pareto interarrivals with
// finite (α=2.2) or infinite (α=1.2) variance, matching the paper's
// parameter choices.
#ifndef SUMMARYSTORE_SRC_RANDOM_ARRIVAL_H_
#define SUMMARYSTORE_SRC_RANDOM_ARRIVAL_H_

#include <cstdint>
#include <memory>

#include "src/common/clock.h"
#include "src/random/rng.h"

namespace ss {

// Produces a monotonically increasing sequence of event timestamps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Timestamp of the next event, in stream time units.
  virtual Timestamp Next() = 0;
};

// Poisson process: i.i.d. exponential interarrivals with the given rate
// (events per time unit). Continuous arrival times are accumulated in double
// precision and quantized to integer timestamps on emission.
class PoissonArrivals : public ArrivalProcess {
 public:
  PoissonArrivals(double rate, uint64_t seed, Timestamp start = 0)
      : rng_(seed), rate_(rate), time_(static_cast<double>(start)) {}

  Timestamp Next() override {
    time_ += rng_.NextExponential(rate_);
    return static_cast<Timestamp>(time_);
  }

 private:
  Rng rng_;
  double rate_;
  double time_;
};

// Renewal process with Pareto(x_m, alpha) interarrivals. alpha <= 2 gives
// infinite variance — the paper's pathological case for sub-window
// estimation. `mean_interarrival` fixes x_m so the long-run rate matches.
class ParetoArrivals : public ArrivalProcess {
 public:
  ParetoArrivals(double mean_interarrival, double alpha, uint64_t seed, Timestamp start = 0)
      : rng_(seed), alpha_(alpha), time_(static_cast<double>(start)) {
    // Pareto mean = x_m * alpha / (alpha - 1) for alpha > 1.
    x_m_ = mean_interarrival * (alpha - 1.0) / alpha;
  }

  Timestamp Next() override {
    time_ += rng_.NextPareto(x_m_, alpha_);
    return static_cast<Timestamp>(time_);
  }

 private:
  Rng rng_;
  double alpha_;
  double x_m_;
  double time_;
};

// Fixed-interval arrivals (one event every `period` units) for perfectly
// regular streams such as the TSM backup logs.
class RegularArrivals : public ArrivalProcess {
 public:
  explicit RegularArrivals(Timestamp period, Timestamp start = 0)
      : period_(period), time_(start - period) {}

  Timestamp Next() override {
    time_ += period_;
    return time_;
  }

 private:
  Timestamp period_;
  Timestamp time_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_RANDOM_ARRIVAL_H_
