// Per-query "explain" trace: what a single range query actually touched —
// the window/byte/cache accounting that dominates SummaryStore latency
// (Figures 5-13 of the paper). Opt-in: set QuerySpec::collect_trace and the
// engine threads a QueryTrace through window and storage reads, attaching it
// to the QueryResult.
#ifndef SUMMARYSTORE_SRC_OBS_TRACE_H_
#define SUMMARYSTORE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "src/common/clock.h"

namespace ss {

struct QueryTrace {
  // What was asked.
  std::string op;
  Timestamp t1 = 0;
  Timestamp t2 = 0;

  // Window scan accounting (from Stream::WindowsOverlapping).
  uint64_t windows_scanned = 0;   // window views visited by the query walk
  uint64_t raw_windows = 0;       // of those, raw-event (exact) windows
  uint64_t summary_windows = 0;   // of those, materialized summary windows
  uint64_t window_cache_hits = 0;    // payload already resident in memory
  uint64_t window_cache_misses = 0;  // payload loaded from the KV backend
  uint64_t bytes_fetched = 0;        // serialized bytes read from the backend

  // Landmark accounting.
  uint64_t landmark_windows = 0;
  uint64_t landmark_events = 0;

  // Storage block cache delta over the query (durable backends only).
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;

  // Estimator outcome.
  double estimate = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double ci_width = 0.0;
  bool exact = false;

  double elapsed_micros = 0.0;

  // Multi-line human-readable rendering (sstool query --explain).
  std::string Render() const;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_OBS_TRACE_H_
