// Per-query "explain" trace: what a single range query actually touched —
// the window/byte/cache accounting that dominates SummaryStore latency
// (Figures 5-13 of the paper). Opt-in: set QuerySpec::collect_trace and the
// engine threads a QueryTrace through window and storage reads, attaching it
// to the QueryResult.
#ifndef SUMMARYSTORE_SRC_OBS_TRACE_H_
#define SUMMARYSTORE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "src/common/clock.h"

namespace ss {

// Query pipeline phases, in execution order. Each query attributes its
// latency across these via QueryPhaseSpan; the breakdown lands both in the
// per-phase histogram ss_core_query_phase_us{phase=...} and (when tracing)
// in QueryTrace::phase_us.
enum class QueryPhase : int {
  kPlan = 0,        // validation, stream lookup, landmark gate
  kWindowScan = 1,  // WindowsOverlapping: decayed-window walk + payload loads
  kSketchMerge = 2, // merging per-window summaries / raw scans
  kCiCombine = 3,   // interval arithmetic: CI combine + normal/binomial tails
  kDegrade = 4,     // widening the CI over quarantined (missing) spans
};
inline constexpr int kNumQueryPhases = 5;

const char* QueryPhaseName(QueryPhase phase);

struct QueryTrace {
  // What was asked.
  std::string op;
  Timestamp t1 = 0;
  Timestamp t2 = 0;

  // Window scan accounting (from Stream::WindowsOverlapping).
  uint64_t windows_scanned = 0;   // window views visited by the query walk
  uint64_t raw_windows = 0;       // of those, raw-event (exact) windows
  uint64_t summary_windows = 0;   // of those, materialized summary windows
  uint64_t window_cache_hits = 0;    // payload already resident in memory
  uint64_t window_cache_misses = 0;  // payload loaded from the KV backend
  uint64_t bytes_fetched = 0;        // serialized bytes read from the backend

  // Landmark accounting.
  uint64_t landmark_windows = 0;
  uint64_t landmark_events = 0;

  // Storage block cache delta over the query (durable backends only).
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;

  // Degradation accounting (PR 5 corruption defense): quarantined windows
  // the scan could not read, and the spans the estimator had to skip (the CI
  // is widened to cover them).
  bool degraded = false;
  uint64_t quarantined_windows = 0;
  uint64_t skipped_spans = 0;

  // Estimator outcome.
  double estimate = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double ci_width = 0.0;
  bool exact = false;

  double elapsed_micros = 0.0;

  // Per-phase latency attribution, indexed by QueryPhase.
  double phase_us[kNumQueryPhases] = {0, 0, 0, 0, 0};

  // Multi-line human-readable rendering (sstool query --explain).
  std::string Render() const;
};

// RAII phase span: times a section of the query pipeline and attributes it
// to `phase` — always into ss_core_query_phase_us{phase=...}, and into
// trace->phase_us when a trace is being collected (trace may be null).
// Phases can run more than once per query (e.g. per-stream scans in a fleet
// aggregate); contributions accumulate.
class QueryPhaseSpan {
 public:
  QueryPhaseSpan(QueryPhase phase, QueryTrace* trace);
  ~QueryPhaseSpan() { End(); }

  // Ends the span early (idempotent).
  void End();

  QueryPhaseSpan(const QueryPhaseSpan&) = delete;
  QueryPhaseSpan& operator=(const QueryPhaseSpan&) = delete;

 private:
  QueryPhase phase_;
  QueryTrace* trace_;
  Stopwatch stopwatch_;
  bool done_ = false;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_OBS_TRACE_H_
