#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ss {

namespace {

std::string MakeKey(std::string_view name, std::string_view label) {
  std::string key(name);
  if (!label.empty()) {
    key += '{';
    key += label;
    key += '}';
  }
  return key;
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

// Labeled keys embed quotes (name{phase="plan"}); JSON keys need them escaped.
std::string JsonKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// "name{labels}" -> name + label body ("" when bare).
void SplitKey(const std::string& key, std::string* name, std::string* label) {
  size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    label->clear();
  } else {
    *name = key.substr(0, brace);
    *label = key.substr(brace + 1, key.size() - brace - 2);
  }
}

// Merges an extra label into a key's label set: name{a="b"} + q -> name{a="b",q}.
std::string WithLabel(const std::string& name, const std::string& label,
                      const std::string& extra) {
  std::string out = name;
  out += '{';
  out += label;
  if (!label.empty() && !extra.empty()) {
    out += ',';
  }
  out += extra;
  out += '}';
  return out;
}

}  // namespace

double LatencyHistogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the target order statistic, 1-based, ceil(q * total).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cum = 0;
  for (size_t k = 0; k < kNumBuckets; ++k) {
    cum += buckets_[k].load(std::memory_order_relaxed);
    if (cum >= rank) {
      // Upper bound of bucket k: 0 for k == 0, else 2^k - 1 (clamped to the
      // recorded max so a sparse top bucket doesn't overstate by 2x).
      uint64_t upper = k == 0 ? 0 : (k >= 64 ? UINT64_MAX : (uint64_t{1} << k) - 1);
      uint64_t m = max();
      return m != 0 && m < upper ? m : upper;
    }
  }
  return max();
}

void LatencyHistogram::ResetForTest() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[MakeKey(name, label)];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[MakeKey(name, label)];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

LatencyHistogram& MetricRegistry::GetHistogram(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[MakeKey(name, label)];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return *slot;
}

std::string MetricRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string name;
  std::string label;
  for (const auto& [key, counter] : counters_) {
    SplitKey(key, &name, &label);
    AppendF(out, "# TYPE %s counter\n", name.c_str());
    AppendF(out, "%s %" PRIu64 "\n", key.c_str(), counter->value());
  }
  for (const auto& [key, gauge] : gauges_) {
    SplitKey(key, &name, &label);
    AppendF(out, "# TYPE %s gauge\n", name.c_str());
    AppendF(out, "%s %" PRId64 "\n", key.c_str(), gauge->value());
  }
  for (const auto& [key, hist] : histograms_) {
    SplitKey(key, &name, &label);
    AppendF(out, "# TYPE %s summary\n", name.c_str());
    AppendF(out, "%s %" PRIu64 "\n",
            WithLabel(name, label, "quantile=\"0.5\"").c_str(), hist->P50());
    AppendF(out, "%s %" PRIu64 "\n",
            WithLabel(name, label, "quantile=\"0.95\"").c_str(), hist->P95());
    AppendF(out, "%s %" PRIu64 "\n",
            WithLabel(name, label, "quantile=\"0.99\"").c_str(), hist->P99());
    AppendF(out, "%s_sum%s %" PRIu64 "\n", name.c_str(),
            label.empty() ? "" : ("{" + label + "}").c_str(), hist->sum());
    AppendF(out, "%s_count%s %" PRIu64 "\n", name.c_str(),
            label.empty() ? "" : ("{" + label + "}").c_str(), hist->count());
    AppendF(out, "%s_max%s %" PRIu64 "\n", name.c_str(),
            label.empty() ? "" : ("{" + label + "}").c_str(), hist->max());
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    AppendF(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", JsonKey(key).c_str(),
            counter->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    AppendF(out, "%s\n    \"%s\": %" PRId64, first ? "" : ",", JsonKey(key).c_str(),
            gauge->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, hist] : histograms_) {
    AppendF(out,
            "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
            ", \"mean\": %.3f, \"p50\": %" PRIu64 ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64
            ", \"max\": %" PRIu64 "}",
            first ? "" : ",", JsonKey(key).c_str(), hist->count(), hist->sum(), hist->Mean(),
            hist->P50(), hist->P95(), hist->P99(), hist->max());
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, counter] : counters_) {
    counter->ResetForTest();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge->ResetForTest();
  }
  for (auto& [key, hist] : histograms_) {
    hist->ResetForTest();
  }
}

}  // namespace ss
