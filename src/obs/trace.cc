#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ss {

std::string QueryTrace::Render() const {
  char buf[1024];
  int n = snprintf(
      buf, sizeof(buf),
      "query trace: op=%s range=[%" PRId64 ", %" PRId64 "]\n"
      "  windows scanned:    %" PRIu64 " (%" PRIu64 " raw, %" PRIu64 " summary)\n"
      "  window cache:       %" PRIu64 " hits, %" PRIu64 " misses\n"
      "  bytes read:         %" PRIu64 "\n"
      "  landmarks:          %" PRIu64 " windows, %" PRIu64 " events\n"
      "  block cache:        %" PRIu64 " hits, %" PRIu64 " misses\n"
      "  estimate:           %.6g  ci=[%.6g, %.6g] width=%.6g%s\n"
      "  elapsed:            %.1f us\n",
      op.c_str(), t1, t2, windows_scanned, raw_windows, summary_windows, window_cache_hits,
      window_cache_misses, bytes_fetched, landmark_windows, landmark_events, block_cache_hits,
      block_cache_misses, estimate, ci_lo, ci_hi, ci_width, exact ? " [exact]" : "",
      elapsed_micros);
  return n > 0 ? std::string(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1))
               : std::string();
}

}  // namespace ss
