#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"

namespace ss {

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kPlan:
      return "plan";
    case QueryPhase::kWindowScan:
      return "window_scan";
    case QueryPhase::kSketchMerge:
      return "sketch_merge";
    case QueryPhase::kCiCombine:
      return "ci_combine";
    case QueryPhase::kDegrade:
      return "degrade";
  }
  return "unknown";
}

namespace {

LatencyHistogram& PhaseHistogram(QueryPhase phase) {
  // One function-local static per phase: the span destructor on the query
  // hot path must not take the registry lock.
  static LatencyHistogram* histograms[kNumQueryPhases] = {
      &MetricRegistry::Default().GetHistogram("ss_core_query_phase_us", "phase=\"plan\""),
      &MetricRegistry::Default().GetHistogram("ss_core_query_phase_us", "phase=\"window_scan\""),
      &MetricRegistry::Default().GetHistogram("ss_core_query_phase_us", "phase=\"sketch_merge\""),
      &MetricRegistry::Default().GetHistogram("ss_core_query_phase_us", "phase=\"ci_combine\""),
      &MetricRegistry::Default().GetHistogram("ss_core_query_phase_us", "phase=\"degrade\""),
  };
  return *histograms[static_cast<int>(phase)];
}

}  // namespace

QueryPhaseSpan::QueryPhaseSpan(QueryPhase phase, QueryTrace* trace)
    : phase_(phase), trace_(trace) {}

void QueryPhaseSpan::End() {
  if (done_) {
    return;
  }
  done_ = true;
  double us = stopwatch_.ElapsedMicros();
  PhaseHistogram(phase_).Record(us);
  if (trace_ != nullptr) {
    trace_->phase_us[static_cast<int>(phase_)] += us;
  }
}

std::string QueryTrace::Render() const {
  char buf[1536];
  int n = snprintf(
      buf, sizeof(buf),
      "query trace: op=%s range=[%" PRId64 ", %" PRId64 "]\n"
      "  windows scanned:    %" PRIu64 " (%" PRIu64 " raw, %" PRIu64 " summary)\n"
      "  window cache:       %" PRIu64 " hits, %" PRIu64 " misses\n"
      "  bytes read:         %" PRIu64 "\n"
      "  landmarks:          %" PRIu64 " windows, %" PRIu64 " events\n"
      "  block cache:        %" PRIu64 " hits, %" PRIu64 " misses\n"
      "  degraded:           %s (%" PRIu64 " quarantined windows, %" PRIu64 " skipped spans)\n"
      "  estimate:           %.6g  ci=[%.6g, %.6g] width=%.6g%s\n"
      "  elapsed:            %.1f us\n"
      "  phases:             plan=%.1fus window_scan=%.1fus sketch_merge=%.1fus "
      "ci_combine=%.1fus degrade=%.1fus\n",
      op.c_str(), t1, t2, windows_scanned, raw_windows, summary_windows, window_cache_hits,
      window_cache_misses, bytes_fetched, landmark_windows, landmark_events, block_cache_hits,
      block_cache_misses, degraded ? "yes" : "no", quarantined_windows, skipped_spans, estimate,
      ci_lo, ci_hi, ci_width, exact ? " [exact]" : "", elapsed_micros,
      phase_us[static_cast<int>(QueryPhase::kPlan)],
      phase_us[static_cast<int>(QueryPhase::kWindowScan)],
      phase_us[static_cast<int>(QueryPhase::kSketchMerge)],
      phase_us[static_cast<int>(QueryPhase::kCiCombine)],
      phase_us[static_cast<int>(QueryPhase::kDegrade)]);
  return n > 0 ? std::string(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1))
               : std::string();
}

}  // namespace ss
