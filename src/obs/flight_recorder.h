// Flight recorder (`ss_obs` v2): a low-overhead, always-on structured event
// journal. Every thread that records gets a fixed-size ring of typed binary
// events (32 bytes each: nanosecond timestamp, thread id, event type, two
// type-dependent arguments); writers touch only their own ring, so recording
// is one clock read plus four relaxed atomic stores. Readers drain rings
// lock-free with relaxed loads — a snapshot taken mid-write may observe one
// torn event at the wrap frontier, which is the classic flight-recorder
// trade: the journal never slows the plane down.
//
// On store poison, fatal status, or a fatal signal, Dump() writes the last-N
// events plus a full MetricRegistry snapshot and caller-supplied store state
// to `<dir>/flight-<wall-us>.bin` (SS_FLIGHT_DIR overrides <dir> so CI can
// collect bundles from any test). `sstool flight <bundle|dir>` decodes the
// bundle into a human-readable timeline via ReadFlightBundle/RenderFlightTimeline.
#ifndef SUMMARYSTORE_SRC_OBS_FLIGHT_RECORDER_H_
#define SUMMARYSTORE_SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ss {

enum class FlightEventType : uint16_t {
  kAppend = 1,           // arg0 = stream id, arg1 = events (sampled 1-in-64)
  kAppendBatch = 2,      // arg0 = stream id, arg1 = batch events
  kGroupCommitLead = 3,  // arg0 = group size (writers), arg1 = records logged
  kGroupCommitFollow = 4,  // arg0 = wait-as-follower us
  kWalAppend = 5,        // arg0 = records appended this group
  kWalFsync = 6,         // arg0 = fsync us, arg1 = 0 ok / 1 failed
  kWalRotate = 7,
  kMemtableApply = 8,    // arg0 = records applied
  kMemtableFlush = 9,    // arg0 = memtable entries, arg1 = new sst file id
  kCompaction = 10,      // arg0 = input tables, arg1 = new sst file id
  kBlockCacheMiss = 11,  // arg0 = sst file id, arg1 = block index
  kScrubCycle = 12,      // arg0 = windows checked, arg1 = errors
  kScrubRepair = 13,     // arg0 = stream id, arg1 = windows repaired/absorbed
  kWindowQuarantine = 14,  // arg0 = stream id, arg1 = window cs
  kDegradedQuery = 15,   // arg0 = query op enum, arg1 = skipped spans
  kStorePoison = 16,     // arg0 = 0 commit / 1 rotate
  kFaultInjected = 17,   // arg0 = FaultOp enum, arg1 = op index
  kFlushChunk = 18,      // arg0 = stream id, arg1 = records in chunk
  kDump = 19,            // arg0 = events captured in the bundle
  kIngestStall = 20,     // arg0 = stream id, arg1 = producer wait us (block policy)
  kIngestShed = 21,      // arg0 = stream id, arg1 = events shed (shed policy)
  kIngestDrain = 22,     // arg0 = stream id, arg1 = events drained this sweep
  kNetFaultInjected = 23,   // arg0 = fd, arg1 = NetFaultKind enum (fault_net.h)
  kNetRetry = 24,           // arg0 = opcode, arg1 = attempt number
  kNetReconnect = 25,       // arg0 = reconnect count, arg1 = replayed ingest frames
  kNetDeadlineExceeded = 26,  // arg0 = opcode, arg1 = deadline_ms
  kNetDupSuppressed = 27,   // arg0 = session id, arg1 = seq
  kNetSlowPeerDisconnect = 28,  // arg0 = fd, arg1 = buffered bytes at disconnect
};

const char* FlightEventTypeName(FlightEventType type);

// Decoded event (the in-ring layout packs tid+type into one word).
struct FlightEvent {
  uint64_t ts_nanos = 0;  // steady-clock nanoseconds (monotonic, process-local)
  uint32_t tid = 0;
  uint16_t type = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kRingEvents = 4096;  // per thread, power of two

  static FlightRecorder& Default();

  // Hot path: one steady-clock read + four relaxed stores into the calling
  // thread's ring. Safe from any thread; allocates the ring on first use.
  void Record(FlightEventType type, uint64_t arg0 = 0, uint64_t arg1 = 0);

  // Global kill switch (the recorder-on-vs-off overhead benchmark, and any
  // deployment that wants the last nanosecond back). Default: enabled.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Merged snapshot of every thread's ring, ascending timestamp. max_events
  // keeps only the newest N (0 = everything retained).
  std::vector<FlightEvent> Snapshot(size_t max_events = 0) const;

  // Writes a bundle `<dir>/flight-<wall-us>.bin` — last events + a full
  // MetricRegistry snapshot + `store_state` (free-form "key=value" lines from
  // the caller: stream counts, WAL/manifest file ids, quarantine list...).
  // The SS_FLIGHT_DIR environment variable overrides `dir` when set. Writes
  // with raw POSIX io, deliberately below the FileOps test seam, so a dump
  // triggered by an injected fault cannot itself be failed by the injector.
  StatusOr<std::string> Dump(const std::string& dir, const std::string& reason,
                             const std::string& store_state);

  // Installs SIGSEGV/SIGBUS/SIGABRT handlers that best-effort Dump() to
  // SS_FLIGHT_DIR (or ".") and re-raise. Not strictly async-signal-safe (the
  // metrics snapshot allocates); a second fault inside the handler just
  // falls through to the default disposition.
  void InstallCrashHandler();

  // Zeroes every ring (benchmarks and tests isolate runs).
  void ResetForTest();

  struct Ring;  // opaque; defined in flight_recorder.cc

 private:
  FlightRecorder() = default;
  Ring* ThreadRing();

  std::atomic<bool> enabled_{true};
  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;  // never shrinks; exited threads' rings are reused
};

// Decoded dump bundle.
struct FlightBundle {
  uint64_t wall_anchor_micros = 0;  // wall clock at dump time
  uint64_t mono_anchor_nanos = 0;   // steady clock at dump time (event domain)
  std::string reason;
  std::string store_state;
  std::string metrics_json;
  std::vector<FlightEvent> events;  // ascending timestamp
};

StatusOr<FlightBundle> ReadFlightBundle(const std::string& path);

// Human-readable timeline: one line per event, offsets relative to the first
// event. since_micros > 0 keeps only events at or after that offset.
std::string RenderFlightTimeline(const FlightBundle& bundle, double since_micros = 0.0);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_OBS_FLIGHT_RECORDER_H_
