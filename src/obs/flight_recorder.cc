#include "src/obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "src/common/serde.h"
#include "src/obs/metrics.h"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace ss {

namespace {

constexpr uint32_t kBundleMagic = 0x42465353;  // "SSFB" little-endian
constexpr uint8_t kBundleVersion = 1;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint32_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint32_t>(::syscall(SYS_gettid));
#else
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kAppend:
      return "append";
    case FlightEventType::kAppendBatch:
      return "append_batch";
    case FlightEventType::kGroupCommitLead:
      return "group_commit_lead";
    case FlightEventType::kGroupCommitFollow:
      return "group_commit_follow";
    case FlightEventType::kWalAppend:
      return "wal_append";
    case FlightEventType::kWalFsync:
      return "wal_fsync";
    case FlightEventType::kWalRotate:
      return "wal_rotate";
    case FlightEventType::kMemtableApply:
      return "memtable_apply";
    case FlightEventType::kMemtableFlush:
      return "memtable_flush";
    case FlightEventType::kCompaction:
      return "compaction";
    case FlightEventType::kBlockCacheMiss:
      return "block_cache_miss";
    case FlightEventType::kScrubCycle:
      return "scrub_cycle";
    case FlightEventType::kScrubRepair:
      return "scrub_repair";
    case FlightEventType::kWindowQuarantine:
      return "window_quarantine";
    case FlightEventType::kDegradedQuery:
      return "degraded_query";
    case FlightEventType::kStorePoison:
      return "store_poison";
    case FlightEventType::kFaultInjected:
      return "fault_injected";
    case FlightEventType::kFlushChunk:
      return "flush_chunk";
    case FlightEventType::kDump:
      return "dump";
    case FlightEventType::kIngestStall:
      return "ingest_stall";
    case FlightEventType::kIngestShed:
      return "ingest_shed";
    case FlightEventType::kIngestDrain:
      return "ingest_drain";
    case FlightEventType::kNetFaultInjected:
      return "net_fault_injected";
    case FlightEventType::kNetRetry:
      return "net_retry";
    case FlightEventType::kNetReconnect:
      return "net_reconnect";
    case FlightEventType::kNetDeadlineExceeded:
      return "net_deadline_exceeded";
    case FlightEventType::kNetDupSuppressed:
      return "net_dup_suppressed";
    case FlightEventType::kNetSlowPeerDisconnect:
      return "net_slow_peer_disconnect";
  }
  return "unknown";
}

// One thread's journal. Only the owning thread stores into slots; drains read
// them with relaxed loads, so the only (deliberate) imprecision is a torn
// event at the wrap frontier of a ring being written concurrently.
struct FlightRecorder::Ring {
  struct Slot {
    std::atomic<uint64_t> ts_nanos{0};
    std::atomic<uint64_t> tid_type{0};  // tid << 16 | type
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
  };

  void Write(uint64_t ts, uint32_t tid, FlightEventType type, uint64_t a0, uint64_t a1) {
    uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & (kRingEvents - 1)];
    slot.ts_nanos.store(ts, std::memory_order_relaxed);
    slot.tid_type.store((static_cast<uint64_t>(tid) << 16) |
                            static_cast<uint64_t>(type),
                        std::memory_order_relaxed);
    slot.arg0.store(a0, std::memory_order_relaxed);
    slot.arg1.store(a1, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  Slot slots[kRingEvents];
  std::atomic<uint64_t> head{0};
  std::atomic<bool> in_use{false};
};

namespace {

// Parks the thread's ring back on the recorder's free list at thread exit so
// long-lived processes with thread churn reuse rings instead of growing.
struct RingLease {
  FlightRecorder::Ring* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) {
      ring->in_use.store(false, std::memory_order_release);
    }
  }
};

thread_local RingLease tls_lease;

}  // namespace

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (size_t i = 0; i < rings_.size(); ++i) {
    if (!rings_[i]->in_use.load(std::memory_order_acquire)) {
      rings_[i]->in_use.store(true, std::memory_order_relaxed);
      return rings_[i].get();
    }
  }
  rings_.push_back(std::make_shared<Ring>());
  rings_.back()->in_use.store(true, std::memory_order_relaxed);
  return rings_.back().get();
}

void FlightRecorder::Record(FlightEventType type, uint64_t arg0, uint64_t arg1) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  if (tls_lease.ring == nullptr) {
    tls_lease.ring = ThreadRing();
  }
  static thread_local uint32_t tid = CurrentTid();
  tls_lease.ring->Write(NowNanos(), tid, type, arg0, arg1);
}

std::vector<FlightEvent> FlightRecorder::Snapshot(size_t max_events) const {
  std::vector<FlightEvent> events;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      uint64_t head = ring->head.load(std::memory_order_acquire);
      uint64_t n = std::min<uint64_t>(head, kRingEvents);
      for (uint64_t i = head - n; i < head; ++i) {
        const Ring::Slot& slot = ring->slots[i & (kRingEvents - 1)];
        FlightEvent event;
        event.ts_nanos = slot.ts_nanos.load(std::memory_order_relaxed);
        uint64_t tt = slot.tid_type.load(std::memory_order_relaxed);
        event.tid = static_cast<uint32_t>(tt >> 16);
        event.type = static_cast<uint16_t>(tt & 0xFFFF);
        event.arg0 = slot.arg0.load(std::memory_order_relaxed);
        event.arg1 = slot.arg1.load(std::memory_order_relaxed);
        if (event.ts_nanos != 0) {
          events.push_back(event);
        }
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.ts_nanos < b.ts_nanos; });
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(), events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

void FlightRecorder::ResetForTest() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    for (auto& slot : ring->slots) {
      slot.ts_nanos.store(0, std::memory_order_relaxed);
      slot.tid_type.store(0, std::memory_order_relaxed);
      slot.arg0.store(0, std::memory_order_relaxed);
      slot.arg1.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

StatusOr<std::string> FlightRecorder::Dump(const std::string& dir, const std::string& reason,
                                           const std::string& store_state) {
  static Counter& dumps = MetricRegistry::Default().GetCounter("ss_obs_flight_dump_total");
  std::string target = dir;
  if (const char* env = std::getenv("SS_FLIGHT_DIR"); env != nullptr && env[0] != '\0') {
    target = env;
  }
  // Raw POSIX below the FileOps seam: a dump triggered by an injected fault
  // must not be eaten by the same injector, and the crash path must not
  // re-enter the storage layer that just failed.
  if (::mkdir(target.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("flight dump: mkdir " + target);
  }
  Record(FlightEventType::kDump, 0, 0);
  std::vector<FlightEvent> events = Snapshot();
  dumps.Inc();

  Writer writer;
  writer.PutFixed32(kBundleMagic);
  writer.PutU8(kBundleVersion);
  writer.PutFixed64(WallMicros());
  writer.PutFixed64(NowNanos());
  writer.PutString(reason);
  writer.PutString(store_state);
  writer.PutString(MetricRegistry::Default().RenderJson());
  writer.PutVarint(events.size());
  for (const FlightEvent& event : events) {
    writer.PutVarint(event.ts_nanos);
    writer.PutVarint(event.tid);
    writer.PutVarint(event.type);
    writer.PutVarint(event.arg0);
    writer.PutVarint(event.arg1);
  }

  char name[64];
  std::snprintf(name, sizeof(name), "/flight-%" PRIu64 ".bin", WallMicros());
  std::string path = target + name;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("flight dump: open " + path);
  }
  const std::string& data = writer.data();
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("flight dump: write " + path);
    }
    off += static_cast<size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return path;
}

namespace {

void CrashDumpHandler(int signo) {
  // Restore the default disposition first: if the dump itself faults, the
  // process dies the normal way instead of recursing.
  ::signal(signo, SIG_DFL);
  const char* dir = std::getenv("SS_FLIGHT_DIR");
  (void)FlightRecorder::Default().Dump(dir != nullptr && dir[0] != '\0' ? dir : ".",
                                       std::string("fatal signal ") + std::to_string(signo),
                                       "");
  ::raise(signo);
}

}  // namespace

void FlightRecorder::InstallCrashHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashDumpHandler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGBUS, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

StatusOr<FlightBundle> ReadFlightBundle(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("flight bundle: open " + path);
  }
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return Status::IoError("flight bundle: read " + path);
    }
    if (n == 0) {
      break;
    }
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  Reader reader(contents);
  SS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadFixed32());
  if (magic != kBundleMagic) {
    return Status::Corruption("flight bundle: bad magic in " + path);
  }
  SS_ASSIGN_OR_RETURN(uint8_t version, reader.ReadU8());
  if (version > kBundleVersion) {
    return Status::Corruption("flight bundle: unsupported version " + std::to_string(version));
  }
  FlightBundle bundle;
  SS_ASSIGN_OR_RETURN(bundle.wall_anchor_micros, reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(bundle.mono_anchor_nanos, reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(std::string_view reason, reader.ReadString());
  bundle.reason = std::string(reason);
  SS_ASSIGN_OR_RETURN(std::string_view state, reader.ReadString());
  bundle.store_state = std::string(state);
  SS_ASSIGN_OR_RETURN(std::string_view metrics, reader.ReadString());
  bundle.metrics_json = std::string(metrics);
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  bundle.events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FlightEvent event;
    SS_ASSIGN_OR_RETURN(event.ts_nanos, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(uint64_t tid, reader.ReadVarint());
    event.tid = static_cast<uint32_t>(tid);
    SS_ASSIGN_OR_RETURN(uint64_t type, reader.ReadVarint());
    event.type = static_cast<uint16_t>(type);
    SS_ASSIGN_OR_RETURN(event.arg0, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(event.arg1, reader.ReadVarint());
    bundle.events.push_back(event);
  }
  return bundle;
}

std::string RenderFlightTimeline(const FlightBundle& bundle, double since_micros) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "flight bundle: reason=\"%s\" wall_anchor_us=%" PRIu64 " events=%zu\n",
                bundle.reason.c_str(), bundle.wall_anchor_micros, bundle.events.size());
  out += line;
  if (!bundle.store_state.empty()) {
    out += "store state:\n";
    // Indent each state line for readability.
    size_t start = 0;
    while (start < bundle.store_state.size()) {
      size_t end = bundle.store_state.find('\n', start);
      if (end == std::string::npos) {
        end = bundle.store_state.size();
      }
      out += "  " + bundle.store_state.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  out += "timeline:\n";
  uint64_t t0 = bundle.events.empty() ? 0 : bundle.events.front().ts_nanos;
  size_t shown = 0;
  for (const FlightEvent& event : bundle.events) {
    double rel_us = static_cast<double>(event.ts_nanos - t0) / 1000.0;
    if (rel_us < since_micros) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  +%12.1fus tid=%-7u %-20s arg0=%-12" PRIu64 " arg1=%" PRIu64 "\n", rel_us,
                  event.tid, FlightEventTypeName(static_cast<FlightEventType>(event.type)),
                  event.arg0, event.arg1);
    out += line;
    ++shown;
  }
  if (shown == 0) {
    out += "  (no events)\n";
  }
  return out;
}

}  // namespace ss
