// Process-wide metrics registry (`ss_obs`): cheap thread-safe instruments for
// the hot paths the paper's evaluation cares about — ingest/query latency,
// merge and flush counts, cache hit ratios.
//
// Instruments are registered once by (name, label) in MetricRegistry and live
// for the rest of the process; hot paths hold a reference obtained via a
// function-local static, so the steady-state cost is one relaxed atomic RMW:
//
//   static Counter& appends =
//       MetricRegistry::Default().GetCounter("ss_core_append_total");
//   appends.Inc();
//
// Naming convention: ss_<module>_<name>[_total|_us|_bytes]. Histograms record
// in microseconds unless the name says otherwise.
//
// The registry renders as Prometheus-style text (counters/gauges as their
// native types, histograms as summaries with quantile labels) and as JSON.
#ifndef SUMMARYSTORE_SRC_OBS_METRICS_H_
#define SUMMARYSTORE_SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/clock.h"

namespace ss {

// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins signed gauge (resident bytes, table counts, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket log-scale histogram: bucket k holds values v with
// bit_width(v) == k, i.e. [2^(k-1), 2^k) for k >= 1 and {0} for k == 0.
// Quantile estimates return the upper bound of the covering bucket, so any
// estimate is within one power-of-two bucket of the exact order statistic.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // bit_width(uint64) in [0, 64]

  void Record(uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  uint64_t Quantile(double q) const;
  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }
  uint64_t BucketCount(size_t k) const { return buckets_[k].load(std::memory_order_relaxed); }
  void ResetForTest();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// RAII timer: records elapsed wall-clock microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& hist) : hist_(&hist) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(watch_.ElapsedMicros()));
    }
  }
  // Stops the timer without recording (error paths a caller wants excluded).
  void Cancel() { hist_ = nullptr; }

 private:
  LatencyHistogram* hist_;
  Stopwatch watch_;
};

// Name + label registry of instruments. Get* registers on first use and
// returns a reference that stays valid for the life of the process (the
// registry never deletes instruments; ResetForTest zeroes values in place).
class MetricRegistry {
 public:
  static MetricRegistry& Default();

  // `label` is an optional Prometheus-style label body, e.g. `op="count"`.
  // The exposition key is name{label} (or bare name when label is empty).
  Counter& GetCounter(std::string_view name, std::string_view label = "");
  Gauge& GetGauge(std::string_view name, std::string_view label = "");
  LatencyHistogram& GetHistogram(std::string_view name, std::string_view label = "");

  // Prometheus text exposition: `# TYPE` comments, counters/gauges as bare
  // samples, histograms as summaries (quantile label + _sum/_count/_max).
  std::string RenderPrometheusText() const;
  // One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  // {name: {count, sum, mean, p50, p95, p99, max}}}.
  std::string RenderJson() const;

  // Zeroes every registered instrument (benchmarks and tests isolate runs).
  void ResetForTest();

 private:
  MetricRegistry() = default;

  mutable std::mutex mu_;
  // Node-based maps keep instrument addresses stable across registration.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_OBS_METRICS_H_
