#include "src/analytics/reconstruct.h"

#include <algorithm>

#include "src/sketch/reservoir.h"

namespace ss {

StatusOr<std::vector<Event>> ReconstructSamples(Stream& stream, Timestamp t1, Timestamp t2) {
  SS_ASSIGN_OR_RETURN(std::vector<Stream::WindowView> views, stream.WindowsOverlapping(t1, t2));
  std::vector<Event> samples;
  for (const auto& view : views) {
    const SummaryWindow& window = *view.window;
    if (window.is_raw()) {
      for (const Event& event : window.raw()) {
        if (event.ts >= t1 && event.ts <= t2) {
          samples.push_back(event);
        }
      }
      continue;
    }
    const auto* reservoir =
        SummaryCast<ReservoirSample>(window.Find(SummaryKind::kReservoir));
    if (reservoir == nullptr) {
      return Status::FailedPrecondition("stream has no reservoir (sampled) operator");
    }
    for (const auto& item : reservoir->items()) {
      if (item.ts >= t1 && item.ts <= t2) {
        samples.push_back(Event{item.ts, item.value});
      }
    }
  }
  for (const Event& event : stream.QueryLandmarks(t1, t2)) {
    samples.push_back(event);
  }
  std::sort(samples.begin(), samples.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return samples;
}

}  // namespace ss
