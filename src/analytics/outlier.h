// Outlier-detection workload (§7.1.2): divide time into fixed intervals and
// run the standard boxplot test on each, plus the Three-Sigma landmark
// policy the paper suggests for annotating anomalies at ingest (§4.3).
#ifndef SUMMARYSTORE_SRC_ANALYTICS_OUTLIER_H_
#define SUMMARYSTORE_SRC_ANALYTICS_OUTLIER_H_

#include <span>
#include <vector>

#include "src/core/window.h"  // Event
#include "src/stats/boxplot.h"
#include "src/stats/welford.h"

namespace ss {

struct OutlierReport {
  // One flag per interval: does the interval contain a boxplot outlier?
  std::vector<bool> interval_has_outlier;
  size_t flagged = 0;
};

// Runs the boxplot test on each interval of width `interval` over
// [t_start, t_end); events must be time-ordered.
OutlierReport DetectOutliers(std::span<const Event> events, Timestamp t_start, Timestamp t_end,
                             Timestamp interval, double fence_k = 1.5);

// Outlier-detection quality vs. a ground-truth report.
struct OutlierAccuracy {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double FalsePositiveIncrease(size_t baseline_positives) const {
    return baseline_positives == 0
               ? 0.0
               : static_cast<double>(false_positives) / static_cast<double>(baseline_positives);
  }
};
OutlierAccuracy CompareOutlierReports(const OutlierReport& truth, const OutlierReport& test);

// Streaming Three-Sigma landmark policy (§4.3): flags a sample whose
// deviation from the running mean exceeds k·σ. Used at ingest to decide
// when to open/close landmark windows.
class ThreeSigmaPolicy {
 public:
  explicit ThreeSigmaPolicy(double k = 3.0, int64_t warmup = 100) : k_(k), warmup_(warmup) {}

  // Returns true if `value` is anomalous under the statistics so far, then
  // folds it in.
  bool Observe(double value) {
    bool anomalous = false;
    if (acc_.count() >= warmup_) {
      double sigma = acc_.StdDev();
      anomalous = sigma > 0 && std::abs(value - acc_.Mean()) > k_ * sigma;
    }
    acc_.Add(value);
    return anomalous;
  }

 private:
  double k_;
  int64_t warmup_;
  WelfordAccumulator acc_;
};

// Simple moving average over fixed intervals (the aggregation workload run
// alongside outlier detection in Figure 6).
std::vector<double> IntervalAverages(std::span<const Event> events, Timestamp t_start,
                                     Timestamp t_end, Timestamp interval);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_ANALYTICS_OUTLIER_H_
