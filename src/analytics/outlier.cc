#include "src/analytics/outlier.h"

#include <cmath>

namespace ss {

OutlierReport DetectOutliers(std::span<const Event> events, Timestamp t_start, Timestamp t_end,
                             Timestamp interval, double fence_k) {
  OutlierReport report;
  if (interval <= 0 || t_end <= t_start) {
    return report;
  }
  size_t num_intervals = static_cast<size_t>((t_end - t_start + interval - 1) / interval);
  report.interval_has_outlier.assign(num_intervals, false);

  size_t idx = 0;
  std::vector<double> bucket;
  for (size_t i = 0; i < num_intervals; ++i) {
    Timestamp lo = t_start + static_cast<Timestamp>(i) * interval;
    Timestamp hi = lo + interval;
    bucket.clear();
    while (idx < events.size() && events[idx].ts < hi) {
      if (events[idx].ts >= lo) {
        bucket.push_back(events[idx].value);
      }
      ++idx;
    }
    if (bucket.size() >= 4) {
      BoxplotStats stats = BoxplotTest(bucket, fence_k);
      if (stats.has_outlier) {
        report.interval_has_outlier[i] = true;
        ++report.flagged;
      }
    }
  }
  return report;
}

OutlierAccuracy CompareOutlierReports(const OutlierReport& truth, const OutlierReport& test) {
  OutlierAccuracy acc;
  size_t n = std::min(truth.interval_has_outlier.size(), test.interval_has_outlier.size());
  for (size_t i = 0; i < n; ++i) {
    bool t = truth.interval_has_outlier[i];
    bool p = test.interval_has_outlier[i];
    if (t && p) {
      ++acc.true_positives;
    } else if (!t && p) {
      ++acc.false_positives;
    } else if (t && !p) {
      ++acc.false_negatives;
    }
  }
  return acc;
}

std::vector<double> IntervalAverages(std::span<const Event> events, Timestamp t_start,
                                     Timestamp t_end, Timestamp interval) {
  std::vector<double> averages;
  if (interval <= 0 || t_end <= t_start) {
    return averages;
  }
  size_t num_intervals = static_cast<size_t>((t_end - t_start + interval - 1) / interval);
  averages.assign(num_intervals, 0.0);
  std::vector<size_t> counts(num_intervals, 0);
  for (const Event& event : events) {
    if (event.ts < t_start || event.ts >= t_end) {
      continue;
    }
    size_t i = static_cast<size_t>((event.ts - t_start) / interval);
    averages[i] += event.value;
    ++counts[i];
  }
  for (size_t i = 0; i < num_intervals; ++i) {
    if (counts[i] > 0) {
      averages[i] /= static_cast<double>(counts[i]);
    }
  }
  return averages;
}

}  // namespace ss
