// Sample-based series reconstruction from a SummaryStore stream: the bridge
// between the store and sample-consuming analytics (forecasting, outlier
// scans). Raw windows and landmarks contribute their events exactly;
// materialized windows contribute their reservoir samples — so a
// time-decayed stream yields a sample set that is dense for recent data and
// progressively sparser with age, exactly the input §7.1.1 feeds Prophet.
#ifndef SUMMARYSTORE_SRC_ANALYTICS_RECONSTRUCT_H_
#define SUMMARYSTORE_SRC_ANALYTICS_RECONSTRUCT_H_

#include <vector>

#include "src/core/stream.h"

namespace ss {

StatusOr<std::vector<Event>> ReconstructSamples(Stream& stream, Timestamp t1, Timestamp t2);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_ANALYTICS_RECONSTRUCT_H_
