// Forecasting engine (Facebook Prophet stand-in, §7.1.1).
//
// Prophet's core model is a (piecewise-)linear trend plus Fourier-series
// seasonalities fit by maximum likelihood. This engine fits the same model
// family — linear trend + configurable Fourier harmonics — by ridge least
// squares on (timestamp, value) samples. Figure 5's experiment measures the
// *relative* forecast error of the same engine trained on full, uniformly
// sampled, and time-decayed data, which this model family preserves.
#ifndef SUMMARYSTORE_SRC_ANALYTICS_FORECASTER_H_
#define SUMMARYSTORE_SRC_ANALYTICS_FORECASTER_H_

#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/core/window.h"  // Event

namespace ss {

struct ForecasterOptions {
  // Seasonal periods in timestamp units (e.g. one week and one year for
  // daily data) and the number of Fourier harmonics per period.
  std::vector<double> seasonal_periods;
  int harmonics_per_period = 3;
  double ridge_lambda = 1e-3;
};

class Forecaster {
 public:
  // Fits on training samples (need not be evenly spaced — decayed sample
  // sets are sparse in the past by construction).
  static StatusOr<Forecaster> Fit(std::span<const Event> train, const ForecasterOptions& options);

  double Predict(Timestamp ts) const;
  std::vector<double> PredictAll(std::span<const Timestamp> ts) const;

 private:
  Forecaster(ForecasterOptions options, std::vector<double> coeffs, double t0, double t_scale)
      : options_(std::move(options)), coeffs_(std::move(coeffs)), t0_(t0), t_scale_(t_scale) {}

  std::vector<double> Features(double ts) const;

  ForecasterOptions options_;
  std::vector<double> coeffs_;
  double t0_;       // time origin for numeric conditioning
  double t_scale_;  // time scale for numeric conditioning
};

// Symmetric mean absolute percentage error between series (same length);
// the forecast-accuracy metric used by the Figure 5 harness.
double Smape(std::span<const double> actual, std::span<const double> predicted);

// Solves the dense symmetric system A·x = b in place (Gaussian elimination
// with partial pivoting). A is row-major n×n. Fails on singular systems.
Status SolveLinearSystem(std::vector<double>& a, std::vector<double>& b, int n);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_ANALYTICS_FORECASTER_H_
