#include "src/analytics/forecaster.h"

#include <cmath>

#include "src/common/logging.h"

namespace ss {

Status SolveLinearSystem(std::vector<double>& a, std::vector<double>& b, int n) {
  SS_CHECK(static_cast<int>(a.size()) == n * n && static_cast<int>(b.size()) == n);
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      return Status::FailedPrecondition("singular system in least squares");
    }
    if (pivot != col) {
      for (int k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (int row = col + 1; row < n; ++row) {
      double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) {
        continue;
      }
      for (int k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  for (int row = n - 1; row >= 0; --row) {
    double acc = b[row];
    for (int k = row + 1; k < n; ++k) {
      acc -= a[row * n + k] * b[k];
    }
    b[row] = acc / a[row * n + row];
  }
  return Status::Ok();
}

std::vector<double> Forecaster::Features(double ts) const {
  std::vector<double> f;
  f.reserve(2 + 2 * options_.seasonal_periods.size() *
                    static_cast<size_t>(options_.harmonics_per_period));
  f.push_back(1.0);
  f.push_back((ts - t0_) / t_scale_);
  for (double period : options_.seasonal_periods) {
    for (int h = 1; h <= options_.harmonics_per_period; ++h) {
      double angle = 2.0 * M_PI * h * ts / period;
      f.push_back(std::sin(angle));
      f.push_back(std::cos(angle));
    }
  }
  return f;
}

StatusOr<Forecaster> Forecaster::Fit(std::span<const Event> train,
                                     const ForecasterOptions& options) {
  if (train.size() < 4) {
    return Status::InvalidArgument("too few training samples");
  }
  double t0 = static_cast<double>(train.front().ts);
  double t_scale =
      std::max(1.0, static_cast<double>(train.back().ts) - static_cast<double>(train.front().ts));

  Forecaster model(options, {}, t0, t_scale);
  int n = static_cast<int>(model.Features(t0).size());

  // Normal equations with ridge regularization: (XᵀX + λI)·β = Xᵀy.
  std::vector<double> xtx(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> xty(static_cast<size_t>(n), 0.0);
  for (const Event& sample : train) {
    std::vector<double> f = model.Features(static_cast<double>(sample.ts));
    for (int i = 0; i < n; ++i) {
      xty[i] += f[i] * sample.value;
      for (int j = i; j < n; ++j) {
        xtx[i * n + j] += f[i] * f[j];
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      xtx[i * n + j] = xtx[j * n + i];
    }
    xtx[i * n + i] += options.ridge_lambda * static_cast<double>(train.size());
  }
  SS_RETURN_IF_ERROR(SolveLinearSystem(xtx, xty, n));
  model.coeffs_ = std::move(xty);
  return model;
}

double Forecaster::Predict(Timestamp ts) const {
  std::vector<double> f = Features(static_cast<double>(ts));
  double acc = 0.0;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    acc += coeffs_[i] * f[i];
  }
  return acc;
}

std::vector<double> Forecaster::PredictAll(std::span<const Timestamp> ts) const {
  std::vector<double> out;
  out.reserve(ts.size());
  for (Timestamp t : ts) {
    out.push_back(Predict(t));
  }
  return out;
}

double Smape(std::span<const double> actual, std::span<const double> predicted) {
  SS_CHECK(actual.size() == predicted.size()) << "series length mismatch";
  if (actual.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double denom = (std::abs(actual[i]) + std::abs(predicted[i])) / 2.0;
    if (denom > 0) {
      acc += std::abs(actual[i] - predicted[i]) / denom;
    }
  }
  return acc / static_cast<double>(actual.size());
}

}  // namespace ss
