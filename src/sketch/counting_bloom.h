// Counting Bloom filter: a Bloom filter whose bits are counters. Supports
// both membership tests and a min-counter frequency estimate — the paper's
// §5.2 notes that "a more precise answer is possible if we use a frequency
// data structure such as a counting Bloom filter (useful summary on its own
// too)". Union is element-wise counter addition.
#ifndef SUMMARYSTORE_SRC_SKETCH_COUNTING_BLOOM_H_
#define SUMMARYSTORE_SRC_SKETCH_COUNTING_BLOOM_H_

#include <cstdint>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class CountingBloomFilter : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kCountingBloom;

  CountingBloomFilter(uint32_t num_counters, uint32_t num_hashes);

  SummaryKind kind() const override { return kKind; }
  uint32_t num_counters() const { return num_counters_; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t inserted_count() const { return inserted_; }

  void Update(Timestamp ts, double value) override;

  bool MightContain(double value) const;
  // Min-counter frequency estimate; one-sided overestimate like CMS.
  uint64_t EstimateCount(double value) const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  uint32_t num_counters_;
  uint32_t num_hashes_;
  uint64_t inserted_ = 0;
  std::vector<uint32_t> counters_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_COUNTING_BLOOM_H_
