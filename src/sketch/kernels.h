// Batch sketch-update kernels: the data-parallel inner loops behind
// CountMinSketch::AddHashes, BloomFilter::AddHashes/TestHashes and
// HyperLogLog::AddHashes.
//
// Every kernel has a scalar reference implementation (the exact loops the
// sketch classes have always run, one element at a time) and, on x86-64, an
// AVX2 implementation selected by runtime CPU dispatch. The two are
// bit-identical by construction: the vector path computes the same Mix64 /
// NthHash / `% width` index sequence with exact integer arithmetic (division
// by invariant multiplication), so the resulting table state — and therefore
// serialization, checksums and merge semantics — is byte-for-byte the same
// whichever path ran. `SS_FORCE_SCALAR=1` in the environment pins the scalar
// path; CI runs a leg with it set so the fallback stays tested on AVX2 hosts.
#ifndef SUMMARYSTORE_SRC_SKETCH_KERNELS_H_
#define SUMMARYSTORE_SRC_SKETCH_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ss::kernels {

enum class Impl : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

// The implementation the dispatcher selected at process start (cached; reads
// SS_FORCE_SCALAR and the CPUID feature bits exactly once).
Impl ActiveImpl();
const char* ImplName(Impl impl);

// Canonical value hashing (HashValue) over a batch of doubles.
void HashValues(const double* values, size_t n, uint64_t* out);

// CMS: for each hash, increment cell (row, NthHash(h, Mix64(h), row) % width)
// by 1 in every row. `table` is row-major width*depth. Does not touch the
// sketch's total counter; the owning class maintains it.
void CmsAddHashes(uint64_t* table, uint32_t width, uint32_t depth, const uint64_t* hashes,
                  size_t n);

// Bloom: set (resp. test) the `num_hashes` probe bits of each hash in a
// `num_bits`-wide bit array stored as 64-bit words. Test writes out[j] = 1 if
// every probe bit of hashes[j] is set, else 0.
void BloomAddHashes(uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                    const uint64_t* hashes, size_t n);
void BloomTestHashes(const uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                     const uint64_t* hashes, size_t n, uint8_t* out);

// HLL: fold each hash into the 2^precision register file (max of leading-zero
// ranks). The inner loop is division-free and memory-bound, so both dispatch
// targets share one tight scalar loop; the batch API's win here is hoisting
// the per-event virtual call and bounds setup out of the loop.
void HllAddHashes(uint8_t* registers, uint32_t precision, const uint64_t* hashes, size_t n);

namespace internal {

// Division by invariant multiplication (Granlund & Montgomery; the libdivide
// u64 scheme): turns `n % d` for a loop-invariant d into multiplies and
// shifts that the AVX2 path can evaluate per lane. Exposed for direct fuzzing
// against the hardware `%` in tests.
struct DivMagic {
  uint64_t magic = 0;
  uint8_t shift = 0;
  bool add = false;   // use the rounding-add fixup path
  bool pow2 = false;  // d is a power of two; magic unused
  uint64_t d = 0;
};

DivMagic MakeDivMagic(uint64_t d);

inline uint64_t DivApply(uint64_t n, const DivMagic& m) {
  if (m.pow2) {
    return n >> m.shift;
  }
  uint64_t q = static_cast<uint64_t>((static_cast<__uint128_t>(m.magic) * n) >> 64);
  if (m.add) {
    q = ((n - q) >> 1) + q;
  }
  return q >> m.shift;
}

inline uint64_t ModApply(uint64_t n, const DivMagic& m) { return n - DivApply(n, m) * m.d; }

}  // namespace internal

}  // namespace ss::kernels

#endif  // SUMMARYSTORE_SRC_SKETCH_KERNELS_H_
