#include "src/sketch/cms.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/sketch/kernels.h"

namespace ss {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth)
    : width_(width), depth_(depth), table_(static_cast<size_t>(width) * depth, 0) {}

void CountMinSketch::Update(Timestamp /*ts*/, double value) { AddHash(HashValue(value)); }

void CountMinSketch::AddHash(uint64_t hash, uint64_t count) {
  uint64_t h2 = Mix64(hash);
  for (uint32_t row = 0; row < depth_; ++row) {
    Cell(row, NthHash(hash, h2, row) % width_) += count;
  }
  total_ += count;
}

void CountMinSketch::AddHashes(std::span<const uint64_t> hashes) {
  kernels::CmsAddHashes(table_.data(), width_, depth_, hashes.data(), hashes.size());
  total_ += hashes.size();
}

uint64_t CountMinSketch::EstimateCount(double value) const {
  return EstimateCountHash(HashValue(value));
}

uint64_t CountMinSketch::EstimateCountHash(uint64_t hash) const {
  uint64_t h2 = Mix64(hash);
  uint64_t best = UINT64_MAX;
  for (uint32_t row = 0; row < depth_; ++row) {
    best = std::min(best, Cell(row, NthHash(hash, h2, row) % width_));
  }
  // Cells are always initialized, so the min over probed cells is the
  // estimate even when every cell saturates at UINT64_MAX — mapping that
  // to 0 would make a saturated table read as empty.
  return best;
}

double CountMinSketch::EstimateCountCorrected(double value) const {
  return EstimateCountCorrectedHash(HashValue(value));
}

double CountMinSketch::EstimateCountCorrectedHash(uint64_t hash) const {
  if (depth_ == 0) {
    return 0.0;
  }
  uint64_t h2 = Mix64(hash);
  std::vector<double> corrected(depth_);
  uint64_t raw_min = UINT64_MAX;
  for (uint32_t row = 0; row < depth_; ++row) {
    uint64_t raw = Cell(row, NthHash(hash, h2, row) % width_);
    raw_min = std::min(raw_min, raw);
    double cell = static_cast<double>(raw);
    double noise = width_ > 1 ? (static_cast<double>(total_) - cell) / (width_ - 1) : 0.0;
    corrected[row] = cell - noise;
  }
  // Median of the noise-corrected rows (count-mean-min), clamped into
  // [0, min-estimate]: the min is a guaranteed upper bound. For even depth
  // the median is the average of the two middle elements; taking only the
  // upper-middle one biases the corrected estimate upward.
  std::nth_element(corrected.begin(), corrected.begin() + depth_ / 2, corrected.end());
  double median = corrected[depth_ / 2];
  if (depth_ % 2 == 0) {
    double lower = *std::max_element(corrected.begin(), corrected.begin() + depth_ / 2);
    median = (lower + median) / 2.0;
  }
  return std::clamp(median, 0.0, static_cast<double>(raw_min));
}

Status CountMinSketch::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<CountMinSketch>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("CountMinSketch: kind mismatch in union");
  }
  if (o->width_ != width_ || o->depth_ != depth_) {
    return Status::InvalidArgument("CountMinSketch: config mismatch in union");
  }
  for (size_t i = 0; i < table_.size(); ++i) {
    table_[i] += o->table_[i];
  }
  total_ += o->total_;
  return Status::Ok();
}

void CountMinSketch::Serialize(Writer& writer) const {
  writer.PutVarint(width_);
  writer.PutVarint(depth_);
  writer.PutVarint(total_);
  for (uint64_t cell : table_) {
    writer.PutVarint(cell);
  }
}

StatusOr<std::unique_ptr<Summary>> CountMinSketch::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t width, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t depth, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t total, reader.ReadVarint());
  if (width == 0 || depth == 0 || width * depth > (uint64_t{1} << 28) ||
      width * depth > reader.remaining()) {
    return Status::Corruption("CountMinSketch: bad dimensions");
  }
  auto cms =
      std::make_unique<CountMinSketch>(static_cast<uint32_t>(width), static_cast<uint32_t>(depth));
  cms->total_ = total;
  for (auto& cell : cms->table_) {
    SS_ASSIGN_OR_RETURN(cell, reader.ReadVarint());
  }
  return std::unique_ptr<Summary>(std::move(cms));
}

size_t CountMinSketch::SizeBytes() const { return table_.size() * sizeof(uint64_t) + 16; }

std::unique_ptr<Summary> CountMinSketch::Clone() const {
  return std::make_unique<CountMinSketch>(*this);
}

}  // namespace ss
