// Kind-tagged (de)serialization for summary operators — the single place
// that knows every concrete Summary type. New operators are added here and
// nowhere else ("new operators can be added to SummaryStore as long as they
// specify a union function", §3.1).
#include "src/sketch/aggregates.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/counting_bloom.h"
#include "src/sketch/histogram.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/quantile.h"
#include "src/sketch/reservoir.h"
#include "src/sketch/spacesaving.h"
#include "src/sketch/summary.h"

namespace ss {

const char* SummaryKindName(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::kCount:
      return "count";
    case SummaryKind::kSum:
      return "sum";
    case SummaryKind::kMinMax:
      return "minmax";
    case SummaryKind::kBloom:
      return "bloom";
    case SummaryKind::kCountingBloom:
      return "counting_bloom";
    case SummaryKind::kCountMin:
      return "count_min";
    case SummaryKind::kHyperLogLog:
      return "hyperloglog";
    case SummaryKind::kHistogram:
      return "histogram";
    case SummaryKind::kQuantile:
      return "quantile";
    case SummaryKind::kReservoir:
      return "reservoir";
    case SummaryKind::kSpaceSaving:
      return "spacesaving";
  }
  return "unknown";
}

void SerializeSummary(const Summary& summary, Writer& writer) {
  writer.PutU8(static_cast<uint8_t>(summary.kind()));
  summary.Serialize(writer);
}

StatusOr<std::unique_ptr<Summary>> DeserializeSummary(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  switch (static_cast<SummaryKind>(tag)) {
    case SummaryKind::kCount:
      return CountSummary::Deserialize(reader);
    case SummaryKind::kSum:
      return SumSummary::Deserialize(reader);
    case SummaryKind::kMinMax:
      return MinMaxSummary::Deserialize(reader);
    case SummaryKind::kBloom:
      return BloomFilter::Deserialize(reader);
    case SummaryKind::kCountingBloom:
      return CountingBloomFilter::Deserialize(reader);
    case SummaryKind::kCountMin:
      return CountMinSketch::Deserialize(reader);
    case SummaryKind::kHyperLogLog:
      return HyperLogLog::Deserialize(reader);
    case SummaryKind::kHistogram:
      return Histogram::Deserialize(reader);
    case SummaryKind::kQuantile:
      return QuantileSketch::Deserialize(reader);
    case SummaryKind::kReservoir:
      return ReservoirSample::Deserialize(reader);
    case SummaryKind::kSpaceSaving:
      return SpaceSavingSketch::Deserialize(reader);
  }
  return Status::Corruption("unknown summary kind tag");
}

}  // namespace ss
