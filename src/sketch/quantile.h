// Mergeable quantile sketch in the KLL style (Karnin-Lang-Liberty): a stack
// of capacity-k buffers where level i holds items of weight 2^i. When a level
// overflows it is sorted and randomly halved (keep odd- or even-ranked
// items), promoting the survivors one level up. Union concatenates levels and
// re-compacts, so the sketch decays gracefully through window merges.
//
// The paper excludes non-unionable exact medians ("not all statistics are
// unionable, e.g., median" — §3.4); this operator provides the standard
// approximate, unionable alternative.
#ifndef SUMMARYSTORE_SRC_SKETCH_QUANTILE_H_
#define SUMMARYSTORE_SRC_SKETCH_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class QuantileSketch : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kQuantile;

  // k = per-level buffer capacity; error is O(1/k) in rank. `seed` fixes the
  // compaction coin for reproducibility.
  explicit QuantileSketch(uint32_t k = 128, uint64_t seed = 1);

  SummaryKind kind() const override { return kKind; }
  uint32_t k() const { return k_; }
  uint64_t total_count() const { return total_; }

  void Update(Timestamp ts, double value) override;

  // Approximate q-quantile, q in [0, 1]. Returns 0 for an empty sketch.
  double EstimateQuantile(double q) const;
  // Approximate rank: fraction of inserted values <= x.
  double EstimateRank(double x) const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  void CompactLevel(size_t level);
  bool NextCoin();
  // Flattens to (value, weight) pairs sorted by value.
  std::vector<std::pair<double, uint64_t>> WeightedItems() const;

  uint32_t k_;
  uint64_t total_ = 0;
  uint64_t coin_state_;
  std::vector<std::vector<double>> levels_;  // levels_[i] items carry weight 2^i
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_QUANTILE_H_
