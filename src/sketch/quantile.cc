#include "src/sketch/quantile.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ss {

QuantileSketch::QuantileSketch(uint32_t k, uint64_t seed) : k_(k), coin_state_(seed) {
  SS_CHECK(k >= 8) << "QuantileSketch: k too small: " << k;
  levels_.emplace_back();
}

bool QuantileSketch::NextCoin() {
  coin_state_ += 0x9e3779b97f4a7c15ULL;
  return (Mix64(coin_state_) & 1) != 0;
}

void QuantileSketch::Update(Timestamp /*ts*/, double value) {
  levels_[0].push_back(value);
  ++total_;
  if (levels_[0].size() >= k_) {
    CompactLevel(0);
  }
}

void QuantileSketch::CompactLevel(size_t level) {
  if (levels_.size() == level + 1) {
    levels_.emplace_back();  // may reallocate: take references only after this
  }
  auto& buf = levels_[level];
  auto& up = levels_[level + 1];
  std::sort(buf.begin(), buf.end());
  // Keep either the odd- or even-ranked half, chosen by a fair coin; each
  // survivor doubles in weight by moving one level up.
  size_t offset = NextCoin() ? 1 : 0;
  for (size_t i = offset; i < buf.size(); i += 2) {
    up.push_back(buf[i]);
  }
  buf.clear();
  if (up.size() >= k_) {
    CompactLevel(level + 1);
  }
}

std::vector<std::pair<double, uint64_t>> QuantileSketch::WeightedItems() const {
  std::vector<std::pair<double, uint64_t>> items;
  for (size_t level = 0; level < levels_.size(); ++level) {
    uint64_t weight = uint64_t{1} << level;
    for (double v : levels_[level]) {
      items.emplace_back(v, weight);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

double QuantileSketch::EstimateQuantile(double q) const {
  auto items = WeightedItems();
  if (items.empty()) {
    return 0.0;
  }
  uint64_t total_weight = 0;
  for (const auto& [v, w] : items) {
    total_weight += w;
  }
  double target = q * static_cast<double>(total_weight);
  uint64_t acc = 0;
  for (const auto& [v, w] : items) {
    acc += w;
    if (static_cast<double>(acc) >= target) {
      return v;
    }
  }
  return items.back().first;
}

double QuantileSketch::EstimateRank(double x) const {
  auto items = WeightedItems();
  if (items.empty()) {
    return 0.0;
  }
  uint64_t total_weight = 0;
  uint64_t below = 0;
  for (const auto& [v, w] : items) {
    total_weight += w;
    if (v <= x) {
      below += w;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_weight);
}

Status QuantileSketch::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<QuantileSketch>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("QuantileSketch: kind mismatch in union");
  }
  if (o->k_ != k_) {
    return Status::InvalidArgument("QuantileSketch: k mismatch in union");
  }
  while (levels_.size() < o->levels_.size()) {
    levels_.emplace_back();
  }
  for (size_t level = 0; level < o->levels_.size(); ++level) {
    auto& dst = levels_[level];
    dst.insert(dst.end(), o->levels_[level].begin(), o->levels_[level].end());
  }
  total_ += o->total_;
  // Re-establish the capacity invariant bottom-up; compaction may cascade.
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() >= k_) {
      CompactLevel(level);
    }
  }
  return Status::Ok();
}

void QuantileSketch::Serialize(Writer& writer) const {
  writer.PutVarint(k_);
  writer.PutVarint(total_);
  writer.PutFixed64(coin_state_);
  writer.PutVarint(levels_.size());
  for (const auto& level : levels_) {
    writer.PutVarint(level.size());
    for (double v : level) {
      writer.PutDouble(v);
    }
  }
}

StatusOr<std::unique_ptr<Summary>> QuantileSketch::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t k, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t total, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t coin_state, reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(uint64_t num_levels, reader.ReadVarint());
  if (k < 8 || k > (uint64_t{1} << 24) || num_levels > 64) {
    return Status::Corruption("QuantileSketch: bad configuration");
  }
  auto sketch = std::make_unique<QuantileSketch>(static_cast<uint32_t>(k), coin_state);
  sketch->total_ = total;
  sketch->levels_.assign(num_levels == 0 ? 1 : num_levels, {});
  for (auto& level : sketch->levels_) {
    SS_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
    if (n >= k || n > reader.remaining() / sizeof(double)) {
      return Status::Corruption("QuantileSketch: level over capacity");
    }
    level.resize(n);
    for (auto& v : level) {
      SS_ASSIGN_OR_RETURN(v, reader.ReadDouble());
    }
  }
  return std::unique_ptr<Summary>(std::move(sketch));
}

size_t QuantileSketch::SizeBytes() const {
  size_t bytes = 24;
  for (const auto& level : levels_) {
    bytes += level.size() * sizeof(double);
  }
  return bytes;
}

std::unique_ptr<Summary> QuantileSketch::Clone() const {
  return std::make_unique<QuantileSketch>(*this);
}

}  // namespace ss
