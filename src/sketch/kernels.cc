#include "src/sketch/kernels.h"

#include <bit>
#include <cstdlib>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/sketch/summary.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ss::kernels {

namespace internal {

DivMagic MakeDivMagic(uint64_t d) {
  SS_CHECK(d != 0) << "DivMagic: zero divisor";
  DivMagic out;
  out.d = d;
  if ((d & (d - 1)) == 0) {
    out.pow2 = true;
    out.shift = static_cast<uint8_t>(std::countr_zero(d));
    return out;
  }
  // libdivide's u64 generator: propose magic = floor(2^(64+k)/d) for
  // k = floor(log2 d); if the error term is too large, double the magic and
  // route through the rounding-add fixup at apply time.
  const int floor_log = 63 - std::countl_zero(d);
  __uint128_t num = static_cast<__uint128_t>(1) << (64 + floor_log);
  uint64_t proposed = static_cast<uint64_t>(num / d);
  uint64_t rem = static_cast<uint64_t>(num % d);
  uint64_t e = d - rem;
  out.shift = static_cast<uint8_t>(floor_log);
  if (e < (uint64_t{1} << floor_log)) {
    out.magic = proposed + 1;
  } else {
    uint64_t twice_rem = rem + rem;
    out.magic = proposed + proposed + (twice_rem >= d || twice_rem < rem ? 1 : 0) + 1;
    out.add = true;
  }
  return out;
}

}  // namespace internal

namespace {

using internal::DivMagic;
using internal::MakeDivMagic;

// ---------------------------------------------------------------------------
// Scalar reference: the exact per-element loops the sketch classes run.
// ---------------------------------------------------------------------------

void HashValuesScalar(const double* values, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashValue(values[i]);
  }
}

void CmsAddHashesScalar(uint64_t* table, uint32_t width, uint32_t depth, const uint64_t* hashes,
                        size_t n) {
  for (size_t j = 0; j < n; ++j) {
    uint64_t h = hashes[j];
    uint64_t h2 = Mix64(h);
    for (uint32_t row = 0; row < depth; ++row) {
      table[static_cast<size_t>(row) * width + NthHash(h, h2, row) % width] += 1;
    }
  }
}

void BloomAddHashesScalar(uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                          const uint64_t* hashes, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    uint64_t h = hashes[j];
    uint64_t h2 = Mix64(h);
    for (uint32_t i = 0; i < num_hashes; ++i) {
      uint64_t bit = NthHash(h, h2, i) % num_bits;
      bits[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
}

void BloomTestHashesScalar(const uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                           const uint64_t* hashes, size_t n, uint8_t* out) {
  for (size_t j = 0; j < n; ++j) {
    uint64_t h = hashes[j];
    uint64_t h2 = Mix64(h);
    uint8_t hit = 1;
    for (uint32_t i = 0; i < num_hashes; ++i) {
      uint64_t bit = NthHash(h, h2, i) % num_bits;
      if ((bits[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) {
        hit = 0;
        break;
      }
    }
    out[j] = hit;
  }
}

void HllAddHashesImpl(uint8_t* registers, uint32_t precision, const uint64_t* hashes, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    uint64_t hash = hashes[j];
    uint32_t index = static_cast<uint32_t>(hash >> (64 - precision));
    uint64_t rest = hash << precision;
    uint8_t rank = rest == 0 ? static_cast<uint8_t>(64 - precision + 1)
                             : static_cast<uint8_t>(std::countl_zero(rest) + 1);
    registers[index] = std::max(registers[index], rank);
  }
}

// ---------------------------------------------------------------------------
// AVX2: four hashes per iteration. 64-bit lane multiplies are synthesized
// from 32x32→64 products (AVX2 has no _mm256_mullo_epi64); `% width` uses the
// DivMagic multiply-shift, which is exact, so every computed index matches the
// scalar path bit for bit. Table/bit-array read-modify-writes stay scalar:
// two lanes hashing to the same cell would lose an increment under a gathered
// add, and AVX2 has no scatter anyway.
// ---------------------------------------------------------------------------

#if defined(__x86_64__)

__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i mid1 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  __m256i mid2 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(_mm256_add_epi64(mid1, mid2), 32));
}

__attribute__((target("avx2"))) inline __m256i MulHi64(__m256i a, __m256i b) {
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffff);
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i ll = _mm256_mul_epu32(a, b);
  __m256i lh = _mm256_mul_epu32(a, b_hi);
  __m256i hl = _mm256_mul_epu32(a_hi, b);
  __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  __m256i cross = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  __m256i cross2 = _mm256_add_epi64(lh, _mm256_and_si256(cross, lo_mask));
  return _mm256_add_epi64(
      hh, _mm256_add_epi64(_mm256_srli_epi64(cross, 32), _mm256_srli_epi64(cross2, 32)));
}

__attribute__((target("avx2"))) inline __m256i Mix64Avx2(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = MulLo64(x, _mm256_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = MulLo64(x, _mm256_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebULL)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
  return x;
}

// n mod d for the divisor captured in `m`, all four lanes at once.
__attribute__((target("avx2"))) inline __m256i ModAvx2(__m256i n, const DivMagic& m,
                                                       __m256i vmagic, __m256i vd,
                                                       __m128i vshift) {
  __m256i q;
  if (m.pow2) {
    q = _mm256_srl_epi64(n, vshift);
  } else {
    q = MulHi64(vmagic, n);
    if (m.add) {
      q = _mm256_add_epi64(_mm256_srli_epi64(_mm256_sub_epi64(n, q), 1), q);
    }
    q = _mm256_srl_epi64(q, vshift);
  }
  return _mm256_sub_epi64(n, MulLo64(q, vd));
}

__attribute__((target("avx2"))) void HashValuesAvx2(const double* values, size_t n,
                                                    uint64_t* out) {
  const __m256i prime5 = _mm256_set1_epi64x(static_cast<int64_t>(hash_internal::kPrime5));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i bits = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    __m256i h = Mix64Avx2(_mm256_add_epi64(bits, prime5));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  HashValuesScalar(values + i, n - i, out + i);
}

__attribute__((target("avx2"))) void CmsAddHashesAvx2(uint64_t* table, uint32_t width,
                                                      uint32_t depth, const uint64_t* hashes,
                                                      size_t n) {
  const DivMagic dm = MakeDivMagic(width);
  const __m256i vmagic = _mm256_set1_epi64x(static_cast<int64_t>(dm.magic));
  const __m256i vwidth = _mm256_set1_epi64x(width);
  const __m128i vshift = _mm_cvtsi32_si128(dm.shift);
  const __m256i two = _mm256_set1_epi64x(2);
  alignas(32) uint64_t idx[4];
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + j));
    __m256i h2 = Mix64Avx2(h);
    // NthHash(h, h2, i) = h + i*h2 + i^2 advances by h2 + 2i + 1 per row, so
    // the row loop is add-only (exact mod-2^64 arithmetic, same as scalar).
    __m256i cur = h;
    __m256i step = _mm256_add_epi64(h2, _mm256_set1_epi64x(1));
    uint64_t* row_base = table;
    for (uint32_t row = 0; row < depth; ++row) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                         ModAvx2(cur, dm, vmagic, vwidth, vshift));
      row_base[idx[0]] += 1;
      row_base[idx[1]] += 1;
      row_base[idx[2]] += 1;
      row_base[idx[3]] += 1;
      row_base += width;
      cur = _mm256_add_epi64(cur, step);
      step = _mm256_add_epi64(step, two);
    }
  }
  CmsAddHashesScalar(table, width, depth, hashes + j, n - j);
}

__attribute__((target("avx2"))) void BloomAddHashesAvx2(uint64_t* bits, uint32_t num_bits,
                                                        uint32_t num_hashes,
                                                        const uint64_t* hashes, size_t n) {
  const DivMagic dm = MakeDivMagic(num_bits);
  const __m256i vmagic = _mm256_set1_epi64x(static_cast<int64_t>(dm.magic));
  const __m256i vbits = _mm256_set1_epi64x(num_bits);
  const __m128i vshift = _mm_cvtsi32_si128(dm.shift);
  const __m256i two = _mm256_set1_epi64x(2);
  alignas(32) uint64_t idx[4];
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + j));
    __m256i h2 = Mix64Avx2(h);
    __m256i cur = h;
    __m256i step = _mm256_add_epi64(h2, _mm256_set1_epi64x(1));
    for (uint32_t i = 0; i < num_hashes; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                         ModAvx2(cur, dm, vmagic, vbits, vshift));
      for (int k = 0; k < 4; ++k) {
        bits[idx[k] / 64] |= uint64_t{1} << (idx[k] % 64);
      }
      cur = _mm256_add_epi64(cur, step);
      step = _mm256_add_epi64(step, two);
    }
  }
  BloomAddHashesScalar(bits, num_bits, num_hashes, hashes + j, n - j);
}

__attribute__((target("avx2"))) void BloomTestHashesAvx2(const uint64_t* bits, uint32_t num_bits,
                                                         uint32_t num_hashes,
                                                         const uint64_t* hashes, size_t n,
                                                         uint8_t* out) {
  const DivMagic dm = MakeDivMagic(num_bits);
  const __m256i vmagic = _mm256_set1_epi64x(static_cast<int64_t>(dm.magic));
  const __m256i vbits = _mm256_set1_epi64x(num_bits);
  const __m128i vshift = _mm_cvtsi32_si128(dm.shift);
  const __m256i two = _mm256_set1_epi64x(2);
  alignas(32) uint64_t idx[4];
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + j));
    __m256i h2 = Mix64Avx2(h);
    __m256i cur = h;
    __m256i step = _mm256_add_epi64(h2, _mm256_set1_epi64x(1));
    uint8_t hit[4] = {1, 1, 1, 1};
    for (uint32_t i = 0; i < num_hashes; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx),
                         ModAvx2(cur, dm, vmagic, vbits, vshift));
      for (int k = 0; k < 4; ++k) {
        hit[k] &= (bits[idx[k] / 64] >> (idx[k] % 64)) & 1;
      }
      cur = _mm256_add_epi64(cur, step);
      step = _mm256_add_epi64(step, two);
    }
    for (int k = 0; k < 4; ++k) {
      out[j + k] = hit[k];
    }
  }
  BloomTestHashesScalar(bits, num_bits, num_hashes, hashes + j, n - j, out + j);
}

#endif  // defined(__x86_64__)

// ---------------------------------------------------------------------------
// Dispatch: one table, resolved once. SS_FORCE_SCALAR pins the reference
// path regardless of CPU features (CI exercises it on AVX2 hosts).
// ---------------------------------------------------------------------------

struct KernelOps {
  Impl impl;
  void (*hash_values)(const double*, size_t, uint64_t*);
  void (*cms_add)(uint64_t*, uint32_t, uint32_t, const uint64_t*, size_t);
  void (*bloom_add)(uint64_t*, uint32_t, uint32_t, const uint64_t*, size_t);
  void (*bloom_test)(const uint64_t*, uint32_t, uint32_t, const uint64_t*, size_t, uint8_t*);
  void (*hll_add)(uint8_t*, uint32_t, const uint64_t*, size_t);
};

const KernelOps& Ops() {
  static const KernelOps ops = [] {
    KernelOps o{Impl::kScalar,         HashValuesScalar,      CmsAddHashesScalar,
                BloomAddHashesScalar,  BloomTestHashesScalar, HllAddHashesImpl};
#if defined(__x86_64__)
    const char* force = std::getenv("SS_FORCE_SCALAR");
    bool forced = force != nullptr && force[0] != '\0' && force[0] != '0';
    if (!forced && __builtin_cpu_supports("avx2")) {
      o = KernelOps{Impl::kAvx2,         HashValuesAvx2,      CmsAddHashesAvx2,
                    BloomAddHashesAvx2,  BloomTestHashesAvx2, HllAddHashesImpl};
    }
#endif
    return o;
  }();
  return ops;
}

}  // namespace

Impl ActiveImpl() { return Ops().impl; }

const char* ImplName(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
      return "scalar";
    case Impl::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void HashValues(const double* values, size_t n, uint64_t* out) {
  Ops().hash_values(values, n, out);
}

void CmsAddHashes(uint64_t* table, uint32_t width, uint32_t depth, const uint64_t* hashes,
                  size_t n) {
  Ops().cms_add(table, width, depth, hashes, n);
}

void BloomAddHashes(uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                    const uint64_t* hashes, size_t n) {
  Ops().bloom_add(bits, num_bits, num_hashes, hashes, n);
}

void BloomTestHashes(const uint64_t* bits, uint32_t num_bits, uint32_t num_hashes,
                     const uint64_t* hashes, size_t n, uint8_t* out) {
  Ops().bloom_test(bits, num_bits, num_hashes, hashes, n, out);
}

void HllAddHashes(uint8_t* registers, uint32_t precision, const uint64_t* hashes, size_t n) {
  Ops().hll_add(registers, precision, hashes, n);
}

}  // namespace ss::kernels
