// Space-saving heavy hitters (Metwally, Agrawal & El Abbadi 2005): tracks at
// most `capacity` candidate values with per-candidate (count, error) pairs
// such that the true frequency of a tracked value v lies in
// [count(v) - error(v), count(v)], and any untracked value's frequency is at
// most the minimum tracked count. Union follows the parallel space-saving
// combine: counts of values tracked on both sides add; a value missing from
// one side is charged that side's minimum count as both count and error, so
// the bracket property survives window merges. The query engine tightens the
// per-candidate bracket further with the window CMS when one is configured.
#ifndef SUMMARYSTORE_SRC_SKETCH_SPACESAVING_H_
#define SUMMARYSTORE_SRC_SKETCH_SPACESAVING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class SpaceSavingSketch : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kSpaceSaving;

  struct Candidate {
    double value = 0.0;
    uint64_t count = 0;  // upper bound on the value's true frequency
    uint64_t error = 0;  // count - error is a lower bound
  };

  explicit SpaceSavingSketch(uint32_t capacity);

  SummaryKind kind() const override { return kKind; }
  uint32_t capacity() const { return capacity_; }
  uint64_t total_count() const { return total_; }
  size_t tracked() const { return slots_.size(); }

  void Update(Timestamp ts, double value) override;
  void Add(double value, uint64_t count = 1);

  // Frequency bracket for an arbitrary value: tracked values report their
  // slot; untracked ones report [0, min tracked count].
  Candidate Bracket(double value) const;

  // Top-k candidates by descending count (ties broken by value for
  // determinism). k is clamped to the tracked size.
  std::vector<Candidate> TopK(size_t k) const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  static uint64_t Key(double value);
  size_t FindMinSlot() const;
  uint64_t MinCount() const;

  uint32_t capacity_;
  uint64_t total_ = 0;
  std::vector<Candidate> slots_;
  std::unordered_map<uint64_t, size_t> index_;  // value bit pattern -> slot
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_SPACESAVING_H_
