// HyperLogLog distinct-value counter (Flajolet et al. 2007) with linear-
// counting small-range correction. Union takes the per-register maximum, so
// two HLLs merge into the HLL of the concatenated streams — lossless with
// respect to the sketch state.
#ifndef SUMMARYSTORE_SRC_SKETCH_HYPERLOGLOG_H_
#define SUMMARYSTORE_SRC_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class HyperLogLog : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kHyperLogLog;

  // precision in [4, 18]; 2^precision registers; standard error ~= 1.04 /
  // sqrt(2^precision). The default of 12 gives ~1.6% at 4 KiB.
  explicit HyperLogLog(uint32_t precision = 12);

  SummaryKind kind() const override { return kKind; }
  uint32_t precision() const { return precision_; }

  void Update(Timestamp ts, double value) override;
  void AddHash(uint64_t hash);
  // Batch insert through the kernel layer; register state is identical to
  // per-hash AddHash calls.
  void AddHashes(std::span<const uint64_t> hashes);

  // Estimated number of distinct values.
  double EstimateCardinality() const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  uint32_t precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_HYPERLOGLOG_H_
