#include "src/sketch/counting_bloom.h"

#include <algorithm>

namespace ss {

CountingBloomFilter::CountingBloomFilter(uint32_t num_counters, uint32_t num_hashes)
    : num_counters_(num_counters), num_hashes_(num_hashes), counters_(num_counters, 0) {}

void CountingBloomFilter::Update(Timestamp /*ts*/, double value) {
  uint64_t h1 = HashValue(value);
  uint64_t h2 = Mix64(h1);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    ++counters_[NthHash(h1, h2, i) % num_counters_];
  }
  ++inserted_;
}

bool CountingBloomFilter::MightContain(double value) const { return EstimateCount(value) > 0; }

uint64_t CountingBloomFilter::EstimateCount(double value) const {
  uint64_t h1 = HashValue(value);
  uint64_t h2 = Mix64(h1);
  uint32_t best = UINT32_MAX;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    best = std::min(best, counters_[NthHash(h1, h2, i) % num_counters_]);
  }
  return best == UINT32_MAX ? 0 : best;
}

Status CountingBloomFilter::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<CountingBloomFilter>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("CountingBloomFilter: kind mismatch in union");
  }
  if (o->num_counters_ != num_counters_ || o->num_hashes_ != num_hashes_) {
    return Status::InvalidArgument("CountingBloomFilter: config mismatch in union");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += o->counters_[i];
  }
  inserted_ += o->inserted_;
  return Status::Ok();
}

void CountingBloomFilter::Serialize(Writer& writer) const {
  writer.PutVarint(num_counters_);
  writer.PutVarint(num_hashes_);
  writer.PutVarint(inserted_);
  for (uint32_t c : counters_) {
    writer.PutVarint(c);
  }
}

StatusOr<std::unique_ptr<Summary>> CountingBloomFilter::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t num_counters, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t num_hashes, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t inserted, reader.ReadVarint());
  if (num_counters == 0 || num_counters > (uint64_t{1} << 28) ||
      num_counters > reader.remaining()) {
    return Status::Corruption("CountingBloomFilter: bad width");
  }
  auto cbf = std::make_unique<CountingBloomFilter>(static_cast<uint32_t>(num_counters),
                                                   static_cast<uint32_t>(num_hashes));
  cbf->inserted_ = inserted;
  for (auto& c : cbf->counters_) {
    SS_ASSIGN_OR_RETURN(uint64_t v, reader.ReadVarint());
    if (v > UINT32_MAX) {
      return Status::Corruption("CountingBloomFilter: counter overflow");
    }
    c = static_cast<uint32_t>(v);
  }
  return std::unique_ptr<Summary>(std::move(cbf));
}

size_t CountingBloomFilter::SizeBytes() const { return counters_.size() * sizeof(uint32_t) + 16; }

std::unique_ptr<Summary> CountingBloomFilter::Clone() const {
  return std::make_unique<CountingBloomFilter>(*this);
}

}  // namespace ss
