#include "src/sketch/reservoir.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ss {

ReservoirSample::ReservoirSample(uint32_t capacity, uint64_t seed)
    : capacity_(capacity), rng_state_(seed) {
  SS_CHECK(capacity > 0) << "ReservoirSample: zero capacity";
  // Pre-size for typical capacities; huge reservoirs grow on demand rather
  // than committing memory up front.
  items_.reserve(std::min<uint32_t>(capacity, 4096));
}

uint64_t ReservoirSample::NextRandom() {
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  return Mix64(rng_state_);
}

uint64_t ReservoirSample::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift bounded reduction with rejection: a plain
  // `NextRandom() % bound` over-selects the low 2^64 mod bound residues
  // whenever bound does not divide 2^64, skewing slot selection.
  uint64_t x = NextRandom();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextRandom();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

void ReservoirSample::Update(Timestamp ts, double value) {
  ++population_;
  if (items_.size() < capacity_) {
    items_.push_back(Item{ts, value});
    return;
  }
  // Algorithm R: replace a random slot with probability capacity/population.
  uint64_t j = NextBounded(population_);
  if (j < capacity_) {
    items_[static_cast<size_t>(j)] = Item{ts, value};
  }
}

Status ReservoirSample::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<ReservoirSample>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("ReservoirSample: kind mismatch in union");
  }
  if (o->capacity_ != capacity_) {
    return Status::InvalidArgument("ReservoirSample: capacity mismatch in union");
  }
  if (o->population_ == 0) {
    return Status::Ok();
  }
  if (population_ == 0) {
    items_ = o->items_;
    population_ = o->population_;
    return Status::Ok();
  }
  // Re-sample the union: each output slot draws from this reservoir with
  // probability population/(population+other), consuming drawn items so the
  // result is a without-replacement sample of the merged population.
  std::vector<Item> mine = std::move(items_);
  std::vector<Item> theirs = o->items_;
  std::vector<Item> merged;
  uint64_t my_weight = population_;
  uint64_t their_weight = o->population_;
  size_t want = std::min<size_t>(capacity_, mine.size() + theirs.size());
  merged.reserve(want);
  while (merged.size() < want) {
    bool from_mine;
    if (mine.empty()) {
      from_mine = false;
    } else if (theirs.empty()) {
      from_mine = true;
    } else {
      from_mine = NextBounded(my_weight + their_weight) < my_weight;
    }
    auto& src = from_mine ? mine : theirs;
    size_t idx = static_cast<size_t>(NextBounded(src.size()));
    merged.push_back(src[idx]);
    src[idx] = src.back();
    src.pop_back();
  }
  items_ = std::move(merged);
  population_ += o->population_;
  return Status::Ok();
}

void ReservoirSample::Serialize(Writer& writer) const {
  writer.PutVarint(capacity_);
  writer.PutVarint(population_);
  writer.PutFixed64(rng_state_);
  writer.PutVarint(items_.size());
  for (const Item& item : items_) {
    writer.PutSignedVarint(item.ts);
    writer.PutDouble(item.value);
  }
}

StatusOr<std::unique_ptr<Summary>> ReservoirSample::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t capacity, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t population, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t rng_state, reader.ReadFixed64());
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (capacity == 0 || capacity > (uint64_t{1} << 28) || count > capacity ||
      count > reader.remaining() / 9 + 1) {
    return Status::Corruption("ReservoirSample: bad configuration");
  }
  auto sample = std::make_unique<ReservoirSample>(static_cast<uint32_t>(capacity), rng_state);
  sample->population_ = population;
  sample->items_.resize(count);
  for (auto& item : sample->items_) {
    SS_ASSIGN_OR_RETURN(item.ts, reader.ReadSignedVarint());
    SS_ASSIGN_OR_RETURN(item.value, reader.ReadDouble());
  }
  return std::unique_ptr<Summary>(std::move(sample));
}

size_t ReservoirSample::SizeBytes() const {
  return items_.size() * sizeof(Item) + 24;
}

std::unique_ptr<Summary> ReservoirSample::Clone() const {
  return std::make_unique<ReservoirSample>(*this);
}

}  // namespace ss
