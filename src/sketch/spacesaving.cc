#include "src/sketch/spacesaving.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace ss {

SpaceSavingSketch::SpaceSavingSketch(uint32_t capacity) : capacity_(capacity) {
  SS_CHECK(capacity > 0) << "SpaceSavingSketch: zero capacity";
  slots_.reserve(std::min<uint32_t>(capacity, 4096));
}

uint64_t SpaceSavingSketch::Key(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

size_t SpaceSavingSketch::FindMinSlot() const {
  size_t best = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[best].count) {
      best = i;
    }
  }
  return best;
}

uint64_t SpaceSavingSketch::MinCount() const {
  // The "everything else" bound: only meaningful once the table is full —
  // before that every seen value is tracked and untracked means count 0.
  if (slots_.size() < capacity_) {
    return 0;
  }
  return slots_[FindMinSlot()].count;
}

void SpaceSavingSketch::Update(Timestamp /*ts*/, double value) { Add(value); }

void SpaceSavingSketch::Add(double value, uint64_t count) {
  total_ += count;
  uint64_t key = Key(value);
  auto it = index_.find(key);
  if (it != index_.end()) {
    slots_[it->second].count += count;
    return;
  }
  if (slots_.size() < capacity_) {
    index_[key] = slots_.size();
    slots_.push_back(Candidate{value, count, 0});
    return;
  }
  // Classic eviction: the new value inherits the minimum count as its
  // overestimation error and replaces that slot.
  size_t victim = FindMinSlot();
  uint64_t min_count = slots_[victim].count;
  index_.erase(Key(slots_[victim].value));
  slots_[victim] = Candidate{value, min_count + count, min_count};
  index_[key] = victim;
}

SpaceSavingSketch::Candidate SpaceSavingSketch::Bracket(double value) const {
  auto it = index_.find(Key(value));
  if (it != index_.end()) {
    return slots_[it->second];
  }
  uint64_t bound = MinCount();
  return Candidate{value, bound, bound};
}

std::vector<SpaceSavingSketch::Candidate> SpaceSavingSketch::TopK(size_t k) const {
  std::vector<Candidate> out = slots_;
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.value < b.value;
  });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

Status SpaceSavingSketch::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<SpaceSavingSketch>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("SpaceSavingSketch: kind mismatch in union");
  }
  if (o->capacity_ != capacity_) {
    return Status::InvalidArgument("SpaceSavingSketch: capacity mismatch in union");
  }
  uint64_t my_min = MinCount();
  uint64_t their_min = o->MinCount();
  // Parallel space-saving combine over the union of tracked values. A value
  // absent from one side could have occurred up to that side's minimum count
  // there, so the missing side contributes min as count AND as error —
  // keeping count an upper bound and count - error a lower bound.
  std::vector<Candidate> merged;
  merged.reserve(slots_.size() + o->slots_.size());
  for (const Candidate& mine : slots_) {
    auto it = o->index_.find(Key(mine.value));
    if (it != o->index_.end()) {
      const Candidate& theirs = o->slots_[it->second];
      merged.push_back(
          Candidate{mine.value, mine.count + theirs.count, mine.error + theirs.error});
    } else {
      merged.push_back(Candidate{mine.value, mine.count + their_min, mine.error + their_min});
    }
  }
  for (const Candidate& theirs : o->slots_) {
    if (index_.find(Key(theirs.value)) == index_.end()) {
      merged.push_back(Candidate{theirs.value, theirs.count + my_min, theirs.error + my_min});
    }
  }
  // Keep the `capacity` largest counts (deterministic order for replays).
  std::sort(merged.begin(), merged.end(), [](const Candidate& a, const Candidate& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.value < b.value;
  });
  if (merged.size() > capacity_) {
    merged.resize(capacity_);
  }
  slots_ = std::move(merged);
  index_.clear();
  for (size_t i = 0; i < slots_.size(); ++i) {
    index_[Key(slots_[i].value)] = i;
  }
  total_ += o->total_;
  return Status::Ok();
}

void SpaceSavingSketch::Serialize(Writer& writer) const {
  writer.PutVarint(capacity_);
  writer.PutVarint(total_);
  writer.PutVarint(slots_.size());
  for (const Candidate& c : slots_) {
    writer.PutDouble(c.value);
    writer.PutVarint(c.count);
    writer.PutVarint(c.error);
  }
}

StatusOr<std::unique_ptr<Summary>> SpaceSavingSketch::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t capacity, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t total, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  // Each entry costs at least 10 encoded bytes (8-byte double + 2 varints),
  // so any claimed count above remaining/10 cannot fit the payload.
  if (capacity == 0 || capacity > (uint64_t{1} << 24) || count > capacity ||
      count > reader.remaining() / 10) {
    return Status::Corruption("SpaceSavingSketch: bad configuration");
  }
  auto sketch = std::make_unique<SpaceSavingSketch>(static_cast<uint32_t>(capacity));
  sketch->total_ = total;
  sketch->slots_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Candidate c;
    SS_ASSIGN_OR_RETURN(c.value, reader.ReadDouble());
    SS_ASSIGN_OR_RETURN(c.count, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(c.error, reader.ReadVarint());
    if (c.error > c.count) {
      return Status::Corruption("SpaceSavingSketch: error exceeds count");
    }
    if (!sketch->index_.emplace(Key(c.value), sketch->slots_.size()).second) {
      return Status::Corruption("SpaceSavingSketch: duplicate tracked value");
    }
    sketch->slots_.push_back(c);
  }
  return std::unique_ptr<Summary>(std::move(sketch));
}

size_t SpaceSavingSketch::SizeBytes() const {
  return slots_.size() * (sizeof(Candidate) + 16) + 24;
}

std::unique_ptr<Summary> SpaceSavingSketch::Clone() const {
  return std::make_unique<SpaceSavingSketch>(*this);
}

}  // namespace ss
