#include "src/sketch/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/logging.h"
#include "src/sketch/kernels.h"

namespace ss {

namespace {

double AlphaM(uint32_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / m);
  }
}

}  // namespace

HyperLogLog::HyperLogLog(uint32_t precision)
    : precision_(precision), registers_(size_t{1} << precision, 0) {
  SS_CHECK(precision >= 4 && precision <= 18) << "HLL precision out of range: " << precision;
}

void HyperLogLog::Update(Timestamp /*ts*/, double value) { AddHash(HashValue(value)); }

void HyperLogLog::AddHash(uint64_t hash) {
  uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, in [1, 64-p+1].
  uint8_t rank = rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                           : static_cast<uint8_t>(std::countl_zero(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

void HyperLogLog::AddHashes(std::span<const uint64_t> hashes) {
  kernels::HllAddHashes(registers_.data(), precision_, hashes.data(), hashes.size());
}

double HyperLogLog::EstimateCardinality() const {
  uint32_t m = uint32_t{1} << precision_;
  double sum = 0.0;
  uint32_t zero_registers = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) {
      ++zero_registers;
    }
  }
  double raw = AlphaM(m) * m * m / sum;
  // Small-range correction: linear counting while any register is empty.
  if (raw <= 2.5 * m && zero_registers > 0) {
    return m * std::log(static_cast<double>(m) / zero_registers);
  }
  return raw;
}

Status HyperLogLog::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<HyperLogLog>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("HyperLogLog: kind mismatch in union");
  }
  if (o->precision_ != precision_) {
    return Status::InvalidArgument("HyperLogLog: precision mismatch in union");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], o->registers_[i]);
  }
  return Status::Ok();
}

void HyperLogLog::Serialize(Writer& writer) const {
  writer.PutVarint(precision_);
  writer.PutRaw(registers_.data(), registers_.size());
}

StatusOr<std::unique_ptr<Summary>> HyperLogLog::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t precision, reader.ReadVarint());
  if (precision < 4 || precision > 18) {
    return Status::Corruption("HyperLogLog: bad precision");
  }
  auto hll = std::make_unique<HyperLogLog>(static_cast<uint32_t>(precision));
  SS_ASSIGN_OR_RETURN(std::string_view raw, reader.ReadRaw(hll->registers_.size()));
  std::copy(raw.begin(), raw.end(), reinterpret_cast<char*>(hll->registers_.data()));
  return std::unique_ptr<Summary>(std::move(hll));
}

size_t HyperLogLog::SizeBytes() const { return registers_.size() + 8; }

std::unique_ptr<Summary> HyperLogLog::Clone() const { return std::make_unique<HyperLogLog>(*this); }

}  // namespace ss
