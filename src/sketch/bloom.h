// Bloom filter (Bloom, 1970): the membership operator set. Every window's
// filter in a stream shares the same bit width and hash count, so the union
// of two filters is a bitwise OR (§3.1). As windows decay and represent more
// values, the effective false-positive rate of old windows rises — this is
// exactly the paper's notion of membership-data decay (§3.2).
#ifndef SUMMARYSTORE_SRC_SKETCH_BLOOM_H_
#define SUMMARYSTORE_SRC_SKETCH_BLOOM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class BloomFilter : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kBloom;

  // `num_bits` is rounded up to a multiple of 64. The paper's
  // microbenchmarks use width 1000 with 5 hash functions (~1% FP at ~145
  // inserted values).
  BloomFilter(uint32_t num_bits, uint32_t num_hashes);

  SummaryKind kind() const override { return kKind; }
  uint32_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t inserted_count() const { return inserted_; }

  void Update(Timestamp ts, double value) override;
  void AddHash(uint64_t hash);
  // Batch insert/probe through the dispatched SIMD/scalar kernels; the bit
  // array ends up identical to per-hash AddHash calls. TestHashes writes
  // out[i] = 1 iff hashes[i] might be present (out must hold hashes.size()).
  void AddHashes(std::span<const uint64_t> hashes);
  void TestHashes(std::span<const uint64_t> hashes, uint8_t* out) const;

  bool MightContain(double value) const;
  bool MightContainHash(uint64_t hash) const;

  // Expected false-positive probability given the current fill: (fraction of
  // set bits)^k. Uses the actual bit census rather than the n-based formula
  // so it stays correct after unions.
  double FalsePositiveRate() const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  uint32_t num_bits_;
  uint32_t num_hashes_;
  uint64_t inserted_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_BLOOM_H_
