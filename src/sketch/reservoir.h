// Reservoir sample (Vitter's Algorithm R) of (timestamp, value) pairs: the
// "arbitrary queries" operator set. A window's reservoir is a uniform sample
// of the elements it spans; the union re-samples two reservoirs into one by
// population-weighted draws, matching the paper's "two windows with N samples
// each are re-sampled to a single one with N" (§3.1).
#ifndef SUMMARYSTORE_SRC_SKETCH_RESERVOIR_H_
#define SUMMARYSTORE_SRC_SKETCH_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class ReservoirSample : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kReservoir;

  struct Item {
    Timestamp ts;
    double value;
  };

  explicit ReservoirSample(uint32_t capacity, uint64_t seed = 1);

  SummaryKind kind() const override { return kKind; }
  uint32_t capacity() const { return capacity_; }
  uint64_t population() const { return population_; }
  const std::vector<Item>& items() const { return items_; }

  void Update(Timestamp ts, double value) override;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  uint64_t NextRandom();           // SplitMix64 step over serialized state
  uint64_t NextBounded(uint64_t);  // unbiased draw from [0, bound)

  uint32_t capacity_;
  uint64_t population_ = 0;  // elements seen, not retained
  uint64_t rng_state_;
  std::vector<Item> items_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_RESERVOIR_H_
