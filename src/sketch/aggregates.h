// The simple-aggregate operator set: Count, Sum, MinMax. Mean is derived at
// query time as Sum/Count, exactly as in the paper ("for the latter,
// aggregates can be additionally maintained for a low overhead").
#ifndef SUMMARYSTORE_SRC_SKETCH_AGGREGATES_H_
#define SUMMARYSTORE_SRC_SKETCH_AGGREGATES_H_

#include <algorithm>
#include <limits>

#include "src/sketch/summary.h"

namespace ss {

class CountSummary : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kCount;

  CountSummary() = default;
  explicit CountSummary(uint64_t count) : count_(count) {}

  SummaryKind kind() const override { return kKind; }
  uint64_t count() const { return count_; }

  void Update(Timestamp /*ts*/, double /*value*/) override { ++count_; }

  Status MergeFrom(const Summary& other) override {
    const auto* o = SummaryCast<CountSummary>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("CountSummary: kind mismatch in union");
    }
    count_ += o->count_;  // the union of two Counts is addition (§3.1)
    return Status::Ok();
  }

  void Serialize(Writer& writer) const override { writer.PutVarint(count_); }

  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader) {
    SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    return std::unique_ptr<Summary>(new CountSummary(count));
  }

  size_t SizeBytes() const override { return sizeof(uint64_t); }

  std::unique_ptr<Summary> Clone() const override { return std::make_unique<CountSummary>(*this); }

 private:
  uint64_t count_ = 0;
};

class SumSummary : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kSum;

  SumSummary() = default;
  explicit SumSummary(double sum) : sum_(sum) {}

  SummaryKind kind() const override { return kKind; }
  double sum() const { return sum_; }

  void Update(Timestamp /*ts*/, double value) override { sum_ += value; }

  Status MergeFrom(const Summary& other) override {
    const auto* o = SummaryCast<SumSummary>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("SumSummary: kind mismatch in union");
    }
    sum_ += o->sum_;
    return Status::Ok();
  }

  void Serialize(Writer& writer) const override { writer.PutDouble(sum_); }

  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader) {
    SS_ASSIGN_OR_RETURN(double sum, reader.ReadDouble());
    return std::unique_ptr<Summary>(new SumSummary(sum));
  }

  size_t SizeBytes() const override { return sizeof(double); }

  std::unique_ptr<Summary> Clone() const override { return std::make_unique<SumSummary>(*this); }

 private:
  double sum_ = 0.0;
};

class MinMaxSummary : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kMinMax;

  MinMaxSummary() = default;
  MinMaxSummary(double min, double max, bool empty) : min_(min), max_(max), empty_(empty) {}

  SummaryKind kind() const override { return kKind; }
  bool empty() const { return empty_; }
  double min() const { return min_; }
  double max() const { return max_; }

  void Update(Timestamp /*ts*/, double value) override {
    if (empty_) {
      min_ = max_ = value;
      empty_ = false;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
  }

  Status MergeFrom(const Summary& other) override {
    const auto* o = SummaryCast<MinMaxSummary>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("MinMaxSummary: kind mismatch in union");
    }
    if (o->empty_) {
      return Status::Ok();
    }
    if (empty_) {
      *this = *o;
    } else {
      min_ = std::min(min_, o->min_);
      max_ = std::max(max_, o->max_);
    }
    return Status::Ok();
  }

  void Serialize(Writer& writer) const override {
    writer.PutU8(empty_ ? 1 : 0);
    writer.PutDouble(min_);
    writer.PutDouble(max_);
  }

  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader) {
    SS_ASSIGN_OR_RETURN(uint8_t empty, reader.ReadU8());
    SS_ASSIGN_OR_RETURN(double min, reader.ReadDouble());
    SS_ASSIGN_OR_RETURN(double max, reader.ReadDouble());
    return std::unique_ptr<Summary>(new MinMaxSummary(min, max, empty != 0));
  }

  size_t SizeBytes() const override { return 2 * sizeof(double) + 1; }

  std::unique_ptr<Summary> Clone() const override {
    return std::make_unique<MinMaxSummary>(*this);
  }

 private:
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  bool empty_ = true;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_AGGREGATES_H_
