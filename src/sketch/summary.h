// Base interface for SummaryStore's summary operators (§3.1 of the paper).
//
// A Summary is a compact digest of the (timestamp, value) pairs inserted into
// one window. The only structural requirement — exactly as the paper states —
// is a *union* function: merging two instances of the same operator kind
// yields an instance summarizing the concatenation of their inputs. The
// window-merge ingest algorithm (Algorithm 1) relies on this property.
//
// Operator sets (paper §3.1):
//   1. simple aggregates:      Count, Sum, MinMax (Mean derives from Count+Sum)
//   2. frequency / counting:   Histogram, Quantile, CountMinSketch,
//                              CountingBloomFilter, HyperLogLog
//   3. membership:             BloomFilter
//   4. arbitrary queries:      ReservoirSample
#ifndef SUMMARYSTORE_SRC_SKETCH_SUMMARY_H_
#define SUMMARYSTORE_SRC_SKETCH_SUMMARY_H_

#include <cstdint>
#include <memory>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/serde.h"
#include "src/common/status.h"

namespace ss {

enum class SummaryKind : uint8_t {
  kCount = 1,
  kSum = 2,
  kMinMax = 3,
  kBloom = 4,
  kCountingBloom = 5,
  kCountMin = 6,
  kHyperLogLog = 7,
  kHistogram = 8,
  kQuantile = 9,
  kReservoir = 10,
  kSpaceSaving = 11,
};

const char* SummaryKindName(SummaryKind kind);

// Canonical 64-bit hash of a stream value, shared by every hashing sketch so
// that Bloom / CMS / HLL answers agree on what "the same value" means.
inline uint64_t HashValue(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return Hash64(bits);
}

class Summary {
 public:
  virtual ~Summary() = default;

  virtual SummaryKind kind() const = 0;

  // Folds one stream element into the digest.
  virtual void Update(Timestamp ts, double value) = 0;

  // Union with another instance of the same kind (and compatible
  // configuration). Fails with kInvalidArgument on kind/config mismatch.
  virtual Status MergeFrom(const Summary& other) = 0;

  // Appends the payload (kind tag excluded; the registry writes it).
  virtual void Serialize(Writer& writer) const = 0;

  // Logical in-memory footprint in bytes, used for compaction accounting.
  virtual size_t SizeBytes() const = 0;

  virtual std::unique_ptr<Summary> Clone() const = 0;
};

// Serializes `summary` with its kind tag so DeserializeSummary can route it.
void SerializeSummary(const Summary& summary, Writer& writer);

// Inverse of SerializeSummary; defined in registry.cc.
StatusOr<std::unique_ptr<Summary>> DeserializeSummary(Reader& reader);

// Safely downcasts after a kind check; returns nullptr on mismatch.
template <typename T>
const T* SummaryCast(const Summary* summary) {
  if (summary != nullptr && summary->kind() == T::kKind) {
    return static_cast<const T*>(summary);
  }
  return nullptr;
}

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_SUMMARY_H_
