#include "src/sketch/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ss {

Histogram::Histogram(double lo, double hi, uint32_t num_buckets)
    : lo_(lo), hi_(hi), buckets_(num_buckets, 0) {
  SS_CHECK(hi > lo) << "Histogram: empty range [" << lo << "," << hi << ")";
  SS_CHECK(num_buckets > 0) << "Histogram: zero buckets";
}

void Histogram::Update(Timestamp /*ts*/, double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto b = static_cast<size_t>((value - lo_) / BucketWidth());
  b = std::min(b, buckets_.size() - 1);  // guard against FP edge rounding
  ++buckets_[b];
}

double Histogram::EstimateRangeCount(double a, double b) const {
  if (b <= a) {
    return 0.0;
  }
  a = std::max(a, lo_);
  b = std::min(b, hi_);
  if (b <= a) {
    return 0.0;
  }
  double width = BucketWidth();
  double acc = 0.0;
  size_t first = static_cast<size_t>((a - lo_) / width);
  size_t last = std::min(static_cast<size_t>((b - lo_) / width), buckets_.size() - 1);
  for (size_t i = first; i <= last; ++i) {
    double bucket_lo = lo_ + static_cast<double>(i) * width;
    double bucket_hi = bucket_lo + width;
    double overlap = std::min(b, bucket_hi) - std::max(a, bucket_lo);
    if (overlap > 0) {
      acc += static_cast<double>(buckets_[i]) * (overlap / width);
    }
  }
  return acc;
}

double Histogram::EstimateQuantile(double q) const {
  uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) {
    return lo_;
  }
  double target = q * static_cast<double>(in_range);
  double acc = 0.0;
  double width = BucketWidth();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double next = acc + static_cast<double>(buckets_[i]);
    if (next >= target) {
      double frac = buckets_[i] == 0 ? 0.0 : (target - acc) / static_cast<double>(buckets_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    acc = next;
  }
  return hi_;
}

Status Histogram::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<Histogram>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("Histogram: kind mismatch in union");
  }
  if (o->lo_ != lo_ || o->hi_ != hi_ || o->buckets_.size() != buckets_.size()) {
    return Status::InvalidArgument("Histogram: config mismatch in union");
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += o->buckets_[i];
  }
  total_ += o->total_;
  underflow_ += o->underflow_;
  overflow_ += o->overflow_;
  return Status::Ok();
}

void Histogram::Serialize(Writer& writer) const {
  writer.PutDouble(lo_);
  writer.PutDouble(hi_);
  writer.PutVarint(buckets_.size());
  writer.PutVarint(total_);
  writer.PutVarint(underflow_);
  writer.PutVarint(overflow_);
  for (uint64_t b : buckets_) {
    writer.PutVarint(b);
  }
}

StatusOr<std::unique_ptr<Summary>> Histogram::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(double lo, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(double hi, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(uint64_t num_buckets, reader.ReadVarint());
  if (!(hi > lo) || num_buckets == 0 || num_buckets > (uint64_t{1} << 24) ||
      num_buckets > reader.remaining()) {
    return Status::Corruption("Histogram: bad configuration");
  }
  auto hist = std::make_unique<Histogram>(lo, hi, static_cast<uint32_t>(num_buckets));
  SS_ASSIGN_OR_RETURN(hist->total_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(hist->underflow_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(hist->overflow_, reader.ReadVarint());
  for (auto& b : hist->buckets_) {
    SS_ASSIGN_OR_RETURN(b, reader.ReadVarint());
  }
  return std::unique_ptr<Summary>(std::move(hist));
}

size_t Histogram::SizeBytes() const { return buckets_.size() * sizeof(uint64_t) + 40; }

std::unique_ptr<Summary> Histogram::Clone() const { return std::make_unique<Histogram>(*this); }

}  // namespace ss
