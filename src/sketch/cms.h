// Count-Min sketch (Cormode & Muthukrishnan): frequency estimation with a
// one-sided overestimation error of at most ε·N where ε = e/width, with
// probability 1 − e^(−depth). Union is element-wise addition, so CMS decays
// gracefully through window merges.
#ifndef SUMMARYSTORE_SRC_SKETCH_CMS_H_
#define SUMMARYSTORE_SRC_SKETCH_CMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class CountMinSketch : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kCountMin;

  // The paper's microbenchmarks use width 1000 and 5 hash rows.
  CountMinSketch(uint32_t width, uint32_t depth);

  SummaryKind kind() const override { return kKind; }
  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  uint64_t total_count() const { return total_; }

  void Update(Timestamp ts, double value) override;
  void AddHash(uint64_t hash, uint64_t count = 1);
  // Batch insert (count 1 each) through the dispatched SIMD/scalar kernels;
  // the resulting table state is bit-identical to per-hash AddHash calls.
  void AddHashes(std::span<const uint64_t> hashes);

  // Point estimate of value's frequency (min over rows; never underestimates).
  uint64_t EstimateCount(double value) const;
  uint64_t EstimateCountHash(uint64_t hash) const;

  // Count-mean-min estimate: subtracts each row's expected collision noise
  // (total − cell)/(width − 1) before taking the minimum. Unbiased-ish for
  // rare values (can return 0 for absent ones) at the cost of occasional
  // underestimation; the query engine uses it as the ML point estimate and
  // keeps the conservative min-estimate as the upper bracket.
  double EstimateCountCorrected(double value) const;
  double EstimateCountCorrectedHash(uint64_t hash) const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  uint64_t& Cell(uint32_t row, uint64_t col) { return table_[row * width_ + col]; }
  uint64_t Cell(uint32_t row, uint64_t col) const { return table_[row * width_ + col]; }

  uint32_t width_;
  uint32_t depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> table_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_CMS_H_
