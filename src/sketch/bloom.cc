#include "src/sketch/bloom.h"

#include <bit>
#include <cmath>

#include "src/sketch/kernels.h"

namespace ss {

BloomFilter::BloomFilter(uint32_t num_bits, uint32_t num_hashes)
    : num_bits_((num_bits + 63) / 64 * 64),
      num_hashes_(num_hashes),
      bits_(num_bits_ / 64, 0) {}

void BloomFilter::Update(Timestamp /*ts*/, double value) { AddHash(HashValue(value)); }

void BloomFilter::AddHash(uint64_t hash) {
  uint64_t h2 = Mix64(hash);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = NthHash(hash, h2, i) % num_bits_;
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  ++inserted_;
}

void BloomFilter::AddHashes(std::span<const uint64_t> hashes) {
  kernels::BloomAddHashes(bits_.data(), num_bits_, num_hashes_, hashes.data(), hashes.size());
  inserted_ += hashes.size();
}

void BloomFilter::TestHashes(std::span<const uint64_t> hashes, uint8_t* out) const {
  kernels::BloomTestHashes(bits_.data(), num_bits_, num_hashes_, hashes.data(), hashes.size(),
                           out);
}

bool BloomFilter::MightContain(double value) const { return MightContainHash(HashValue(value)); }

bool BloomFilter::MightContainHash(uint64_t hash) const {
  uint64_t h2 = Mix64(hash);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = NthHash(hash, h2, i) % num_bits_;
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

double BloomFilter::FalsePositiveRate() const {
  uint64_t set_bits = 0;
  for (uint64_t word : bits_) {
    set_bits += static_cast<uint64_t>(std::popcount(word));
  }
  double fill = static_cast<double>(set_bits) / num_bits_;
  return std::pow(fill, static_cast<double>(num_hashes_));
}

Status BloomFilter::MergeFrom(const Summary& other) {
  const auto* o = SummaryCast<BloomFilter>(&other);
  if (o == nullptr) {
    return Status::InvalidArgument("BloomFilter: kind mismatch in union");
  }
  if (o->num_bits_ != num_bits_ || o->num_hashes_ != num_hashes_) {
    return Status::InvalidArgument("BloomFilter: config mismatch in union");
  }
  for (size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] |= o->bits_[i];
  }
  inserted_ += o->inserted_;
  return Status::Ok();
}

void BloomFilter::Serialize(Writer& writer) const {
  writer.PutVarint(num_bits_);
  writer.PutVarint(num_hashes_);
  writer.PutVarint(inserted_);
  for (uint64_t word : bits_) {
    writer.PutFixed64(word);
  }
}

StatusOr<std::unique_ptr<Summary>> BloomFilter::Deserialize(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t num_bits, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t num_hashes, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint64_t inserted, reader.ReadVarint());
  if (num_bits == 0 || num_bits % 64 != 0 || num_bits > (uint64_t{1} << 32) ||
      num_bits / 8 > reader.remaining()) {
    return Status::Corruption("BloomFilter: bad bit width");
  }
  auto bloom = std::make_unique<BloomFilter>(static_cast<uint32_t>(num_bits),
                                             static_cast<uint32_t>(num_hashes));
  bloom->inserted_ = inserted;
  for (auto& word : bloom->bits_) {
    SS_ASSIGN_OR_RETURN(word, reader.ReadFixed64());
  }
  return std::unique_ptr<Summary>(std::move(bloom));
}

size_t BloomFilter::SizeBytes() const { return bits_.size() * sizeof(uint64_t) + 16; }

std::unique_ptr<Summary> BloomFilter::Clone() const { return std::make_unique<BloomFilter>(*this); }

}  // namespace ss
