// Fixed-range equi-width histogram. All windows of a stream share the same
// [lo, hi) range and bucket count, so the union is bucket-wise addition.
// Out-of-range values are tracked in dedicated underflow/overflow buckets.
#ifndef SUMMARYSTORE_SRC_SKETCH_HISTOGRAM_H_
#define SUMMARYSTORE_SRC_SKETCH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/sketch/summary.h"

namespace ss {

class Histogram : public Summary {
 public:
  static constexpr SummaryKind kKind = SummaryKind::kHistogram;

  Histogram(double lo, double hi, uint32_t num_buckets);

  SummaryKind kind() const override { return kKind; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  uint32_t num_buckets() const { return static_cast<uint32_t>(buckets_.size()); }
  uint64_t total_count() const { return total_; }
  uint64_t bucket_count(uint32_t b) const { return buckets_[b]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  void Update(Timestamp ts, double value) override;

  // Estimated count of values in [a, b): whole buckets plus linear
  // interpolation within partially covered edge buckets.
  double EstimateRangeCount(double a, double b) const;

  // Approximate q-quantile (q in [0,1]) by walking the cumulative histogram.
  double EstimateQuantile(double q) const;

  Status MergeFrom(const Summary& other) override;
  void Serialize(Writer& writer) const override;
  static StatusOr<std::unique_ptr<Summary>> Deserialize(Reader& reader);
  size_t SizeBytes() const override;
  std::unique_ptr<Summary> Clone() const override;

 private:
  double BucketWidth() const { return (hi_ - lo_) / static_cast<double>(buckets_.size()); }

  double lo_;
  double hi_;
  uint64_t total_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_SKETCH_HISTOGRAM_H_
