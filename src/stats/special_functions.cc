#include "src/stats/special_functions.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace ss {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Lower incomplete gamma by series expansion; converges quickly for x < a+1.
double GammaPSeries(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < kMaxIterations; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma by Lentz continued fraction; converges for x > a+1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < kMaxIterations; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

// Continued-fraction core of the incomplete beta function (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m < kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) {
      break;
    }
  }
  return h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  SS_CHECK(a > 0 && x >= 0) << "RegularizedGammaP domain: a=" << a << " x=" << x;
  if (x == 0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  SS_CHECK(a > 0 && x >= 0) << "RegularizedGammaQ domain: a=" << a << " x=" << x;
  if (x == 0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  SS_CHECK(a > 0 && b > 0 && x >= 0 && x <= 1)
      << "RegularizedIncompleteBeta domain: a=" << a << " b=" << b << " x=" << x;
  if (x == 0.0) {
    return 0.0;
  }
  if (x == 1.0) {
    return 1.0;
  }
  double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) + a * std::log(x) +
                    b * std::log1p(-x);
  double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fastest; the
  // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) covers the other half.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double StdNormalQuantile(double p) {
  SS_CHECK(p > 0.0 && p < 1.0) << "StdNormalQuantile domain: p=" << p;

  // Coefficients for Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

  constexpr double kLow = 0.02425;
  double x;
  if (p < kLow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step drives relative error below 1e-9.
  double e = StdNormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace ss
