#include "src/stats/distributions.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/stats/special_functions.h"

namespace ss {

namespace {

// Generic smallest-k-with-Cdf(k)>=prob search over an integer support, given
// a monotone cdf callable. Binary search keeps every quantile O(log range)
// cdf evaluations.
template <typename CdfFn>
int64_t IntegerQuantile(int64_t lo, int64_t hi, double prob, CdfFn cdf) {
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (cdf(mid) >= prob) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n) {
    return -HUGE_VAL;
  }
  return std::lgamma(static_cast<double>(n) + 1) - std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

}  // namespace

// ---------------------------------------------------------------- NormalDist

NormalDist::NormalDist(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  SS_CHECK(stddev >= 0) << "negative stddev " << stddev;
}

double NormalDist::Pdf(double x) const {
  if (stddev_ == 0) {
    return x == mean_ ? HUGE_VAL : 0.0;
  }
  double z = (x - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * M_PI));
}

double NormalDist::Cdf(double x) const {
  if (stddev_ == 0) {
    return x >= mean_ ? 1.0 : 0.0;
  }
  return StdNormalCdf((x - mean_) / stddev_);
}

double NormalDist::Quantile(double p) const {
  if (stddev_ == 0) {
    return mean_;
  }
  return mean_ + stddev_ * StdNormalQuantile(p);
}

// -------------------------------------------------------------- BinomialDist

BinomialDist::BinomialDist(int64_t n, double p) : n_(n), p_(p) {
  SS_CHECK(n >= 0) << "negative n " << n;
  SS_CHECK(p >= 0.0 && p <= 1.0) << "p out of range " << p;
}

double BinomialDist::Pmf(int64_t k) const {
  if (k < 0 || k > n_) {
    return 0.0;
  }
  if (p_ == 0.0) {
    return k == 0 ? 1.0 : 0.0;
  }
  if (p_ == 1.0) {
    return k == n_ ? 1.0 : 0.0;
  }
  double lp = LogChoose(n_, k) + k * std::log(p_) + (n_ - k) * std::log1p(-p_);
  return std::exp(lp);
}

double BinomialDist::Cdf(int64_t k) const {
  if (k < 0) {
    return 0.0;
  }
  if (k >= n_) {
    return 1.0;
  }
  if (p_ == 0.0) {
    return 1.0;
  }
  if (p_ == 1.0) {
    return 0.0;  // k < n here
  }
  // P(X <= k) = I_{1-p}(n-k, k+1).
  return RegularizedIncompleteBeta(static_cast<double>(n_ - k), static_cast<double>(k) + 1.0,
                                   1.0 - p_);
}

int64_t BinomialDist::Quantile(double prob) const {
  SS_CHECK(prob >= 0.0 && prob <= 1.0) << "prob out of range " << prob;
  if (prob <= 0.0) {
    return 0;
  }
  if (prob >= 1.0) {
    return n_;
  }
  return IntegerQuantile(0, n_, prob, [this](int64_t k) { return Cdf(k); });
}

// --------------------------------------------------------------- PoissonDist

PoissonDist::PoissonDist(double lambda) : lambda_(lambda) {
  SS_CHECK(lambda >= 0) << "negative lambda " << lambda;
}

double PoissonDist::Pmf(int64_t k) const {
  if (k < 0) {
    return 0.0;
  }
  if (lambda_ == 0.0) {
    return k == 0 ? 1.0 : 0.0;
  }
  return std::exp(k * std::log(lambda_) - lambda_ - std::lgamma(static_cast<double>(k) + 1));
}

double PoissonDist::Cdf(int64_t k) const {
  if (k < 0) {
    return 0.0;
  }
  if (lambda_ == 0.0) {
    return 1.0;
  }
  return RegularizedGammaQ(static_cast<double>(k) + 1.0, lambda_);
}

int64_t PoissonDist::Quantile(double prob) const {
  SS_CHECK(prob >= 0.0 && prob <= 1.0) << "prob out of range " << prob;
  if (prob <= 0.0 || lambda_ == 0.0) {
    return 0;
  }
  // Upper bound the support by mean + 12 standard deviations (cdf there is
  // 1 − ~1e-30, far past any usable quantile).
  int64_t hi = static_cast<int64_t>(lambda_ + 12.0 * std::sqrt(lambda_) + 16.0);
  if (prob >= Cdf(hi)) {
    return hi;
  }
  return IntegerQuantile(0, hi, prob, [this](int64_t k) { return Cdf(k); });
}

// ------------------------------------------------------------- HypergeomDist

HypergeomDist::HypergeomDist(int64_t population, int64_t successes, int64_t draws)
    : population_(population), successes_(successes), draws_(draws) {
  SS_CHECK(population >= 0) << "negative population";
  SS_CHECK(successes >= 0 && successes <= population)
      << "successes " << successes << " out of [0," << population << "]";
  SS_CHECK(draws >= 0 && draws <= population)
      << "draws " << draws << " out of [0," << population << "]";
}

int64_t HypergeomDist::SupportMin() const {
  return std::max<int64_t>(0, draws_ + successes_ - population_);
}

int64_t HypergeomDist::SupportMax() const { return std::min(draws_, successes_); }

double HypergeomDist::Mean() const {
  if (population_ == 0) {
    return 0.0;
  }
  return static_cast<double>(draws_) * successes_ / population_;
}

double HypergeomDist::Variance() const {
  if (population_ <= 1) {
    return 0.0;
  }
  double n = static_cast<double>(draws_);
  double big_n = static_cast<double>(population_);
  double big_k = static_cast<double>(successes_);
  return n * (big_k / big_n) * (1.0 - big_k / big_n) * (big_n - n) / (big_n - 1.0);
}

double HypergeomDist::Pmf(int64_t k) const {
  if (k < SupportMin() || k > SupportMax()) {
    return 0.0;
  }
  double lp = LogChoose(successes_, k) + LogChoose(population_ - successes_, draws_ - k) -
              LogChoose(population_, draws_);
  return std::exp(lp);
}

double HypergeomDist::Cdf(int64_t k) const {
  if (k < SupportMin()) {
    return 0.0;
  }
  if (k >= SupportMax()) {
    return 1.0;
  }
  // Support width is at most min(successes, draws)+1; a single value's
  // frequency is small in practice, so direct summation is cheap. Fall back
  // to a normal approximation for enormous supports.
  int64_t lo = SupportMin();
  if (k - lo > 200000) {
    NormalDist approx(Mean(), std::sqrt(Variance()));
    return approx.Cdf(static_cast<double>(k) + 0.5);
  }
  double acc = 0.0;
  for (int64_t i = lo; i <= k; ++i) {
    acc += Pmf(i);
  }
  return std::min(acc, 1.0);
}

int64_t HypergeomDist::Quantile(double prob) const {
  SS_CHECK(prob >= 0.0 && prob <= 1.0) << "prob out of range " << prob;
  int64_t lo = SupportMin();
  int64_t hi = SupportMax();
  if (prob <= 0.0) {
    return lo;
  }
  if (prob >= 1.0) {
    return hi;
  }
  if (hi - lo > 200000) {
    return IntegerQuantile(lo, hi, prob, [this](int64_t k) { return Cdf(k); });
  }
  // Single forward pass: cheaper than repeated Cdf calls on small supports.
  double acc = 0.0;
  for (int64_t k = lo; k <= hi; ++k) {
    acc += Pmf(k);
    if (acc >= prob) {
      return k;
    }
  }
  return hi;
}

}  // namespace ss
