// Boxplot (Tukey fence) outlier test: the statistical test the paper's
// outlier-detection workload runs on each time interval (§7.1.2), and the
// "Three Sigma rule" helper used as the default landmark policy (§4.3).
#ifndef SUMMARYSTORE_SRC_STATS_BOXPLOT_H_
#define SUMMARYSTORE_SRC_STATS_BOXPLOT_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace ss {

struct BoxplotStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double lower_fence = 0.0;
  double upper_fence = 0.0;
  bool has_outlier = false;
};

// Linear-interpolation quantile of *sorted* data, q in [0,1].
inline double SortedQuantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// Runs the standard boxplot test with fences at Q1/Q3 ± k·IQR (k = 1.5 by
// default). Copies and sorts the input.
inline BoxplotStats BoxplotTest(std::span<const double> values, double k = 1.5) {
  BoxplotStats stats;
  if (values.empty()) {
    return stats;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  stats.q1 = SortedQuantile(sorted, 0.25);
  stats.median = SortedQuantile(sorted, 0.50);
  stats.q3 = SortedQuantile(sorted, 0.75);
  double iqr = stats.q3 - stats.q1;
  stats.lower_fence = stats.q1 - k * iqr;
  stats.upper_fence = stats.q3 + k * iqr;
  stats.has_outlier = sorted.front() < stats.lower_fence || sorted.back() > stats.upper_fence;
  return stats;
}

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STATS_BOXPLOT_H_
