// Scalar special functions needed by the distribution layer: regularized
// incomplete gamma/beta functions and the inverse normal CDF. These replace
// Apache Commons Math, which the Java implementation used for "inverting
// Normal and Hypergeometric distributions" (§6 of the paper).
#ifndef SUMMARYSTORE_SRC_STATS_SPECIAL_FUNCTIONS_H_
#define SUMMARYSTORE_SRC_STATS_SPECIAL_FUNCTIONS_H_

namespace ss {

// Regularized lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a).
// Domain: a > 0, x >= 0. P(a, 0) = 0, P(a, ∞) = 1.
double RegularizedGammaP(double a, double x);

// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x).
double RegularizedGammaQ(double a, double x);

// Regularized incomplete beta function I_x(a, b).
// Domain: a > 0, b > 0, 0 <= x <= 1.
double RegularizedIncompleteBeta(double a, double b, double x);

// Standard normal CDF Φ(z).
double StdNormalCdf(double z);

// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1). Acklam's rational
// approximation refined with one Halley step; |relative error| < 1e-9.
double StdNormalQuantile(double p);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STATS_SPECIAL_FUNCTIONS_H_
