// Welford's online algorithm for streaming mean and variance.
//
// SummaryStore tracks exactly four stream-level statistics — mean/stddev of
// interarrival times and mean/stddev of values (§5.2) — so its stream model
// stays O(1) regardless of stream size. Two WelfordAccumulators provide them.
#ifndef SUMMARYSTORE_SRC_STATS_WELFORD_H_
#define SUMMARYSTORE_SRC_STATS_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace ss {

class WelfordAccumulator {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double Mean() const { return mean_; }

  // Population variance (divides by n); the estimators treat the stream
  // prefix as the full modeled population.
  double Variance() const {
    if (count_ < 2) {
      return 0.0;
    }
    return m2_ / static_cast<double>(count_);
  }

  double StdDev() const { return std::sqrt(Variance()); }

  // Merges another accumulator (parallel variance combination).
  void Merge(const WelfordAccumulator& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    int64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double nd = static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / nd;
    mean_ += delta * static_cast<double>(other.count_) / nd;
    count_ = n;
  }

  // Raw state access for persistence.
  double m2() const { return m2_; }
  static WelfordAccumulator FromParts(int64_t count, double mean, double m2) {
    WelfordAccumulator acc;
    acc.count_ = count;
    acc.mean_ = mean;
    acc.m2_ = m2;
    return acc;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STATS_WELFORD_H_
