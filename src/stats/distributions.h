// Probability distributions used by the query-error estimators (§5 and
// Appendix B of the paper): Normal, Binomial, Poisson and Hypergeometric,
// each with pdf/pmf, cdf, and quantile (inverse cdf).
#ifndef SUMMARYSTORE_SRC_STATS_DISTRIBUTIONS_H_
#define SUMMARYSTORE_SRC_STATS_DISTRIBUTIONS_H_

#include <cstdint>

namespace ss {

// Normal(mean, stddev). A zero stddev degenerates to a point mass.
class NormalDist {
 public:
  NormalDist(double mean, double stddev);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double variance() const { return stddev_ * stddev_; }

  double Pdf(double x) const;
  double Cdf(double x) const;
  // p in (0,1); for the degenerate case every quantile is the mean.
  double Quantile(double p) const;

 private:
  double mean_;
  double stddev_;
};

// Binomial(n, p): number of successes in n independent trials.
class BinomialDist {
 public:
  BinomialDist(int64_t n, double p);

  int64_t n() const { return n_; }
  double p() const { return p_; }
  double Mean() const { return static_cast<double>(n_) * p_; }
  double Variance() const { return static_cast<double>(n_) * p_ * (1.0 - p_); }

  double Pmf(int64_t k) const;
  // P(X <= k), exact via the regularized incomplete beta function.
  double Cdf(int64_t k) const;
  // Smallest k with Cdf(k) >= prob.
  int64_t Quantile(double prob) const;

 private:
  int64_t n_;
  double p_;
};

// Poisson(lambda).
class PoissonDist {
 public:
  explicit PoissonDist(double lambda);

  double lambda() const { return lambda_; }
  double Mean() const { return lambda_; }
  double Variance() const { return lambda_; }

  double Pmf(int64_t k) const;
  // P(X <= k) = Q(k+1, lambda), exact via the incomplete gamma function.
  double Cdf(int64_t k) const;
  int64_t Quantile(double prob) const;

 private:
  double lambda_;
};

// Hypergeometric(population, successes, draws): count of "successes" in a
// uniform sample of `draws` elements without replacement from a population
// containing `successes` marked elements. This is the sub-window frequency
// posterior of Theorem B.5.
class HypergeomDist {
 public:
  HypergeomDist(int64_t population, int64_t successes, int64_t draws);

  int64_t population() const { return population_; }
  int64_t successes() const { return successes_; }
  int64_t draws() const { return draws_; }

  int64_t SupportMin() const;
  int64_t SupportMax() const;
  double Mean() const;
  double Variance() const;

  double Pmf(int64_t k) const;
  double Cdf(int64_t k) const;
  int64_t Quantile(double prob) const;

 private:
  int64_t population_;
  int64_t successes_;
  int64_t draws_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_STATS_DISTRIBUTIONS_H_
