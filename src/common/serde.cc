#include "src/common/serde.h"

#include <array>

namespace ss {

namespace {

// Builds the CRC32-C lookup table at static-init time.
std::array<uint32_t, 256> BuildCrc32cTable() {
  constexpr uint32_t kPoly = 0x82f63b78;  // reversed Castagnoli polynomial
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = BuildCrc32cTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  const auto& table = Crc32cTable();
  uint32_t crc = 0xffffffff;
  for (char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

}  // namespace ss
