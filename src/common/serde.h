// Binary serialization framework (ProtoBuf stand-in): a byte-buffer Writer
// with varint / zigzag / fixed-width primitives and a bounds-checked Reader.
// Every persistent object in SummaryStore (summary operators, windows, SSTable
// blocks) round-trips through these. CRC32 (Castagnoli polynomial, software
// table) provides block integrity checks in the storage engine.
#ifndef SUMMARYSTORE_SRC_COMMON_SERDE_H_
#define SUMMARYSTORE_SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ss {

// Maps signed integers to unsigned so that small magnitudes encode small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Appends serialized primitives to an owned byte buffer.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutFixed32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutFixed64(uint64_t v) { PutRaw(&v, sizeof(v)); }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  void PutSignedVarint(int64_t v) { PutVarint(ZigZagEncode(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(bits);
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Consumes serialized primitives from a borrowed byte span; every accessor
// is bounds-checked and reports kCorruption on truncated input.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> ReadU8() {
    if (pos_ + 1 > data_.size()) {
      return Truncated("u8");
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  StatusOr<uint32_t> ReadFixed32() {
    if (pos_ + 4 > data_.size()) {
      return Truncated("fixed32");
    }
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> ReadFixed64() {
    if (pos_ + 8 > data_.size()) {
      return Truncated("fixed64");
    }
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  StatusOr<uint64_t> ReadVarint() {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (pos_ >= data_.size()) {
        return Truncated("varint");
      }
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      // The 10th byte holds only bit 63: any higher payload bit encodes a
      // value >= 2^64, which must fail rather than silently truncate.
      if (shift == 63 && (byte & 0x7f) > 1) {
        return Status::Corruption("varint overflows uint64");
      }
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return result;
      }
    }
    return Status::Corruption("varint too long");
  }

  StatusOr<int64_t> ReadSignedVarint() {
    SS_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
    return ZigZagDecode(raw);
  }

  StatusOr<double> ReadDouble() {
    SS_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  StatusOr<std::string_view> ReadString() {
    SS_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    // Compare against remaining() — `pos_ + n` wraps for attacker-controlled
    // lengths near UINT64_MAX, passing the bounds check with a corrupted pos_.
    if (n > remaining()) {
      return Truncated("string body");
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  StatusOr<std::string_view> ReadRaw(size_t n) {
    if (n > remaining()) {  // overflow-safe: never compute pos_ + n
      return Truncated("raw bytes");
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// CRC32-C (Castagnoli) over a byte string; table-driven software version.
uint32_t Crc32c(std::string_view data);

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_COMMON_SERDE_H_
