// Lightweight Status / StatusOr error handling, modeled on absl::Status.
// SummaryStore APIs do not throw across library boundaries; fallible
// operations return Status (or StatusOr<T> when they produce a value).
#ifndef SUMMARYSTORE_SRC_COMMON_STATUS_H_
#define SUMMARYSTORE_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ss {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kIoError = 7,
  kCorruption = 8,
  kUnimplemented = 9,
  kPermissionDenied = 10,
  kResourceExhausted = 11,
  kDeadlineExceeded = 12,
};

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeToString(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Holds either a value of type T or an error Status. Never holds both.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ss

// Propagates a non-OK Status from an expression to the caller.
#define SS_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::ss::Status ss_status_ = (expr);     \
    if (!ss_status_.ok()) {               \
      return ss_status_;                  \
    }                                     \
  } while (false)

// Evaluates a StatusOr expression; on success assigns the value to lhs,
// otherwise returns the error to the caller.
#define SS_ASSIGN_OR_RETURN(lhs, expr)              \
  SS_ASSIGN_OR_RETURN_IMPL_(                        \
      SS_STATUS_CONCAT_(ss_statusor_, __LINE__), lhs, expr)

#define SS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

#define SS_STATUS_CONCAT_(a, b) SS_STATUS_CONCAT_IMPL_(a, b)
#define SS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SUMMARYSTORE_SRC_COMMON_STATUS_H_
