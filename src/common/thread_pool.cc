#include "src/common/thread_pool.h"

#include <algorithm>

namespace ss {

ThreadPool::ThreadPool(size_t num_threads, Observer observer)
    : observer_(std::move(observer)) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Drain(); }

void ThreadPool::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 2, 8);
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(Task{std::move(fn), Stopwatch()});
      cv_.notify_one();
      return;
    }
    // stop_ is set: a worker may already have observed an empty queue and
    // exited, so a task pushed now could sit in the queue forever and break
    // its promise. Fall through and run it on the submitting thread instead
    // — every future handed out by Submit is still satisfied.
  }
  fn();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (observer_ != nullptr) {
      observer_(static_cast<uint64_t>(task.queued.ElapsedMicros()), depth);
    }
    task.fn();
  }
}

}  // namespace ss
