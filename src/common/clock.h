// Time representation and measurement helpers.
//
// SummaryStore timestamps are int64 event-time values in *stream time units*
// (the ingest pipeline is agnostic to whether a unit is a second or a
// microsecond; workload generators document their unit). Wall-clock helpers
// are used only by benchmarks and by Append() when the caller omits a
// timestamp.
#ifndef SUMMARYSTORE_SRC_COMMON_CLOCK_H_
#define SUMMARYSTORE_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ss {

using Timestamp = int64_t;

inline constexpr Timestamp kMinTimestamp = INT64_MIN;
inline constexpr Timestamp kMaxTimestamp = INT64_MAX;

// Wall-clock time in microseconds since the Unix epoch.
inline Timestamp NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Monotonic stopwatch for latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_COMMON_CLOCK_H_
