// Fixed-size worker pool for CPU-bound fan-out (fleet queries, parallel
// benchmarks). Tasks are queued FIFO; Submit returns a std::future for the
// task's result. The pool is deliberately dependency-free (ss_common sits
// below ss_obs): callers that want queue telemetry install an Observer,
// which SummaryStore wires to the metrics registry.
//
// Shutdown drains the queue: the destructor stops accepting new work, runs
// everything already queued, then joins — so futures handed out before
// destruction never throw broken_promise. A Submit that races shutdown (e.g.
// a running task submitting a follow-up while the destructor has already set
// stop_) runs the task inline on the submitting thread rather than leaving
// it stranded in a queue no worker will drain.
#ifndef SUMMARYSTORE_SRC_COMMON_THREAD_POOL_H_
#define SUMMARYSTORE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace ss {

class ThreadPool {
 public:
  // Called by a worker as it dequeues a task: time the task spent queued and
  // the queue depth left behind. Runs on worker threads; must be thread-safe.
  using Observer = std::function<void(uint64_t queue_wait_us, size_t queue_depth)>;

  explicit ThreadPool(size_t num_threads, Observer observer = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues fn and returns a future for its result. Safe to call from any
  // thread, including pool workers (tasks never block on sibling tasks here,
  // so submit-from-worker cannot deadlock the queue).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Stops accepting queued execution, runs everything already in the queue,
  // and joins the workers — but leaves the pool object alive, so concurrent
  // or later Submits safely run inline on the submitting thread (the same
  // fallback the destructor-race path uses). Idempotent. Lets an owner shut
  // the pool down while other threads still hold the pointer, then destroy
  // it once those threads are joined.
  void Drain();

  size_t thread_count() const { return workers_.size(); }
  size_t QueueDepth() const;

  // Pool size heuristic for query fan-out: enough to cover one NUMA node's
  // worth of parallel per-stream scans without oversubscribing small hosts.
  static size_t DefaultThreadCount();

 private:
  struct Task {
    std::function<void()> fn;
    Stopwatch queued;  // started at enqueue; read by the dequeuing worker
  };

  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  Observer observer_;
  std::vector<std::thread> workers_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_COMMON_THREAD_POOL_H_
