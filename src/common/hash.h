// 64-bit hashing utilities: an xxHash64-style string hash and cheap integer
// mixers. Used by the sketch library (Bloom / CMS / HLL) and the storage
// engine (block checksums use CRC32 in serde.h instead).
#ifndef SUMMARYSTORE_SRC_COMMON_HASH_H_
#define SUMMARYSTORE_SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ss {

// SplitMix64 finalizer; a strong, fast 64-bit mixer (Stafford variant 13).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

namespace hash_internal {

inline constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
inline constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
inline constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;
inline constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
inline constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace hash_internal

// xxHash64 over an arbitrary byte string.
inline uint64_t Hash64(std::string_view data, uint64_t seed = 0) {
  using namespace hash_internal;  // NOLINT
  const char* p = data.data();
  const char* end = p + data.size();
  uint64_t h;

  if (data.size() >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const char* limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline uint64_t Hash64(uint64_t value, uint64_t seed = 0) {
  return Mix64(value + seed * hash_internal::kPrime1 + hash_internal::kPrime5);
}

inline uint64_t Hash64(int64_t value, uint64_t seed = 0) {
  return Hash64(static_cast<uint64_t>(value), seed);
}

// Double-hashing scheme: derive the i-th of k hash values from two base
// hashes (Kirsch & Mitzenmacher). All multi-hash sketches use this.
inline uint64_t NthHash(uint64_t h1, uint64_t h2, uint64_t i) {
  return h1 + i * h2 + i * i;
}

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_COMMON_HASH_H_
