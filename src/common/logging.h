// Minimal leveled logging to stderr, plus CHECK macros for invariants whose
// violation indicates a programming error (not a recoverable condition —
// those return Status).
#ifndef SUMMARYSTORE_SRC_COMMON_LOGGING_H_
#define SUMMARYSTORE_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace ss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Process-wide minimum level; messages below it are dropped. Initialized from
// the SS_LOG_LEVEL environment variable (a level name or digit 0-4) on first
// use; defaults to kInfo.
LogLevel& MinLogLevel();

namespace log_internal {

// Writes one fully-assembled message to stderr with a single write(2), so
// concurrent log lines never interleave mid-line.
void EmitLogLine(const std::string& line);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      EmitLogLine(stream_.str());
    }
    if (level_ == LogLevel::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
      case LogLevel::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace ss

#define SS_LOG(level) \
  ::ss::log_internal::LogMessage(::ss::LogLevel::k##level, __FILE__, __LINE__).stream()

#define SS_CHECK(cond)                                                          \
  if (!(cond))                                                                  \
  ::ss::log_internal::LogMessage(::ss::LogLevel::kFatal, __FILE__, __LINE__)    \
      .stream()                                                                 \
      << "Check failed: " #cond " "

#define SS_DCHECK(cond) SS_CHECK(cond)

#endif  // SUMMARYSTORE_SRC_COMMON_LOGGING_H_
