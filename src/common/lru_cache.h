// Generic byte-budgeted LRU cache. Used as the storage engine's block cache
// and as SummaryStore's window cache. Not thread-safe by itself; LsmStore
// guards it with its own mutex.
#ifndef SUMMARYSTORE_SRC_COMMON_LRU_CACHE_H_
#define SUMMARYSTORE_SRC_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace ss {

template <typename K, typename V>
class LruCache {
 public:
  // `capacity_bytes` bounds the sum of per-entry charges. A zero capacity
  // disables caching entirely.
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Inserts or replaces the entry, charging `charge` bytes against the
  // budget, and evicts least-recently-used entries to fit.
  void Put(const K& key, V value, size_t charge) {
    if (capacity_ == 0) {
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      used_ -= it->second->charge;
      entries_.erase(it->second);
      index_.erase(it);
    }
    entries_.push_front(Entry{key, std::move(value), charge});
    index_[key] = entries_.begin();
    used_ += charge;
    EvictToFit();
  }

  // Returns a copy of the cached value and marks it most recently used.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().value;
  }

  void Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return;
    }
    used_ -= it->second->charge;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    used_ = 0;
  }

  size_t size_bytes() const { return used_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    K key;
    V value;
    size_t charge;
  };

  void EvictToFit() {
    while (used_ > capacity_ && !entries_.empty()) {
      const Entry& victim = entries_.back();
      used_ -= victim.charge;
      index_.erase(victim.key);
      entries_.pop_back();
    }
  }

  size_t capacity_;
  size_t used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Entry> entries_;
  std::unordered_map<K, typename std::list<Entry>::iterator> index_;
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_COMMON_LRU_CACHE_H_
