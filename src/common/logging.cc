#include "src/common/logging.h"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ss {
namespace {

// Reads SS_LOG_LEVEL once at first use. Accepts level names (case-insensitive,
// "warn" and "warning" both work) or the numeric enum values 0-4; anything
// unrecognized falls back to the kInfo default.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("SS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return LogLevel::kInfo;
  }
  std::string name(env);
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (name == "debug" || name == "0") return LogLevel::kDebug;
  if (name == "info" || name == "1") return LogLevel::kInfo;
  if (name == "warn" || name == "warning" || name == "2") return LogLevel::kWarning;
  if (name == "error" || name == "3") return LogLevel::kError;
  if (name == "fatal" || name == "4") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = InitialLogLevel();
  return level;
}

namespace log_internal {

void EmitLogLine(const std::string& line) {
  // One write(2) per message so lines from concurrent threads (or a parent
  // and child sharing stderr) never interleave mid-line.
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // stderr is gone; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace log_internal
}  // namespace ss
