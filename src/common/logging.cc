#include "src/common/logging.h"

namespace ss {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace ss
