// Deterministic network fault injection for src/net — the socket-layer
// analogue of storage's FaultFs (src/storage/fault_fs.h). Install with
// SetNetOpsForTest(&fault_net); every client-side socket syscall then routes
// through the schedule.
//
// FaultNet understands the wire framing (u32-LE length prefix, protocol.h):
// it parses both directions of every connection it sees, so faults are
// expressible as "after the Nth complete frame (+k bytes)" — deterministic
// regardless of how request ids or retry counts vary across runs. Frames are
// counted GLOBALLY, across connections, in the order they hit the wire (a
// sequential workload makes that order deterministic); the fd that crosses
// the boundary is the one that gets severed. That is what lets
// net_fault_test sever a mixed append/query workload at every frame boundary
// of its lifetime — including frames on late connections — the way PR 3's
// crash matrix kills the store at every mutating-syscall boundary.
//
// Fault kinds:
//   - SeverAfterSentFrames(n, extra):  allow exactly n complete request
//     frames (+`extra` bytes of the next) onto the wire, then shut the
//     socket down and fail further I/O with ECONNRESET.
//   - SeverAfterRecvFrames(n, extra):  deliver exactly n complete response
//     frames (+`extra` bytes) to the client, then reset. The server may have
//     applied the request whose ack was lost — the replay-dedup scenario.
//   - BlackHoleAfterSentFrames(n):     after n sent frames the peer goes
//     silent: sends still succeed, but reads see no bytes and polls time
//     out, so only a client deadline can get control back.
//   - SetMaxSendBytes(k):              short writes — every send transfers
//     at most k bytes (stresses partial-write handling everywhere).
//   - SetDelayMs(ms):                  fixed latency before each send/recv.
//   - FailNextConnects(n):             next n connect attempts fail with
//     ECONNREFUSED (backoff/retry coverage).
//
// Sever and black-hole schedules are one-shot: they arm, trip on the first
// connection that reaches the boundary (the fd stays dead/silent until
// closed), and clear — so the client's automatic reconnect runs clean.
// Frame parsing and the sent/received counters are always on, which is how
// the matrix learns the workload's frame count from a passthrough run.
//
// Thread-safe (one mutex, FaultFs-style). Only fds connected through
// ConnectTcp[Timeout] are tracked; server-side fds pass through untouched.
#ifndef SUMMARYSTORE_SRC_NET_FAULT_NET_H_
#define SUMMARYSTORE_SRC_NET_FAULT_NET_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "src/net/socket.h"

namespace ss::net {

// arg1 of the kNetFaultInjected flight event.
enum class NetFaultKind : uint8_t {
  kSeverSend = 0,
  kSeverRecv = 1,
  kBlackHole = 2,
  kRefusedConnect = 3,
};

class FaultNet : public NetOps {
 public:
  FaultNet() = default;

  // --- schedule (arm before the client connects) ---------------------------
  void SeverAfterSentFrames(uint64_t frames, uint64_t extra_bytes = 0);
  void SeverAfterRecvFrames(uint64_t frames, uint64_t extra_bytes = 0);
  void BlackHoleAfterSentFrames(uint64_t frames);
  void SetMaxSendBytes(size_t bytes);  // 0 = unlimited
  void SetDelayMs(uint64_t ms);        // 0 = no delay
  void FailNextConnects(uint64_t n);
  // Clears the schedule, all per-fd state, and the counters.
  void Reset();

  // --- introspection -------------------------------------------------------
  uint64_t frames_sent() const;     // complete request frames across all fds
  uint64_t frames_received() const; // complete response frames across all fds
  uint64_t injected_resets() const;
  uint64_t refused_connects() const;
  uint64_t blackholed_fds() const;
  bool armed() const;  // a sever/black-hole schedule is set and not tripped

  // --- NetOps --------------------------------------------------------------
  int Connect(int fd, const struct sockaddr* addr, unsigned int addrlen) override;
  long Send(int fd, const void* buf, size_t len) override;
  long Recv(int fd, void* buf, size_t len) override;
  int PollOne(int fd, short events, int timeout_ms) override;
  int Close(int fd) override;

 private:
  // Incremental u32-length-prefix stream parser for one direction of one fd.
  struct FrameParser {
    uint64_t frames_done = 0;
    size_t header_have = 0;
    unsigned char header[4] = {0, 0, 0, 0};
    uint64_t body_len = 0;
    uint64_t body_remaining = 0;
    bool in_body = false;

    void Feed(const char* data, size_t n);
    // Bytes that may pass before the stream would cross the cutoff "after
    // `frames` complete frames + `extra` bytes". 0 = already at the cutoff.
    uint64_t BytesUntilCutoff(uint64_t frames, uint64_t extra) const;
  };

  struct FdState {
    FrameParser send;
    FrameParser recv;
    bool severed = false;     // all I/O fails ECONNRESET
    bool blackholed = false;  // reads silent, polls time out; sends pass
  };

  enum class Mode { kNone, kSeverSend, kSeverRecv, kBlackHole };

  // Trips the armed schedule on `fd` (mutex held): marks the fd, records the
  // flight event, bumps counters, clears the schedule.
  void TripLocked(int fd, FdState& state);

  mutable std::mutex mu_;
  std::map<int, FdState> fds_;

  Mode mode_ = Mode::kNone;
  uint64_t target_frames_ = 0;
  uint64_t target_extra_ = 0;

  size_t max_send_bytes_ = 0;
  uint64_t delay_ms_ = 0;
  uint64_t fail_connects_ = 0;

  uint64_t total_frames_sent_ = 0;
  uint64_t total_frames_received_ = 0;
  uint64_t injected_resets_ = 0;
  uint64_t refused_connects_count_ = 0;
  uint64_t blackholed_count_ = 0;
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_FAULT_NET_H_
