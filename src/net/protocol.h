// Wire protocol for sserver (DESIGN.md §12): length-prefixed binary frames
// whose payloads are encoded with the ss_common serde Writer/Reader.
//
//   frame    := u32-LE payload_length | payload          (length excludes the prefix)
//   request  := varint request_id | u8 opcode | body
//   response := varint request_id | u8 status_code | string message | body
//
// request_id is chosen by the client and echoed verbatim, so clients may
// pipeline many requests per connection and match responses by id (the
// server may complete them out of order). Every decoder here treats its
// input as hostile: lengths are checked against what is actually present
// (never trusted for allocation), enums are range-checked, and any
// malformed byte yields kCorruption — the server then fails the connection
// closed instead of crashing.
#ifndef SUMMARYSTORE_SRC_NET_PROTOCOL_H_
#define SUMMARYSTORE_SRC_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/core/query.h"
#include "src/core/stream.h"

namespace ss::net {

// Hard ceiling on one frame's payload; a length field above this is treated
// as protocol corruption and fails the connection (16 MiB comfortably holds
// the largest sanctioned request, a ~64k-event append batch).
inline constexpr size_t kMaxFrameBytes = 16u << 20;

enum class Opcode : uint8_t {
  kPing = 0,
  kCreateStream = 1,    // body: varint id (0 = auto) | StreamConfig       -> varint id
  kDeleteStream = 2,    // body: varint id                                 -> (empty)
  kListStreams = 3,     // body: (empty)                                   -> varint n | n×varint id
  kAppend = 4,          // body: varint id | svarint ts | double value     -> (empty)
  kAppendBatch = 5,     // body: varint id | varint n | n×(svarint,double) -> (empty)
  kQuery = 6,           // body: varint id | QuerySpec                     -> WireQueryResult
  kQueryAggregate = 7,  // body: varint n | n×varint id | QuerySpec        -> WireQueryResult
  kBeginLandmark = 8,   // body: varint id | svarint ts                    -> (empty)
  kEndLandmark = 9,     // body: varint id | svarint ts                    -> (empty)
  kFlush = 10,          // body: (empty)                                   -> (empty)
  kScrub = 11,          // body: u8 repair                                 -> ScrubReport
  kStats = 12,          // body: u8 format (0 json, 1 prom)                -> string
  kStreamInfo = 13,     // body: varint id (0 = all)                       -> varint n | n×StreamInfo
  kHello = 14,          // body: varint tenant_id | string token           -> (empty)
  kMaxOpcode = kHello,
};

// The opcode byte's top two bits are header-extension flags (the opcode
// itself occupies the low 6 bits; every legal opcode is <= kMaxOpcode = 14,
// so legacy frames carry zero flags and are bit-for-bit unchanged):
//
//   0x80 kHeaderFlagDeadline — varint deadline_ms follows the opcode byte.
//        The request's total time budget as seen by the client; the server
//        rejects the request with kDeadlineExceeded if it expired while
//        queued. 0 means "already expired" (a deterministic test hook).
//   0x40 kHeaderFlagSession  — varint session_id | varint seq follow (after
//        deadline_ms when both flags are set). Identifies an idempotent
//        ingest replay scope: the server remembers the highest applied seq
//        per (tenant, session) and suppresses re-application of replayed
//        appends after a reconnect. Both values must be non-zero.
//
// Extension fields sit BETWEEN the header and the body (not at payload end)
// because several bodies already use trailing-extension fields of their own.
inline constexpr uint8_t kHeaderFlagDeadline = 0x80;
inline constexpr uint8_t kHeaderFlagSession = 0x40;
inline constexpr uint8_t kHeaderOpcodeMask = 0x3F;
// Ceiling on a wire deadline: anything above 1 hour is clamped (a hostile
// huge varint must not overflow steady-clock arithmetic server-side).
inline constexpr uint64_t kMaxDeadlineMs = 3'600'000;

// Human-readable opcode label (metric label values; fuzz-test diagnostics).
const char* OpcodeName(Opcode op);

// --------------------------------------------------------------- framing
// Appends one frame (length prefix + payload) to `out`. Fails if the
// payload exceeds kMaxFrameBytes.
Status AppendFrame(std::string_view payload, std::string* out);

// Scans a receive buffer for one complete frame.
struct FrameScan {
  bool complete = false;        // false: need more bytes (frame_end = total needed so far)
  size_t frame_end = 0;         // bytes consumed by this frame once complete
  std::string_view payload;     // valid only when complete
};
// kCorruption on a length field of 0 or > max_frame_bytes; such a
// connection cannot be resynchronized and must be closed.
StatusOr<FrameScan> ScanFrame(std::string_view buf, size_t max_frame_bytes = kMaxFrameBytes);

// ------------------------------------------------------------ body codecs
struct RequestHeader {
  uint64_t request_id = 0;
  Opcode op = Opcode::kPing;
  // Header extensions (see the flag-bit scheme above). Legacy frames decode
  // with both absent.
  bool has_deadline = false;
  uint64_t deadline_ms = 0;  // meaningful only when has_deadline
  bool has_session = false;
  uint64_t session_id = 0;  // non-zero when has_session
  uint64_t seq = 0;         // non-zero when has_session
};
void EncodeRequestHeader(const RequestHeader& header, Writer& writer);
StatusOr<RequestHeader> DecodeRequestHeader(Reader& reader);

void EncodeQuerySpec(const QuerySpec& spec, Writer& writer);
StatusOr<QuerySpec> DecodeQuerySpec(Reader& reader);

// QueryResult plus the server-rendered trace text (remote `--explain`).
struct WireQueryResult {
  QueryResult result;
  std::string trace_text;
};
void EncodeQueryResult(const QueryResult& result, std::string_view trace_text, Writer& writer);
StatusOr<WireQueryResult> DecodeQueryResult(Reader& reader);

void EncodeScrubReport(const ScrubReport& report, Writer& writer);
StatusOr<ScrubReport> DecodeScrubReport(Reader& reader);

// Per-stream row of `sstool info`, as served by kStreamInfo.
struct StreamInfo {
  StreamId id = 0;
  uint64_t element_count = 0;
  uint64_t landmark_element_count = 0;
  uint64_t window_count = 0;
  uint64_t landmark_window_count = 0;
  uint64_t size_bytes = 0;
  std::string decay;  // DecayFunction::Describe()
};
void EncodeStreamInfo(const StreamInfo& info, Writer& writer);
StatusOr<StreamInfo> DecodeStreamInfo(Reader& reader);

// Response status: u8 code | string message. (Out-param rather than
// StatusOr<Status>: the decoded status is a value here, not an error.)
void EncodeStatus(const Status& status, Writer& writer);
Status DecodeStatus(Reader& reader, Status* out);

// Decoded events of a kAppendBatch body (count field is cross-checked
// against the bytes actually present, never used to size an allocation).
StatusOr<std::vector<Event>> DecodeEventBatch(Reader& reader);
void EncodeEventBatch(std::span<const Event> events, Writer& writer);

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_PROTOCOL_H_
