#include "src/net/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ss::net {
namespace {

// Smallest possible wire size of one event: 1-byte ts varint + 8-byte double.
constexpr size_t kMinEventBytes = 9;

Status CheckFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    return Status::Corruption(std::string("non-finite ") + what + " in query spec");
  }
  return Status::Ok();
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kCreateStream:
      return "create_stream";
    case Opcode::kDeleteStream:
      return "delete_stream";
    case Opcode::kListStreams:
      return "list_streams";
    case Opcode::kAppend:
      return "append";
    case Opcode::kAppendBatch:
      return "append_batch";
    case Opcode::kQuery:
      return "query";
    case Opcode::kQueryAggregate:
      return "query_aggregate";
    case Opcode::kBeginLandmark:
      return "begin_landmark";
    case Opcode::kEndLandmark:
      return "end_landmark";
    case Opcode::kFlush:
      return "flush";
    case Opcode::kScrub:
      return "scrub";
    case Opcode::kStats:
      return "stats";
    case Opcode::kStreamInfo:
      return "stream_info";
    case Opcode::kHello:
      return "hello";
  }
  return "unknown";
}

Status AppendFrame(std::string_view payload, std::string* out) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload size out of range: " +
                                   std::to_string(payload.size()));
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));
  out->append(prefix, sizeof(prefix));
  out->append(payload.data(), payload.size());
  return Status::Ok();
}

StatusOr<FrameScan> ScanFrame(std::string_view buf, size_t max_frame_bytes) {
  FrameScan scan;
  if (buf.size() < 4) {
    scan.frame_end = 4;
    return scan;
  }
  uint32_t len;
  std::memcpy(&len, buf.data(), sizeof(len));
  if (len == 0 || len > max_frame_bytes) {
    return Status::Corruption("frame length out of range: " + std::to_string(len));
  }
  if (buf.size() < 4 + static_cast<size_t>(len)) {
    scan.frame_end = 4 + static_cast<size_t>(len);
    return scan;
  }
  scan.complete = true;
  scan.frame_end = 4 + static_cast<size_t>(len);
  scan.payload = buf.substr(4, len);
  return scan;
}

void EncodeRequestHeader(const RequestHeader& header, Writer& writer) {
  writer.PutVarint(header.request_id);
  uint8_t op_byte = static_cast<uint8_t>(header.op);
  if (header.has_deadline) {
    op_byte |= kHeaderFlagDeadline;
  }
  if (header.has_session) {
    op_byte |= kHeaderFlagSession;
  }
  writer.PutU8(op_byte);
  if (header.has_deadline) {
    writer.PutVarint(header.deadline_ms);
  }
  if (header.has_session) {
    writer.PutVarint(header.session_id);
    writer.PutVarint(header.seq);
  }
}

StatusOr<RequestHeader> DecodeRequestHeader(Reader& reader) {
  RequestHeader header;
  SS_ASSIGN_OR_RETURN(header.request_id, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  const uint8_t op = op_byte & kHeaderOpcodeMask;
  if (op > static_cast<uint8_t>(Opcode::kMaxOpcode)) {
    // Covers legacy hostile bytes too: 15..63 have no flag bits set and fall
    // through to here exactly as before the flag scheme existed.
    return Status::Corruption("unknown opcode: " + std::to_string(op));
  }
  header.op = static_cast<Opcode>(op);
  if ((op_byte & kHeaderFlagDeadline) != 0) {
    header.has_deadline = true;
    SS_ASSIGN_OR_RETURN(header.deadline_ms, reader.ReadVarint());
    // Clamp rather than reject: a cooperating client never sends more than
    // kMaxDeadlineMs, and clamping keeps steady-clock math overflow-free.
    header.deadline_ms = std::min(header.deadline_ms, kMaxDeadlineMs);
  }
  if ((op_byte & kHeaderFlagSession) != 0) {
    header.has_session = true;
    SS_ASSIGN_OR_RETURN(header.session_id, reader.ReadVarint());
    SS_ASSIGN_OR_RETURN(header.seq, reader.ReadVarint());
    if (header.session_id == 0 || header.seq == 0) {
      return Status::Corruption("session id / seq must be non-zero");
    }
  }
  return header;
}

void EncodeQuerySpec(const QuerySpec& spec, Writer& writer) {
  writer.PutSignedVarint(spec.t1);
  writer.PutSignedVarint(spec.t2);
  writer.PutU8(static_cast<uint8_t>(spec.op));
  writer.PutDouble(spec.value);
  writer.PutDouble(spec.quantile_q);
  writer.PutDouble(spec.value_lo);
  writer.PutDouble(spec.value_hi);
  writer.PutDouble(spec.confidence);
  writer.PutU8(spec.collect_trace ? 1 : 0);
  // Trailing extension (spec is always the last element of its request
  // payload): old decoders ignore it, new decoders read it if present.
  writer.PutVarint(spec.top_k);
}

StatusOr<QuerySpec> DecodeQuerySpec(Reader& reader) {
  QuerySpec spec;
  SS_ASSIGN_OR_RETURN(spec.t1, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(spec.t2, reader.ReadSignedVarint());
  SS_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
  if (op > static_cast<uint8_t>(QueryOp::kTopK)) {
    return Status::Corruption("unknown query op: " + std::to_string(op));
  }
  spec.op = static_cast<QueryOp>(op);
  SS_ASSIGN_OR_RETURN(spec.value, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(spec.quantile_q, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(spec.value_lo, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(spec.value_hi, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(spec.confidence, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(uint8_t trace, reader.ReadU8());
  spec.collect_trace = trace != 0;
  if (reader.remaining() > 0) {  // trailing field; absent in legacy frames
    SS_ASSIGN_OR_RETURN(uint64_t top_k, reader.ReadVarint());
    if (top_k == 0 || top_k > (1u << 20)) {
      return Status::Corruption("top_k out of range: " + std::to_string(top_k));
    }
    spec.top_k = static_cast<uint32_t>(top_k);
  }
  // The estimator layer assumes sane parameters; NaN/Inf from a hostile
  // frame must not reach it.
  SS_RETURN_IF_ERROR(CheckFinite(spec.quantile_q, "quantile"));
  SS_RETURN_IF_ERROR(CheckFinite(spec.confidence, "confidence"));
  if (spec.confidence <= 0.0 || spec.confidence >= 1.0) {
    return Status::Corruption("confidence outside (0, 1)");
  }
  return spec;
}

void EncodeQueryResult(const QueryResult& result, std::string_view trace_text, Writer& writer) {
  writer.PutDouble(result.estimate);
  writer.PutU8(result.bool_answer ? 1 : 0);
  writer.PutDouble(result.ci_lo);
  writer.PutDouble(result.ci_hi);
  writer.PutDouble(result.confidence);
  writer.PutU8(result.exact ? 1 : 0);
  writer.PutU8(result.degraded ? 1 : 0);
  writer.PutVarint(result.windows_read);
  writer.PutVarint(result.landmark_events);
  writer.PutVarint(result.skipped_spans.size());
  for (const auto& [a, b] : result.skipped_spans) {
    writer.PutSignedVarint(a);
    writer.PutSignedVarint(b);
  }
  writer.PutString(trace_text);
  // Trailing extension (the result is the whole response payload): top-k
  // entries, absent-tolerated by old decoders and on legacy frames.
  writer.PutVarint(result.topk.size());
  for (const TopKEntry& entry : result.topk) {
    writer.PutDouble(entry.value);
    writer.PutDouble(entry.estimate);
    writer.PutDouble(entry.ci_lo);
    writer.PutDouble(entry.ci_hi);
  }
}

StatusOr<WireQueryResult> DecodeQueryResult(Reader& reader) {
  WireQueryResult out;
  QueryResult& r = out.result;
  SS_ASSIGN_OR_RETURN(r.estimate, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(uint8_t bool_answer, reader.ReadU8());
  r.bool_answer = bool_answer != 0;
  SS_ASSIGN_OR_RETURN(r.ci_lo, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(r.ci_hi, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(r.confidence, reader.ReadDouble());
  SS_ASSIGN_OR_RETURN(uint8_t exact, reader.ReadU8());
  r.exact = exact != 0;
  SS_ASSIGN_OR_RETURN(uint8_t degraded, reader.ReadU8());
  r.degraded = degraded != 0;
  SS_ASSIGN_OR_RETURN(uint64_t windows_read, reader.ReadVarint());
  r.windows_read = static_cast<size_t>(windows_read);
  SS_ASSIGN_OR_RETURN(uint64_t landmark_events, reader.ReadVarint());
  r.landmark_events = static_cast<size_t>(landmark_events);
  SS_ASSIGN_OR_RETURN(uint64_t n_spans, reader.ReadVarint());
  // Two 1-byte svarints minimum per span: cross-check before the loop so a
  // hostile count cannot drive a long bounded-only-by-overflow loop.
  if (n_spans > reader.remaining() / 2) {
    return Status::Corruption("skipped-span count exceeds payload");
  }
  for (uint64_t i = 0; i < n_spans; ++i) {
    SS_ASSIGN_OR_RETURN(int64_t a, reader.ReadSignedVarint());
    SS_ASSIGN_OR_RETURN(int64_t b, reader.ReadSignedVarint());
    r.skipped_spans.emplace_back(a, b);
  }
  SS_ASSIGN_OR_RETURN(std::string_view trace, reader.ReadString());
  out.trace_text.assign(trace);
  if (reader.remaining() > 0) {  // trailing field; absent in legacy frames
    SS_ASSIGN_OR_RETURN(uint64_t n_topk, reader.ReadVarint());
    // Four 8-byte doubles per entry: cross-check before the loop so a
    // hostile count cannot drive a huge reserve or a long loop.
    if (n_topk > reader.remaining() / 32) {
      return Status::Corruption("top-k entry count exceeds payload");
    }
    r.topk.reserve(static_cast<size_t>(n_topk));
    for (uint64_t i = 0; i < n_topk; ++i) {
      TopKEntry entry;
      SS_ASSIGN_OR_RETURN(entry.value, reader.ReadDouble());
      SS_ASSIGN_OR_RETURN(entry.estimate, reader.ReadDouble());
      SS_ASSIGN_OR_RETURN(entry.ci_lo, reader.ReadDouble());
      SS_ASSIGN_OR_RETURN(entry.ci_hi, reader.ReadDouble());
      r.topk.push_back(entry);
    }
  }
  return out;
}

void EncodeScrubReport(const ScrubReport& report, Writer& writer) {
  writer.PutVarint(report.windows_checked);
  writer.PutVarint(report.landmarks_checked);
  writer.PutVarint(report.errors);
  writer.PutVarint(report.quarantined);
  writer.PutVarint(report.repaired);
  writer.PutVarint(report.healed);
}

StatusOr<ScrubReport> DecodeScrubReport(Reader& reader) {
  ScrubReport report;
  SS_ASSIGN_OR_RETURN(report.windows_checked, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(report.landmarks_checked, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(report.errors, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(report.quarantined, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(report.repaired, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(report.healed, reader.ReadVarint());
  return report;
}

void EncodeStreamInfo(const StreamInfo& info, Writer& writer) {
  writer.PutVarint(info.id);
  writer.PutVarint(info.element_count);
  writer.PutVarint(info.landmark_element_count);
  writer.PutVarint(info.window_count);
  writer.PutVarint(info.landmark_window_count);
  writer.PutVarint(info.size_bytes);
  writer.PutString(info.decay);
}

StatusOr<StreamInfo> DecodeStreamInfo(Reader& reader) {
  StreamInfo info;
  SS_ASSIGN_OR_RETURN(info.id, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(info.element_count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(info.landmark_element_count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(info.window_count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(info.landmark_window_count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(info.size_bytes, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(std::string_view decay, reader.ReadString());
  info.decay.assign(decay);
  return info;
}

void EncodeStatus(const Status& status, Writer& writer) {
  writer.PutU8(static_cast<uint8_t>(status.code()));
  writer.PutString(status.ok() ? std::string_view() : std::string_view(status.message()));
}

Status DecodeStatus(Reader& reader, Status* out) {
  SS_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption("unknown status code: " + std::to_string(code));
  }
  SS_ASSIGN_OR_RETURN(std::string_view message, reader.ReadString());
  *out = Status(static_cast<StatusCode>(code), std::string(message));
  return Status::Ok();
}

void EncodeEventBatch(std::span<const Event> events, Writer& writer) {
  writer.PutVarint(events.size());
  for (const Event& e : events) {
    writer.PutSignedVarint(e.ts);
    writer.PutDouble(e.value);
  }
}

StatusOr<std::vector<Event>> DecodeEventBatch(Reader& reader) {
  SS_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
  // The count is advisory; the bytes are the ground truth. Reject a count
  // the remaining payload cannot possibly hold before allocating anything.
  if (n > reader.remaining() / kMinEventBytes) {
    return Status::Corruption("event-batch count exceeds payload: " + std::to_string(n));
  }
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Event e;
    SS_ASSIGN_OR_RETURN(e.ts, reader.ReadSignedVarint());
    SS_ASSIGN_OR_RETURN(e.value, reader.ReadDouble());
    events.push_back(e);
  }
  return events;
}

}  // namespace ss::net
