#include "src/net/server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>

#include "src/obs/metrics.h"

namespace ss::net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

Counter& AcceptTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_accept_total");
  return c;
}
Gauge& ConnActive() {
  static Gauge& g = MetricRegistry::Default().GetGauge("ss_net_conn_active");
  return g;
}
Counter& FrameErrors() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_frame_errors_total");
  return c;
}
Counter& RequestErrors() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_request_errors_total");
  return c;
}
Counter& ShedTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total");
  return c;
}
Counter& BlockedTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total");
  return c;
}
Counter& BytesRead() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_bytes_read_total");
  return c;
}
Counter& BytesWritten() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_bytes_written_total");
  return c;
}
Gauge& IngestPending() {
  static Gauge& g = MetricRegistry::Default().GetGauge("ss_net_ingest_pending_events");
  return g;
}
LatencyHistogram& AckFlushUs() {
  static LatencyHistogram& h = MetricRegistry::Default().GetHistogram("ss_net_ack_flush_us");
  return h;
}
LatencyHistogram& AckBatch() {
  static LatencyHistogram& h =
      MetricRegistry::Default().GetHistogram("ss_net_ack_batch_requests");
  return h;
}

Counter& RequestsFor(Opcode op) {
  return MetricRegistry::Default().GetCounter(
      "ss_net_requests_total", std::string("op=\"") + OpcodeName(op) + "\"");
}
LatencyHistogram& RequestUsFor(Opcode op) {
  return MetricRegistry::Default().GetHistogram(
      "ss_net_request_us", std::string("op=\"") + OpcodeName(op) + "\"");
}

// Refreshes the store-level gauges `sstool stats` documents, then renders.
std::string RenderStats(SummaryStore* store, bool json) {
  MetricRegistry& registry = MetricRegistry::Default();
  std::vector<StreamId> ids = store->ListStreams();
  registry.GetGauge("ss_store_streams").Set(static_cast<int64_t>(ids.size()));
  registry.GetGauge("ss_store_size_bytes").Set(static_cast<int64_t>(store->TotalSizeBytes()));
  registry.GetGauge("ss_store_backend_bytes")
      .Set(static_cast<int64_t>(store->backend().ApproximateSizeBytes()));
  uint64_t windows = 0;
  uint64_t events = 0;
  uint64_t landmarks = 0;
  for (StreamId id : ids) {
    auto stream = store->GetStream(id);
    if (!stream.ok()) {
      continue;  // deleted concurrently
    }
    windows += (*stream)->window_count();
    events += (*stream)->element_count();
    landmarks += (*stream)->landmark_window_count();
  }
  registry.GetGauge("ss_store_windows").Set(static_cast<int64_t>(windows));
  registry.GetGauge("ss_store_events").Set(static_cast<int64_t>(events));
  registry.GetGauge("ss_store_landmark_windows").Set(static_cast<int64_t>(landmarks));
  return json ? registry.RenderJson() : registry.RenderPrometheusText();
}

}  // namespace

// Per-connection state. The loop thread owns `in` and the epoll interest;
// `out` is shared with workers under out_mu, the request queue under exec_mu.
struct Server::Connection {
  explicit Connection(Fd sock) : fd(std::move(sock)) {}

  Fd fd;
  std::string in;        // loop thread only: bytes read, not yet framed
  bool blocked = false;  // loop thread only: EPOLLIN disarmed (backpressure)

  std::mutex out_mu;
  std::string out;          // response bytes not yet written to the socket
  bool want_write = false;  // EPOLLOUT armed
  bool want_read = true;    // current EPOLLIN interest (mirrors !blocked)
  bool closed = false;      // fd closed; drop any late responses

  // FIFO of dispatched-but-unexecuted requests. At most one pool worker
  // drains it at a time (exec_running), so pipelined requests from this
  // connection execute strictly in arrival order while distinct connections
  // still fan out across the pool.
  struct PendingExec {
    std::string payload;
    uint64_t admitted = 0;  // ingest events admitted for this request
  };
  std::mutex exec_mu;
  std::deque<PendingExec> exec_queue;
  bool exec_running = false;
};

StatusOr<std::unique_ptr<Server>> Server::Start(SummaryStore* store, ServerOptions options) {
  std::unique_ptr<Server> server(new Server(store, std::move(options)));
  SS_RETURN_IF_ERROR(server->Init());
  return server;
}

Server::Server(SummaryStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Status Server::Init() {
  SS_ASSIGN_OR_RETURN(listener_, ListenTcp(options_.host, options_.port));
  SS_RETURN_IF_ERROR(SetNonBlocking(listener_.get(), true));
  SS_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));

  epoll_ = Fd(::epoll_create1(0));
  if (!epoll_.valid()) {
    return Status::IoError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_ = Fd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_.valid()) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listener_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(listener): ") + std::strerror(errno));
  }
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") + std::strerror(errno));
  }

  size_t workers =
      options_.worker_threads > 0 ? options_.worker_threads : ThreadPool::DefaultThreadCount();
  pool_ = std::make_unique<ThreadPool>(workers);
  ack_thread_ = std::thread([this] { AckThread(); });
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::Ok();
}

Server::~Server() { Stop(); }

void Server::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short writes cannot happen.
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  Wake();
  // Drain in-flight requests; responses land in per-connection buffers and
  // the still-running loop writes them out.
  pool_.reset();
  // Flush + ack the ingest tail, then retire the batcher.
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_stop_ = true;
  }
  ack_cv_.notify_all();
  if (ack_thread_.joinable()) {
    ack_thread_.join();
  }
  // Final write-out + close.
  loop_stop_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
}

void Server::Abort() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  abort_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  loop_stop_.store(true, std::memory_order_release);
  Wake();
  // Sockets die first — clients see a reset, unacked requests stay unacked.
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_stop_ = true;
  }
  ack_cv_.notify_all();
  if (ack_thread_.joinable()) {
    ack_thread_.join();
  }
}

size_t Server::active_connections() const {
  return conn_count_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- event loop

void Server::LoopThread() {
  std::vector<struct epoll_event> events(64);
  bool listener_closed = false;
  for (;;) {
    int n = ::epoll_wait(epoll_.get(), events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone; shutting down
    }
    for (int i = 0; i < n; ++i) {
      const struct epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.fd == wake_.get()) {
        uint64_t drain;
        while (::read(wake_.get(), &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (ev.data.fd == listener_.get()) {
        if (!stopping_.load(std::memory_order_acquire)) {
          AcceptAll();
        }
        continue;
      }
      auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      std::shared_ptr<Connection> conn = it->second;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        FlushOutput(conn);
      }
      if ((ev.events & EPOLLIN) != 0) {
        ReadInput(conn);
      }
    }

    if (stopping_.load(std::memory_order_acquire) && !listener_closed) {
      (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
      listener_.Reset();
      listener_closed = true;
    }
    if (recheck_blocked_.exchange(false, std::memory_order_acq_rel)) {
      RetryBlocked();
    }
    {
      std::vector<std::shared_ptr<Connection>> pending;
      {
        std::lock_guard<std::mutex> lock(pending_writes_mu_);
        pending.swap(pending_writes_);
      }
      for (const auto& conn : pending) {
        FlushOutput(conn);
      }
    }
    if (loop_stop_.load(std::memory_order_acquire)) {
      const bool hard = abort_.load(std::memory_order_acquire);
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) {
        (void)fd;
        all.push_back(conn);
      }
      for (const auto& conn : all) {
        if (!hard) {
          // Graceful: push out whatever is queued before closing. The fd is
          // non-blocking; WriteFully polls out EAGAIN.
          std::lock_guard<std::mutex> lock(conn->out_mu);
          if (!conn->out.empty() && !conn->closed) {
            if (WriteFully(conn->fd.get(), conn->out).ok()) {
              BytesWritten().Inc(conn->out.size());
            }
            conn->out.clear();
          }
        }
        CloseConnection(conn);
      }
      break;
    }
  }
}

void Server::AcceptAll() {
  for (;;) {
    int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or transient error; epoll will re-notify
    }
    Fd sock(fd);
    if (!SetNonBlocking(fd, true).ok()) {
      continue;  // drops the connection (Fd closes it)
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>(std::move(sock));
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = std::move(conn);
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    AcceptTotal().Inc();
    ConnActive().Add(1);
  }
}

void Server::ReadInput(const std::shared_ptr<Connection>& conn) {
  char buf[kReadChunk];
  for (;;) {
    ssize_t r = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      BytesRead().Inc(static_cast<uint64_t>(r));
      conn->in.append(buf, static_cast<size_t>(r));
      if (static_cast<size_t>(r) < sizeof(buf)) {
        break;  // drained the socket
      }
      continue;
    }
    if (r == 0) {
      // Peer closed. Process what is already buffered (a complete final
      // frame deserves its response even if the client half-closed), then
      // close our side.
      ProcessInput(conn);
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConnection(conn);
    return;
  }
  ProcessInput(conn);
}

// Cheap pre-decode of an ingest frame's event count for admission control.
// Malformed bodies admit a nominal 1 event; the worker rejects them properly
// and releases the admission.
static uint64_t PeekIngestEvents(Opcode op, Reader reader) {
  if (op == Opcode::kAppend) {
    return 1;
  }
  if (op != Opcode::kAppendBatch) {
    return 0;
  }
  if (!reader.ReadVarint().ok()) {  // stream id
    return 1;
  }
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return 1;
  }
  // Clamp to what the payload could physically hold (9 bytes/event min), so
  // a garbage count cannot wedge the admission budget.
  uint64_t cap = reader.remaining() / 9;
  return std::max<uint64_t>(1, std::min(*count, cap));
}

void Server::ProcessInput(const std::shared_ptr<Connection>& conn) {
  if (stopping_.load(std::memory_order_acquire) || conn->blocked) {
    return;
  }
  size_t consumed = 0;
  bool close = false;
  while (true) {
    std::string_view rest = std::string_view(conn->in).substr(consumed);
    auto scan = ScanFrame(rest, options_.max_frame_bytes);
    if (!scan.ok()) {
      FrameErrors().Inc();
      close = true;  // framing is unrecoverable: fail the connection closed
      break;
    }
    if (!scan->complete) {
      break;
    }
    Reader peek(scan->payload);
    auto header = DecodeRequestHeader(peek);
    if (!header.ok()) {
      FrameErrors().Inc();
      close = true;
      break;
    }
    uint64_t admitted = 0;
    const Opcode op = header->op;
    if (op == Opcode::kAppend || op == Opcode::kAppendBatch) {
      uint64_t events = PeekIngestEvents(op, peek);
      uint64_t pending = ingest_pending_.load(std::memory_order_acquire);
      if (pending + events > options_.ingest_queue_events &&
          !(pending == 0 && options_.backpressure == ServerOptions::Backpressure::kBlock)) {
        if (options_.backpressure == ServerOptions::Backpressure::kShed) {
          ShedTotal().Inc();
          Writer w;
          w.PutVarint(header->request_id);
          EncodeStatus(Status::FailedPrecondition(
                           "backpressure: ingest queue full (shed policy)"),
                       w);
          std::string frame;
          (void)AppendFrame(w.data(), &frame);
          SendResponse(conn, std::move(frame));
          consumed += scan->frame_end;
          continue;
        }
        // kBlock: leave this frame (and everything behind it) buffered and
        // stop reading; TCP pushes back on the client until capacity frees.
        BlockedTotal().Inc();
        conn->blocked = true;
        UpdateEpoll(conn, /*want_read=*/false, /*want_write=*/false);
        break;
      }
      admitted = events;
      ingest_pending_.fetch_add(events, std::memory_order_acq_rel);
      IngestPending().Add(static_cast<int64_t>(events));
    }
    bool start_worker = false;
    {
      std::lock_guard<std::mutex> lock(conn->exec_mu);
      conn->exec_queue.push_back(
          Connection::PendingExec{std::string(scan->payload), admitted});
      if (!conn->exec_running) {
        conn->exec_running = true;
        start_worker = true;
      }
    }
    consumed += scan->frame_end;
    if (start_worker) {
      pool_->Submit([this, conn] { RunRequests(conn); });
    }
  }
  if (consumed > 0) {
    conn->in.erase(0, consumed);
  }
  if (close) {
    CloseConnection(conn);
  }
}

void Server::RetryBlocked() {
  // Collect first: ProcessInput can re-block and mutate epoll state.
  std::vector<std::shared_ptr<Connection>> blocked;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->blocked) {
      blocked.push_back(conn);
    }
  }
  for (const auto& conn : blocked) {
    conn->blocked = false;
    ProcessInput(conn);
    if (!conn->blocked) {
      UpdateEpoll(conn, /*want_read=*/true, /*want_write=*/false);
      ReadInput(conn);  // pick up bytes that arrived while paused
    }
  }
}

void Server::UpdateEpoll(const std::shared_ptr<Connection>& conn, bool want_read,
                         bool want_write) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) {
    return;
  }
  conn->want_read = want_read;
  conn->want_write = conn->want_write || want_write;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->want_read ? EPOLLIN : 0u) | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd.get();
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
}

void Server::FlushOutput(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) {
    return;
  }
  size_t off = 0;
  while (off < conn->out.size()) {
    ssize_t n = ::send(conn->fd.get(), conn->out.data() + off, conn->out.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      BytesWritten().Inc(static_cast<uint64_t>(n));
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // EAGAIN (retry on EPOLLOUT) or a dead peer (EPOLLERR follows)
  }
  conn->out.erase(0, off);
  const bool need_out = !conn->out.empty();
  if (need_out != conn->want_write) {
    conn->want_write = need_out;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (conn->want_read ? EPOLLIN : 0u) | (need_out ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd.get();
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      conns_.erase(conn->fd.get());
    }
    conn->fd.Reset();
  }
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  ConnActive().Add(-1);
}

// --------------------------------------------------------- request execution

void Server::SendResponse(const std::shared_ptr<Connection>& conn, std::string frame) {
  bool need_loop = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    const bool was_empty = conn->out.empty();
    conn->out += frame;
    if (was_empty) {
      // Opportunistic non-blocking write; leftovers go through the loop.
      size_t off = 0;
      while (off < conn->out.size()) {
        ssize_t n = ::send(conn->fd.get(), conn->out.data() + off, conn->out.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
          BytesWritten().Inc(static_cast<uint64_t>(n));
          off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;
      }
      conn->out.erase(0, off);
    }
    need_loop = !conn->out.empty() && !conn->want_write;
  }
  if (need_loop) {
    {
      std::lock_guard<std::mutex> lock(pending_writes_mu_);
      pending_writes_.push_back(conn);
    }
    Wake();
  }
}

void Server::ReleaseIngest(uint64_t events) {
  if (events == 0) {
    return;
  }
  ingest_pending_.fetch_sub(events, std::memory_order_acq_rel);
  IngestPending().Add(-static_cast<int64_t>(events));
  recheck_blocked_.store(true, std::memory_order_release);
  Wake();
}

void Server::RunRequests(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::PendingExec task;
    {
      std::lock_guard<std::mutex> lock(conn->exec_mu);
      if (conn->exec_queue.empty()) {
        conn->exec_running = false;
        return;
      }
      task = std::move(conn->exec_queue.front());
      conn->exec_queue.pop_front();
    }
    ExecuteRequest(conn, std::move(task.payload), task.admitted);
  }
}

void Server::ExecuteRequest(const std::shared_ptr<Connection>& conn, std::string payload,
                            uint64_t admitted_events) {
  Reader reader(payload);
  auto header = DecodeRequestHeader(reader);
  if (!header.ok()) {
    // The loop validated the header already; a failure here means the
    // connection was already failed closed. Release and drop.
    ReleaseIngest(admitted_events);
    return;
  }
  RequestsFor(header->op).Inc();
  ScopedTimer timer(RequestUsFor(header->op));
  bool defer_ack = false;
  Status ingest_status = Status::Ok();
  std::string response = HandleRequest(*header, reader, &defer_ack, &ingest_status);
  if (defer_ack && ingest_status.ok() && options_.durable_acks &&
      !abort_.load(std::memory_order_acquire)) {
    // Ingest succeeded in memory: the ack waits for a covering Flush.
    {
      std::lock_guard<std::mutex> lock(ack_mu_);
      pending_acks_.push_back(PendingAck{conn, header->request_id, admitted_events});
    }
    ack_cv_.notify_one();
    return;
  }
  if (!response.empty()) {
    std::string frame;
    if (AppendFrame(response, &frame).ok()) {
      SendResponse(conn, std::move(frame));
    }
  }
  ReleaseIngest(admitted_events);
}

std::string Server::HandleRequest(const RequestHeader& header, Reader& body, bool* defer_ack,
                                  Status* ingest_status) {
  Writer resp;
  resp.PutVarint(header.request_id);
  auto fail = [&](const Status& status) {
    RequestErrors().Inc();
    Writer err;
    err.PutVarint(header.request_id);
    EncodeStatus(status, err);
    return err.Release();
  };

  switch (header.op) {
    case Opcode::kPing: {
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kCreateStream: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto config = StreamConfig::Deserialize(body);
      if (!config.ok()) {
        return fail(config.status());
      }
      StreamId created = 0;
      if (*id == 0) {
        auto sid = store_->CreateStream(std::move(*config));
        if (!sid.ok()) {
          return fail(sid.status());
        }
        created = *sid;
      } else {
        Status s = store_->CreateStreamWithId(*id, std::move(*config));
        if (!s.ok()) {
          return fail(s);
        }
        created = *id;
      }
      if (Status s = store_->Flush(); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(created);
      return resp.Release();
    }
    case Opcode::kDeleteStream: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      if (Status s = store_->DeleteStream(*id); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kListStreams: {
      std::vector<StreamId> ids = store_->ListStreams();
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(ids.size());
      for (StreamId id : ids) {
        resp.PutVarint(id);
      }
      return resp.Release();
    }
    case Opcode::kAppend: {
      *defer_ack = true;
      auto id = body.ReadVarint();
      if (!id.ok()) {
        *ingest_status = id.status();
        return fail(id.status());
      }
      auto ts = body.ReadSignedVarint();
      if (!ts.ok()) {
        *ingest_status = ts.status();
        return fail(ts.status());
      }
      auto value = body.ReadDouble();
      if (!value.ok()) {
        *ingest_status = value.status();
        return fail(value.status());
      }
      Status s = store_->Append(*id, *ts, *value);
      *ingest_status = s;
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kAppendBatch: {
      *defer_ack = true;
      auto id = body.ReadVarint();
      if (!id.ok()) {
        *ingest_status = id.status();
        return fail(id.status());
      }
      auto events = DecodeEventBatch(body);
      if (!events.ok()) {
        *ingest_status = events.status();
        return fail(events.status());
      }
      Status s = store_->AppendBatch(*id, *events);
      *ingest_status = s;
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kQuery: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto spec = DecodeQuerySpec(body);
      if (!spec.ok()) {
        return fail(spec.status());
      }
      auto result = store_->Query(*id, *spec);
      if (!result.ok()) {
        return fail(result.status());
      }
      EncodeStatus(Status::Ok(), resp);
      std::string trace;
      if (spec->collect_trace && result->trace != nullptr) {
        trace = result->trace->Render();
      }
      EncodeQueryResult(*result, trace, resp);
      return resp.Release();
    }
    case Opcode::kQueryAggregate: {
      auto n = body.ReadVarint();
      if (!n.ok()) {
        return fail(n.status());
      }
      if (*n > body.remaining()) {  // >= 1 byte per id on the wire
        return fail(Status::Corruption("stream-id count exceeds payload"));
      }
      std::vector<StreamId> ids;
      ids.reserve(static_cast<size_t>(*n));
      for (uint64_t i = 0; i < *n; ++i) {
        auto id = body.ReadVarint();
        if (!id.ok()) {
          return fail(id.status());
        }
        ids.push_back(*id);
      }
      auto spec = DecodeQuerySpec(body);
      if (!spec.ok()) {
        return fail(spec.status());
      }
      auto result = store_->QueryAggregate(ids, *spec);
      if (!result.ok()) {
        return fail(result.status());
      }
      EncodeStatus(Status::Ok(), resp);
      std::string trace;
      if (spec->collect_trace && result->trace != nullptr) {
        trace = result->trace->Render();
      }
      EncodeQueryResult(*result, trace, resp);
      return resp.Release();
    }
    case Opcode::kBeginLandmark:
    case Opcode::kEndLandmark: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto ts = body.ReadSignedVarint();
      if (!ts.ok()) {
        return fail(ts.status());
      }
      Status s = header.op == Opcode::kBeginLandmark ? store_->BeginLandmark(*id, *ts)
                                                     : store_->EndLandmark(*id, *ts);
      if (!s.ok()) {
        return fail(s);
      }
      if (Status flush = store_->Flush(); !flush.ok()) {
        return fail(flush);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kFlush: {
      if (Status s = store_->Flush(); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kScrub: {
      auto repair = body.ReadU8();
      if (!repair.ok()) {
        return fail(repair.status());
      }
      ScrubReport report;
      Status s = store_->Scrub(*repair != 0, &report);
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      EncodeScrubReport(report, resp);
      return resp.Release();
    }
    case Opcode::kStats: {
      auto format = body.ReadU8();
      if (!format.ok()) {
        return fail(format.status());
      }
      if (*format > 1) {
        return fail(Status::Corruption("unknown stats format"));
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutString(RenderStats(store_, /*json=*/*format == 0));
      return resp.Release();
    }
    case Opcode::kStreamInfo: {
      auto want = body.ReadVarint();
      if (!want.ok()) {
        return fail(want.status());
      }
      std::vector<StreamId> ids;
      if (*want != 0) {
        ids.push_back(*want);
      } else {
        ids = store_->ListStreams();
      }
      std::vector<StreamInfo> rows;
      for (StreamId id : ids) {
        auto stream = store_->GetStream(id);
        if (!stream.ok()) {
          return fail(stream.status());
        }
        StreamInfo info;
        info.id = id;
        info.element_count = (*stream)->element_count();
        info.landmark_element_count = (*stream)->landmark_element_count();
        info.window_count = (*stream)->window_count();
        info.landmark_window_count = (*stream)->landmark_window_count();
        info.size_bytes = (*stream)->SizeBytes();
        info.decay = (*stream)->config().decay->Describe();
        rows.push_back(std::move(info));
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(rows.size());
      for (const StreamInfo& row : rows) {
        EncodeStreamInfo(row, resp);
      }
      return resp.Release();
    }
  }
  return fail(Status::Unimplemented("unhandled opcode"));
}

// ----------------------------------------------------------- durability acks

void Server::AckThread() {
  for (;;) {
    std::vector<PendingAck> batch;
    {
      std::unique_lock<std::mutex> lock(ack_mu_);
      ack_cv_.wait(lock, [this] { return ack_stop_ || !pending_acks_.empty(); });
      if (pending_acks_.empty() && ack_stop_) {
        return;
      }
      batch.swap(pending_acks_);
    }
    if (abort_.load(std::memory_order_acquire)) {
      // Hard kill: never acked, allowed to be lost. Release the budget so
      // teardown doesn't hinge on it.
      for (const PendingAck& ack : batch) {
        ReleaseIngest(ack.events);
      }
      continue;
    }
    Status flush;
    {
      ScopedTimer timer(AckFlushUs());
      flush = store_->Flush();
    }
    AckBatch().Record(batch.size());
    for (PendingAck& ack : batch) {
      Writer w;
      w.PutVarint(ack.request_id);
      EncodeStatus(flush, w);
      std::string frame;
      if (AppendFrame(w.data(), &frame).ok()) {
        SendResponse(ack.conn, std::move(frame));
      }
      ReleaseIngest(ack.events);
    }
  }
}

}  // namespace ss::net
