#include "src/net/server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss::net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

Counter& AcceptTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_accept_total");
  return c;
}
Gauge& ConnActive() {
  static Gauge& g = MetricRegistry::Default().GetGauge("ss_net_conn_active");
  return g;
}
Counter& FrameErrors() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_frame_errors_total");
  return c;
}
Counter& RequestErrors() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_request_errors_total");
  return c;
}
Counter& ShedTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total");
  return c;
}
Counter& BlockedTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total");
  return c;
}
Counter& BytesRead() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_bytes_read_total");
  return c;
}
Counter& BytesWritten() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_bytes_written_total");
  return c;
}
Gauge& IngestPending() {
  static Gauge& g = MetricRegistry::Default().GetGauge("ss_net_ingest_pending_events");
  return g;
}
LatencyHistogram& AckFlushUs() {
  static LatencyHistogram& h = MetricRegistry::Default().GetHistogram("ss_net_ack_flush_us");
  return h;
}
LatencyHistogram& AckBatch() {
  static LatencyHistogram& h =
      MetricRegistry::Default().GetHistogram("ss_net_ack_batch_requests");
  return h;
}

Counter& AuthFailTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_auth_fail_total");
  return c;
}
Counter& DeadlineExceededTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_deadline_exceeded_total");
  return c;
}
Counter& DupSuppressedTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_dup_suppressed_total");
  return c;
}
Counter& SlowPeerDisconnects() {
  static Counter& c =
      MetricRegistry::Default().GetCounter("ss_net_slow_peer_disconnects_total");
  return c;
}

Counter& RequestsFor(Opcode op) {
  return MetricRegistry::Default().GetCounter(
      "ss_net_requests_total", std::string("op=\"") + OpcodeName(op) + "\"");
}

// Per-tenant series of an ss_net metric, e.g.
// ss_net_backpressure_shed_total{tenant="acme"}.
std::string TenantLabel(const std::string& name) { return "tenant=\"" + name + "\""; }
LatencyHistogram& RequestUsFor(Opcode op) {
  return MetricRegistry::Default().GetHistogram(
      "ss_net_request_us", std::string("op=\"") + OpcodeName(op) + "\"");
}

// Refreshes the store-level gauges `sstool stats` documents, then renders.
std::string RenderStats(SummaryStore* store, bool json) {
  MetricRegistry& registry = MetricRegistry::Default();
  std::vector<StreamId> ids = store->ListStreams();
  registry.GetGauge("ss_store_streams").Set(static_cast<int64_t>(ids.size()));
  registry.GetGauge("ss_store_size_bytes").Set(static_cast<int64_t>(store->TotalSizeBytes()));
  registry.GetGauge("ss_store_backend_bytes")
      .Set(static_cast<int64_t>(store->backend().ApproximateSizeBytes()));
  uint64_t windows = 0;
  uint64_t events = 0;
  uint64_t landmarks = 0;
  for (StreamId id : ids) {
    auto stream = store->GetStream(id);
    if (!stream.ok()) {
      continue;  // deleted concurrently
    }
    windows += (*stream)->window_count();
    events += (*stream)->element_count();
    landmarks += (*stream)->landmark_window_count();
  }
  registry.GetGauge("ss_store_windows").Set(static_cast<int64_t>(windows));
  registry.GetGauge("ss_store_events").Set(static_cast<int64_t>(events));
  registry.GetGauge("ss_store_landmark_windows").Set(static_cast<int64_t>(landmarks));
  return json ? registry.RenderJson() : registry.RenderPrometheusText();
}

}  // namespace

// Per-tenant runtime state (DESIGN.md §14). The token bucket is touched only
// by the loop thread during admission; `pending` and the byte-quota cache are
// shared with workers through atomics. Entry 0 is the implicit legacy tenant
// (id 0: identity stream-id mapping, unlimited quotas, the whole budget).
struct Server::TenantState {
  TenantConfig config;
  uint64_t budget_events = 0;  // this tenant's share of ingest_queue_events

  std::atomic<uint64_t> pending{0};  // events admitted, ack not yet sent

  // Token bucket: rate = quotas.ingest_events_per_sec, burst = one second's
  // worth; 0 = unlimited. Loop thread only.
  double bucket_tokens = 0;
  Stopwatch bucket_clock;

  // Byte-quota bookkeeping (workers): exact recount of the tenant's stream
  // sizes every kByteQuotaRecountEvents admitted events, estimated growth in
  // between — see Server::CheckByteQuota.
  std::atomic<uint64_t> resident_bytes{0};
  std::atomic<uint64_t> events_since_recount{0};

  // Idempotent ingest replay dedup (DESIGN.md §15): highest applied seq per
  // client session. The per-session mutex is held across check + apply +
  // update, so a retransmit racing its original (the old connection's worker
  // may still be executing when the replay arrives on a fresh connection)
  // cannot double-apply. shared_ptr so a looked-up session survives eviction.
  struct SessionState {
    std::mutex mu;
    uint64_t last_seq = 0;
  };
  std::mutex sessions_mu;
  std::map<uint64_t, std::shared_ptr<SessionState>> sessions;

  std::shared_ptr<SessionState> GetSession(uint64_t session_id) {
    std::lock_guard<std::mutex> lock(sessions_mu);
    auto it = sessions.find(session_id);
    if (it != sessions.end()) {
      return it->second;
    }
    // Bounded: a hostile client minting fresh session ids must not grow this
    // map without limit. Evicting an entry only weakens dedup for a session
    // idle long enough to age out of 4096 — a replay there degrades to the
    // legacy at-least-once behavior, never to data loss.
    constexpr size_t kMaxSessions = 4096;
    if (sessions.size() >= kMaxSessions) {
      sessions.erase(sessions.begin());
    }
    auto session = std::make_shared<SessionState>();
    sessions.emplace(session_id, session);
    return session;
  }

  // Tenant-labeled series of the ss_net admission metrics.
  Counter* requests = nullptr;
  Counter* shed = nullptr;
  Counter* blocked = nullptr;
  Counter* rate_limited = nullptr;
  Gauge* pending_gauge = nullptr;

  void InitMetrics() {
    MetricRegistry& registry = MetricRegistry::Default();
    const std::string label = TenantLabel(config.name);
    requests = &registry.GetCounter("ss_net_requests_total", label);
    shed = &registry.GetCounter("ss_net_backpressure_shed_total", label);
    blocked = &registry.GetCounter("ss_net_backpressure_blocked_total", label);
    rate_limited = &registry.GetCounter("ss_net_rate_limited_total", label);
    pending_gauge = &registry.GetGauge("ss_net_ingest_pending_events", label);
  }
};

// Per-connection state. The loop thread owns `in` and the epoll interest;
// `out` is shared with workers under out_mu, the request queue under exec_mu.
struct Server::Connection {
  explicit Connection(Fd sock) : fd(std::move(sock)) {}

  Fd fd;
  std::string in;        // loop thread only: bytes read, not yet framed
  bool blocked = false;  // loop thread only: EPOLLIN disarmed (backpressure)

  // Authenticated tenant. Loop thread only: set at accept (legacy) or by a
  // successful hello; workers see the pointer frozen into each PendingExec
  // at admission time, so requests enqueued before a hello stay denied even
  // if they execute after it.
  TenantState* tenant = nullptr;

  std::mutex out_mu;
  std::string out;          // response bytes not yet written to the socket
  bool want_write = false;  // EPOLLOUT armed
  bool want_read = true;    // current EPOLLIN interest (mirrors !blocked)
  bool closed = false;      // fd closed; drop any late responses
  // Slow-peer stall clock (under out_mu): MonotonicMicros() instant `out`
  // first exceeded ServerOptions::max_conn_buffer_bytes, 0 while under the
  // bound. The loop disconnects once it ages past slow_peer_timeout_ms.
  uint64_t stall_since_us = 0;

  // FIFO of dispatched-but-unexecuted requests. At most one pool worker
  // drains it at a time (exec_running), so pipelined requests from this
  // connection execute strictly in arrival order while distinct connections
  // still fan out across the pool.
  struct PendingExec {
    std::string payload;
    TenantState* tenant = nullptr;  // admission-time tenant of this request
    uint64_t admitted = 0;          // ingest events admitted for this request
    // Absolute expiry of the request's wire deadline (0 = none), stamped at
    // admission so queue time counts against the client's budget.
    uint64_t deadline_at = 0;
    // Pre-encoded response frame (shed rejections, hello acks, auth errors):
    // non-empty means "send this instead of executing". Routing these through
    // the queue keeps even loop-thread-generated responses in per-connection
    // FIFO order — DESIGN.md §12 promises a client never observes response
    // N+1 before response N.
    std::string ready_frame;
  };
  std::mutex exec_mu;
  std::deque<PendingExec> exec_queue;
  bool exec_running = false;
};

StatusOr<std::unique_ptr<Server>> Server::Start(SummaryStore* store, ServerOptions options) {
  std::unique_ptr<Server> server(new Server(store, std::move(options)));
  SS_RETURN_IF_ERROR(server->Init());
  return server;
}

Server::Server(SummaryStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {}

Status Server::Init() {
  {
    auto legacy = std::make_unique<TenantState>();
    legacy->config.id = 0;
    legacy->config.name = "default";
    legacy->budget_events = options_.ingest_queue_events;
    legacy->InitMetrics();
    tenants_.push_back(std::move(legacy));
  }
  if (multi_tenant()) {
    // Fair share: the admission budget splits evenly across tenants, so one
    // tenant saturating its share cannot push another tenant's ingest into
    // shed/block (a global cap still bounds the total).
    const uint64_t share =
        std::max<uint64_t>(1, options_.ingest_queue_events / options_.tenants->size());
    for (const TenantConfig& config : options_.tenants->tenants()) {
      auto tenant = std::make_unique<TenantState>();
      tenant->config = config;
      tenant->budget_events = share;
      tenant->bucket_tokens = static_cast<double>(config.quotas.ingest_events_per_sec);
      tenant->InitMetrics();
      tenants_.push_back(std::move(tenant));
    }
  }

  SS_ASSIGN_OR_RETURN(listener_, ListenTcp(options_.host, options_.port));
  SS_RETURN_IF_ERROR(SetNonBlocking(listener_.get(), true));
  SS_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));

  epoll_ = Fd(::epoll_create1(0));
  if (!epoll_.valid()) {
    return Status::IoError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_ = Fd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_.valid()) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listener_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(listener): ") + std::strerror(errno));
  }
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") + std::strerror(errno));
  }

  size_t workers =
      options_.worker_threads > 0 ? options_.worker_threads : ThreadPool::DefaultThreadCount();
  pool_ = std::make_unique<ThreadPool>(workers);
  ack_thread_ = std::thread([this] { AckThread(); });
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::Ok();
}

Server::~Server() { Stop(); }

void Server::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short writes cannot happen.
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  Wake();
  // Drain in-flight requests; responses land in per-connection buffers and
  // the still-running loop writes them out. Drain (not reset): the loop
  // thread still dereferences pool_ to submit work for late-arriving frames,
  // which now runs inline; the pointer itself dies only after the join.
  // Null when Init() failed before the pool came up.
  if (pool_ != nullptr) {
    pool_->Drain();
  }
  // Flush + ack the ingest tail, then retire the batcher.
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_stop_ = true;
  }
  ack_cv_.notify_all();
  if (ack_thread_.joinable()) {
    ack_thread_.join();
  }
  // Final write-out + close.
  loop_stop_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  pool_.reset();
}

void Server::Abort() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  abort_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  loop_stop_.store(true, std::memory_order_release);
  Wake();
  // Sockets die first — clients see a reset, unacked requests stay unacked.
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_stop_ = true;
  }
  ack_cv_.notify_all();
  if (ack_thread_.joinable()) {
    ack_thread_.join();
  }
}

size_t Server::active_connections() const {
  return conn_count_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- event loop

void Server::LoopThread() {
  std::vector<struct epoll_event> events(64);
  bool listener_closed = false;
  for (;;) {
    // Timed waits only while some connection is over its output bound: stall
    // clocks must advance even when no socket event ever arrives (the
    // defining behavior of a peer that stopped reading).
    const int timeout_ms = over_bound_.load(std::memory_order_acquire) > 0 ? 50 : -1;
    int n = ::epoll_wait(epoll_.get(), events.data(), static_cast<int>(events.size()),
                         timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone; shutting down
    }
    for (int i = 0; i < n; ++i) {
      const struct epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.fd == wake_.get()) {
        uint64_t drain;
        while (::read(wake_.get(), &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (ev.data.fd == listener_.get()) {
        if (!stopping_.load(std::memory_order_acquire)) {
          AcceptAll();
        }
        continue;
      }
      auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      std::shared_ptr<Connection> conn = it->second;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        FlushOutput(conn);
      }
      if ((ev.events & EPOLLIN) != 0) {
        ReadInput(conn);
      }
    }

    if (stopping_.load(std::memory_order_acquire) && !listener_closed) {
      (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
      listener_.Reset();
      listener_closed = true;
    }
    if (over_bound_.load(std::memory_order_acquire) > 0) {
      SweepSlowPeers();
    }
    if (recheck_blocked_.exchange(false, std::memory_order_acq_rel)) {
      RetryBlocked();
    }
    {
      std::vector<std::shared_ptr<Connection>> pending;
      {
        std::lock_guard<std::mutex> lock(pending_writes_mu_);
        pending.swap(pending_writes_);
      }
      for (const auto& conn : pending) {
        FlushOutput(conn);
      }
    }
    if (loop_stop_.load(std::memory_order_acquire)) {
      const bool hard = abort_.load(std::memory_order_acquire);
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) {
        (void)fd;
        all.push_back(conn);
      }
      for (const auto& conn : all) {
        if (!hard) {
          // Graceful: push out whatever is queued before closing. The fd is
          // non-blocking; WriteFully polls out EAGAIN.
          std::lock_guard<std::mutex> lock(conn->out_mu);
          if (!conn->out.empty() && !conn->closed) {
            if (WriteFully(conn->fd.get(), conn->out).ok()) {
              BytesWritten().Inc(conn->out.size());
            }
            conn->out.clear();
          }
        }
        CloseConnection(conn);
      }
      break;
    }
  }
}

void Server::AcceptAll() {
  for (;;) {
    int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or transient error; epoll will re-notify
    }
    Fd sock(fd);
    if (!SetNonBlocking(fd, true).ok()) {
      continue;  // drops the connection (Fd closes it)
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>(std::move(sock));
    // Multi-tenant mode: no tenant until a hello authenticates one.
    conn->tenant = multi_tenant() ? nullptr : tenants_[0].get();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = std::move(conn);
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    AcceptTotal().Inc();
    ConnActive().Add(1);
  }
}

void Server::ReadInput(const std::shared_ptr<Connection>& conn) {
  char buf[kReadChunk];
  for (;;) {
    ssize_t r = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      BytesRead().Inc(static_cast<uint64_t>(r));
      conn->in.append(buf, static_cast<size_t>(r));
      if (static_cast<size_t>(r) < sizeof(buf)) {
        break;  // drained the socket
      }
      continue;
    }
    if (r == 0) {
      // Peer closed. Process what is already buffered (a complete final
      // frame deserves its response even if the client half-closed), then
      // close our side.
      ProcessInput(conn);
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConnection(conn);
    return;
  }
  ProcessInput(conn);
}

// Cheap pre-decode of an ingest frame's event count for admission control.
// Malformed bodies admit a nominal 1 event; the worker rejects them properly
// and releases the admission.
static uint64_t PeekIngestEvents(Opcode op, Reader reader) {
  if (op == Opcode::kAppend) {
    return 1;
  }
  if (op != Opcode::kAppendBatch) {
    return 0;
  }
  if (!reader.ReadVarint().ok()) {  // stream id
    return 1;
  }
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return 1;
  }
  // Clamp to what the payload could physically hold (9 bytes/event min), so
  // a garbage count cannot wedge the admission budget.
  uint64_t cap = reader.remaining() / 9;
  return std::max<uint64_t>(1, std::min(*count, cap));
}

void Server::ProcessInput(const std::shared_ptr<Connection>& conn) {
  if (stopping_.load(std::memory_order_acquire) || conn->blocked) {
    return;
  }
  size_t consumed = 0;
  bool close = false;
  while (true) {
    std::string_view rest = std::string_view(conn->in).substr(consumed);
    auto scan = ScanFrame(rest, options_.max_frame_bytes);
    if (!scan.ok()) {
      FrameErrors().Inc();
      close = true;  // framing is unrecoverable: fail the connection closed
      break;
    }
    if (!scan->complete) {
      break;
    }
    Reader peek(scan->payload);
    auto header = DecodeRequestHeader(peek);
    if (!header.ok()) {
      FrameErrors().Inc();
      close = true;
      break;
    }
    uint64_t admitted = 0;
    // Wire deadline → absolute expiry, stamped at admission so time spent in
    // the exec queue counts against the client's budget. deadline_ms == 0
    // with the flag present means "already expired" (a deterministic hook:
    // the client's budget ran out before the frame finished encoding).
    uint64_t deadline_at = 0;
    if (header->has_deadline) {
      deadline_at =
          header->deadline_ms == 0 ? 1 : MonotonicMicros() + header->deadline_ms * 1000;
    }
    const Opcode op = header->op;
    if (op == Opcode::kHello) {
      // Authenticate on the loop thread, so later frames in this same buffer
      // sweep already see the connection's tenant at admission.
      RequestsFor(op).Inc();
      HandleHello(conn, header->request_id, peek);
      consumed += scan->frame_end;
      continue;
    }
    TenantState* tenant = conn->tenant;
    if (tenant == nullptr) {
      // Multi-tenant mode before a successful hello: deny (in FIFO position)
      // and keep unauthenticated traffic away from the admission budget.
      RequestErrors().Inc();
      AuthFailTotal().Inc();
      EnqueueReadyFrame(conn, header->request_id,
                        Status::PermissionDenied("hello required before any other request"));
      consumed += scan->frame_end;
      continue;
    }
    if (op == Opcode::kAppend || op == Opcode::kAppendBatch) {
      uint64_t events = PeekIngestEvents(op, peek);
      // Tenant rate quota (token bucket, burst = one second's worth). Rate
      // exhaustion is a typed per-tenant error under either backpressure
      // policy — blocking would let one tenant's quota masquerade as global
      // backpressure.
      const uint64_t rate = tenant->config.quotas.ingest_events_per_sec;
      if (rate > 0) {
        tenant->bucket_tokens = std::min(
            static_cast<double>(rate),
            tenant->bucket_tokens +
                tenant->bucket_clock.ElapsedSeconds() * static_cast<double>(rate));
        tenant->bucket_clock.Reset();
        if (tenant->bucket_tokens < static_cast<double>(events)) {
          tenant->rate_limited->Inc();
          RequestErrors().Inc();
          EnqueueReadyFrame(conn, header->request_id,
                            Status::ResourceExhausted("tenant ingest rate quota exceeded (" +
                                                      std::to_string(rate) + " events/s)"));
          consumed += scan->frame_end;
          continue;
        }
        tenant->bucket_tokens -= static_cast<double>(events);
      }
      const bool block = options_.backpressure == ServerOptions::Backpressure::kBlock;
      const uint64_t tenant_pending = tenant->pending.load(std::memory_order_acquire);
      const uint64_t global_pending = ingest_pending_.load(std::memory_order_acquire);
      // A single batch larger than the whole share is admitted when the
      // share is idle under kBlock (it could never run otherwise). The
      // global cap only binds once multiple tenants' admitted shares overlap.
      const bool tenant_over = tenant_pending + events > tenant->budget_events &&
                               !(tenant_pending == 0 && block);
      const bool global_over = global_pending + events > options_.ingest_queue_events &&
                               !(global_pending == 0 && block);
      if (tenant_over || global_over) {
        if (options_.backpressure == ServerOptions::Backpressure::kShed) {
          ShedTotal().Inc();
          tenant->shed->Inc();
          // Through exec_queue, NOT straight to the socket: earlier frames
          // may still be queued, and a shed rejection sent ahead of their
          // responses would break the pipelined-ordering contract.
          EnqueueReadyFrame(
              conn, header->request_id,
              Status::FailedPrecondition("backpressure: ingest queue full (shed policy)"));
          consumed += scan->frame_end;
          continue;
        }
        // kBlock: leave this frame (and everything behind it) buffered and
        // stop reading; TCP pushes back on the client until capacity frees.
        BlockedTotal().Inc();
        tenant->blocked->Inc();
        conn->blocked = true;
        UpdateEpoll(conn, /*want_read=*/false, /*want_write=*/false);
        break;
      }
      admitted = events;
      tenant->pending.fetch_add(events, std::memory_order_acq_rel);
      tenant->pending_gauge->Add(static_cast<int64_t>(events));
      ingest_pending_.fetch_add(events, std::memory_order_acq_rel);
      IngestPending().Add(static_cast<int64_t>(events));
    }
    bool start_worker = false;
    {
      std::lock_guard<std::mutex> lock(conn->exec_mu);
      conn->exec_queue.push_back(
          Connection::PendingExec{std::string(scan->payload), tenant, admitted, deadline_at, {}});
      if (!conn->exec_running) {
        conn->exec_running = true;
        start_worker = true;
      }
    }
    consumed += scan->frame_end;
    if (start_worker) {
      pool_->Submit([this, conn] { RunRequests(conn); });
    }
  }
  if (consumed > 0) {
    conn->in.erase(0, consumed);
  }
  if (close) {
    CloseConnection(conn);
  }
}

void Server::HandleHello(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                         Reader& body) {
  auto tenant_id = body.ReadVarint();
  if (!tenant_id.ok()) {
    RequestErrors().Inc();
    EnqueueReadyFrame(conn, request_id, tenant_id.status());
    return;
  }
  auto token = body.ReadString();
  if (!token.ok()) {
    RequestErrors().Inc();
    EnqueueReadyFrame(conn, request_id, token.status());
    return;
  }
  if (!multi_tenant()) {
    // Legacy single-tenant server: accept and ignore, so tenant-configured
    // clients can talk to either kind of deployment.
    EnqueueReadyFrame(conn, request_id, Status::Ok());
    return;
  }
  if (conn->tenant != nullptr) {
    RequestErrors().Inc();
    EnqueueReadyFrame(conn, request_id,
                      Status::FailedPrecondition("connection is already authenticated"));
    return;
  }
  if (*tenant_id == 0 || *tenant_id > kMaxTenantId ||
      !options_.tenants->Authenticate(static_cast<uint32_t>(*tenant_id), *token)) {
    // One error for every failure mode: the response must not reveal whether
    // the tenant id exists.
    RequestErrors().Inc();
    AuthFailTotal().Inc();
    EnqueueReadyFrame(conn, request_id,
                      Status::PermissionDenied("unknown tenant or bad token"));
    return;
  }
  for (const auto& tenant : tenants_) {
    if (tenant->config.id == *tenant_id) {
      conn->tenant = tenant.get();
      break;
    }
  }
  EnqueueReadyFrame(conn, request_id, Status::Ok());
}

void Server::EnqueueReadyFrame(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                               const Status& status) {
  Writer w;
  w.PutVarint(request_id);
  EncodeStatus(status, w);
  std::string frame;
  if (!AppendFrame(w.data(), &frame).ok()) {
    return;
  }
  bool start_worker = false;
  {
    std::lock_guard<std::mutex> lock(conn->exec_mu);
    Connection::PendingExec task;
    task.ready_frame = std::move(frame);
    conn->exec_queue.push_back(std::move(task));
    if (!conn->exec_running) {
      conn->exec_running = true;
      start_worker = true;
    }
  }
  if (start_worker) {
    pool_->Submit([this, conn] { RunRequests(conn); });
  }
}

void Server::RetryBlocked() {
  // Collect first: ProcessInput can re-block and mutate epoll state.
  std::vector<std::shared_ptr<Connection>> blocked;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->blocked) {
      blocked.push_back(conn);
    }
  }
  for (const auto& conn : blocked) {
    conn->blocked = false;
    ProcessInput(conn);
    if (!conn->blocked) {
      UpdateEpoll(conn, /*want_read=*/true, /*want_write=*/false);
      ReadInput(conn);  // pick up bytes that arrived while paused
    }
  }
}

void Server::UpdateEpoll(const std::shared_ptr<Connection>& conn, bool want_read,
                         bool want_write) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) {
    return;
  }
  conn->want_read = want_read;
  conn->want_write = conn->want_write || want_write;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->want_read ? EPOLLIN : 0u) | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd.get();
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
}

void Server::FlushOutput(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) {
    return;
  }
  size_t off = 0;
  while (off < conn->out.size()) {
    ssize_t n = ::send(conn->fd.get(), conn->out.data() + off, conn->out.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      BytesWritten().Inc(static_cast<uint64_t>(n));
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // EAGAIN (retry on EPOLLOUT) or a dead peer (EPOLLERR follows)
  }
  conn->out.erase(0, off);
  UpdateStallLocked(conn.get());
  const bool need_out = !conn->out.empty();
  if (need_out != conn->want_write) {
    conn->want_write = need_out;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (conn->want_read ? EPOLLIN : 0u) | (need_out ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd.get();
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    if (conn->stall_since_us != 0) {
      conn->stall_since_us = 0;
      over_bound_.fetch_sub(1, std::memory_order_acq_rel);
    }
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      conns_.erase(conn->fd.get());
    }
    conn->fd.Reset();
  }
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  ConnActive().Add(-1);
}

// --------------------------------------------------------- request execution

void Server::SendResponse(const std::shared_ptr<Connection>& conn, std::string frame) {
  bool need_loop = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    const bool was_empty = conn->out.empty();
    conn->out += frame;
    if (was_empty) {
      // Opportunistic non-blocking write; leftovers go through the loop.
      size_t off = 0;
      while (off < conn->out.size()) {
        ssize_t n = ::send(conn->fd.get(), conn->out.data() + off, conn->out.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
          BytesWritten().Inc(static_cast<uint64_t>(n));
          off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;
      }
      conn->out.erase(0, off);
    }
    UpdateStallLocked(conn.get());
    need_loop = !conn->out.empty() && !conn->want_write;
  }
  if (need_loop) {
    {
      std::lock_guard<std::mutex> lock(pending_writes_mu_);
      pending_writes_.push_back(conn);
    }
    Wake();
  }
}

void Server::UpdateStallLocked(Connection* conn) {
  if (options_.max_conn_buffer_bytes == 0 || conn->closed) {
    return;
  }
  const bool over = conn->out.size() > options_.max_conn_buffer_bytes;
  if (over && conn->stall_since_us == 0) {
    conn->stall_since_us = MonotonicMicros();
    if (over_bound_.fetch_add(1, std::memory_order_acq_rel) == 0) {
      Wake();  // break the loop out of its indefinite wait into timed waits
    }
  } else if (!over && conn->stall_since_us != 0) {
    conn->stall_since_us = 0;
    over_bound_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Server::SweepSlowPeers() {
  const uint64_t now = MonotonicMicros();
  const uint64_t limit_us = options_.slow_peer_timeout_ms * 1000;
  std::vector<std::pair<std::shared_ptr<Connection>, uint64_t>> expired;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->stall_since_us != 0 && now - conn->stall_since_us >= limit_us) {
      expired.emplace_back(conn, conn->out.size());
    }
  }
  for (const auto& [conn, buffered] : expired) {
    SlowPeerDisconnects().Inc();
    FlightRecorder::Default().Record(FlightEventType::kNetSlowPeerDisconnect,
                                     static_cast<uint64_t>(conn->fd.get()), buffered);
    CloseConnection(conn);
  }
}

void Server::ReleaseIngest(TenantState* tenant, uint64_t events) {
  if (events == 0) {
    return;
  }
  if (tenant != nullptr) {
    tenant->pending.fetch_sub(events, std::memory_order_acq_rel);
    tenant->pending_gauge->Add(-static_cast<int64_t>(events));
  }
  ingest_pending_.fetch_sub(events, std::memory_order_acq_rel);
  IngestPending().Add(-static_cast<int64_t>(events));
  recheck_blocked_.store(true, std::memory_order_release);
  Wake();
}

void Server::RunRequests(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::PendingExec task;
    {
      std::lock_guard<std::mutex> lock(conn->exec_mu);
      if (conn->exec_queue.empty()) {
        conn->exec_running = false;
        return;
      }
      task = std::move(conn->exec_queue.front());
      conn->exec_queue.pop_front();
    }
    if (!task.ready_frame.empty()) {
      // Pre-encoded by the loop thread (shed rejection, hello ack, auth
      // error); it waited here for its FIFO turn.
      SendResponse(conn, std::move(task.ready_frame));
      ReleaseIngest(task.tenant, task.admitted);
      continue;
    }
    ExecuteRequest(conn, std::move(task.payload), task.tenant, task.admitted, task.deadline_at);
  }
}

void Server::ExecuteRequest(const std::shared_ptr<Connection>& conn, std::string payload,
                            TenantState* tenant, uint64_t admitted_events,
                            uint64_t deadline_at_us) {
  Reader reader(payload);
  auto header = DecodeRequestHeader(reader);
  if (!header.ok()) {
    // The loop validated the header already; a failure here means the
    // connection was already failed closed. Release and drop.
    ReleaseIngest(tenant, admitted_events);
    return;
  }
  RequestsFor(header->op).Inc();
  tenant->requests->Inc();
  if (deadline_at_us != 0 && MonotonicMicros() >= deadline_at_us) {
    // The client's budget expired while this sat in the exec queue: answer a
    // typed rejection without touching the store. The client has long since
    // given up locally; doing the work would only add load exactly when the
    // server is too slow to be worth talking to.
    DeadlineExceededTotal().Inc();
    RequestErrors().Inc();
    FlightRecorder::Default().Record(FlightEventType::kNetDeadlineExceeded,
                                     static_cast<uint64_t>(header->op), header->deadline_ms);
    Writer w;
    w.PutVarint(header->request_id);
    EncodeStatus(Status::DeadlineExceeded("deadline expired before execution"), w);
    std::string frame;
    if (AppendFrame(w.data(), &frame).ok()) {
      SendResponse(conn, std::move(frame));
    }
    ReleaseIngest(tenant, admitted_events);
    return;
  }
  ScopedTimer timer(RequestUsFor(header->op));
  bool defer_ack = false;
  Status ingest_status = Status::Ok();
  std::string response = HandleRequest(tenant, *header, reader, &defer_ack, &ingest_status);
  if (defer_ack && ingest_status.ok() && options_.durable_acks) {
    if (abort_.load(std::memory_order_acquire)) {
      // Hard kill mid-request: the ack thread is gone (or will drop the
      // batch), and falling through would send an OK ack with no covering
      // Flush — the client would count an append WAL replay may not
      // recover. Drop the response; an unacked append is allowed to be
      // lost.
      ReleaseIngest(tenant, admitted_events);
      return;
    }
    // Ingest succeeded in memory: the ack waits for a covering Flush.
    {
      std::lock_guard<std::mutex> lock(ack_mu_);
      pending_acks_.push_back(PendingAck{conn, tenant, header->request_id, admitted_events});
    }
    ack_cv_.notify_one();
    return;
  }
  if (!response.empty()) {
    std::string frame;
    if (AppendFrame(response, &frame).ok()) {
      SendResponse(conn, std::move(frame));
    }
  }
  ReleaseIngest(tenant, admitted_events);
}

Status Server::CheckByteQuota(TenantState* tenant, uint64_t events) {
  const uint64_t quota = tenant->config.quotas.max_resident_bytes;
  if (quota == 0 || tenant->config.id == 0) {
    return Status::Ok();
  }
  // Exact recount every kRecountEvents admitted events; in between, charge a
  // flat per-event estimate on top of the last recount. The quota is a
  // capacity guard, not an invoice — off by a few KiB is fine, scanning every
  // tenant stream per append is not.
  constexpr uint64_t kRecountEvents = 64;
  constexpr uint64_t kBytesPerEventEstimate = 16;
  uint64_t since =
      tenant->events_since_recount.fetch_add(events, std::memory_order_relaxed) + events;
  if (since >= kRecountEvents) {
    tenant->events_since_recount.store(0, std::memory_order_relaxed);
    uint64_t total = 0;
    for (StreamId sid : store_->ListStreams()) {
      if (TenantOfStream(sid) != tenant->config.id) {
        continue;
      }
      auto stream = store_->GetStream(sid);
      if (stream.ok()) {
        total += (*stream)->SizeBytes();
      }
    }
    tenant->resident_bytes.store(total, std::memory_order_relaxed);
    since = 0;
  }
  const uint64_t estimate =
      tenant->resident_bytes.load(std::memory_order_relaxed) + since * kBytesPerEventEstimate;
  if (estimate > quota) {
    return Status::ResourceExhausted("tenant byte quota exceeded (~" +
                                     std::to_string(estimate) + " of " +
                                     std::to_string(quota) + " bytes resident)");
  }
  return Status::Ok();
}

std::string Server::HandleRequest(TenantState* tenant, const RequestHeader& header, Reader& body,
                                  bool* defer_ack, Status* ingest_status) {
  Writer resp;
  resp.PutVarint(header.request_id);
  auto fail = [&](const Status& status) {
    RequestErrors().Inc();
    Writer err;
    err.PutVarint(header.request_id);
    EncodeStatus(status, err);
    return err.Release();
  };
  const uint32_t tenant_id = tenant->config.id;
  // Maps a wire (tenant-local) stream id into the store's namespace. The
  // legacy tenant keeps the identity mapping over the full 64-bit space; real
  // tenants get the top 16 bits, so a forged high-bit id is a denial, not a
  // way into a neighbor's namespace.
  auto map_id = [&](uint64_t local, StreamId* global) -> Status {
    if (tenant_id == 0) {
      *global = local;
      return Status::Ok();
    }
    if (local > kMaxLocalStreamId) {
      return Status::PermissionDenied("stream id outside tenant namespace");
    }
    *global = GlobalStreamId(tenant_id, local);
    return Status::Ok();
  };

  switch (header.op) {
    case Opcode::kPing: {
      EncodeStatus(Status::Ok(), resp);
      // Trailing health byte (DESIGN.md §15): 0 = ok, 1 = poisoned (the
      // backend is rejecting writes until reopen), 2 = draining (shutdown
      // imminent; fail over now). Old clients ignore trailing response
      // bytes; old servers send none and clients decode that as ok.
      uint8_t health = 0;
      if (store_->Poisoned()) {
        health = 1;
      } else if (draining()) {
        health = 2;
      }
      resp.PutU8(health);
      return resp.Release();
    }
    case Opcode::kCreateStream: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto config = StreamConfig::Deserialize(body);
      if (!config.ok()) {
        return fail(config.status());
      }
      StreamId created = 0;
      if (tenant_id == 0) {
        if (*id == 0) {
          auto sid = store_->CreateStream(std::move(*config));
          if (!sid.ok()) {
            return fail(sid.status());
          }
          created = *sid;
        } else {
          Status s = store_->CreateStreamWithId(*id, std::move(*config));
          if (!s.ok()) {
            return fail(s);
          }
          created = *id;
        }
      } else {
        if (*id > kMaxLocalStreamId) {
          return fail(Status::PermissionDenied("stream id outside tenant namespace"));
        }
        // Serialized so two concurrent auto-assigns in the same namespace
        // cannot race to the same local id; creates are rare.
        std::lock_guard<std::mutex> lock(create_mu_);
        uint64_t owned = 0;
        StreamId max_local = 0;
        for (StreamId sid : store_->ListStreams()) {
          if (TenantOfStream(sid) != tenant_id) {
            continue;
          }
          ++owned;
          max_local = std::max(max_local, LocalStreamId(sid));
        }
        const uint64_t max_streams = tenant->config.quotas.max_streams;
        if (max_streams > 0 && owned >= max_streams) {
          return fail(Status::ResourceExhausted("tenant stream quota exceeded (" +
                                                std::to_string(max_streams) + " streams)"));
        }
        const StreamId local = *id != 0 ? *id : max_local + 1;
        if (local > kMaxLocalStreamId) {
          return fail(Status::ResourceExhausted("tenant stream namespace exhausted"));
        }
        Status s = store_->CreateStreamWithId(GlobalStreamId(tenant_id, local),
                                              std::move(*config));
        if (!s.ok()) {
          return fail(s);
        }
        created = local;
      }
      if (Status s = store_->Flush(); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(created);
      return resp.Release();
    }
    case Opcode::kDeleteStream: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      StreamId target = 0;
      if (Status s = map_id(*id, &target); !s.ok()) {
        return fail(s);
      }
      if (Status s = store_->DeleteStream(target); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kListStreams: {
      std::vector<StreamId> ids = store_->ListStreams();
      if (tenant_id != 0) {
        std::vector<StreamId> mine;
        for (StreamId id : ids) {
          if (TenantOfStream(id) == tenant_id) {
            mine.push_back(LocalStreamId(id));
          }
        }
        ids = std::move(mine);
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(ids.size());
      for (StreamId id : ids) {
        resp.PutVarint(id);
      }
      return resp.Release();
    }
    case Opcode::kAppend: {
      *defer_ack = true;
      auto id = body.ReadVarint();
      if (!id.ok()) {
        *ingest_status = id.status();
        return fail(id.status());
      }
      auto ts = body.ReadSignedVarint();
      if (!ts.ok()) {
        *ingest_status = ts.status();
        return fail(ts.status());
      }
      auto value = body.ReadDouble();
      if (!value.ok()) {
        *ingest_status = value.status();
        return fail(value.status());
      }
      StreamId target = 0;
      Status s = map_id(*id, &target);
      if (s.ok()) {
        s = CheckByteQuota(tenant, 1);
      }
      if (s.ok()) {
        // Session replay dedup (DESIGN.md §15). The session lock spans
        // check + apply + update: a replay racing its original on another
        // worker serializes here instead of double-applying.
        std::shared_ptr<TenantState::SessionState> session;
        std::unique_lock<std::mutex> session_lock;
        if (header.has_session) {
          session = tenant->GetSession(header.session_id);
          session_lock = std::unique_lock<std::mutex>(session->mu);
          if (header.seq <= session->last_seq) {
            // Already applied: ack OK without re-applying. defer_ack stays
            // set, so even the duplicate's ack rides a covering flush.
            DupSuppressedTotal().Inc();
            FlightRecorder::Default().Record(FlightEventType::kNetDupSuppressed,
                                             header.session_id, header.seq);
            *ingest_status = Status::Ok();
            EncodeStatus(Status::Ok(), resp);
            return resp.Release();
          }
        }
        s = store_->Append(target, *ts, *value);
        if (s.ok() && session != nullptr) {
          session->last_seq = header.seq;
        }
      }
      *ingest_status = s;
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kAppendBatch: {
      *defer_ack = true;
      auto id = body.ReadVarint();
      if (!id.ok()) {
        *ingest_status = id.status();
        return fail(id.status());
      }
      auto events = DecodeEventBatch(body);
      if (!events.ok()) {
        *ingest_status = events.status();
        return fail(events.status());
      }
      StreamId target = 0;
      Status s = map_id(*id, &target);
      if (s.ok()) {
        s = CheckByteQuota(tenant, events->size());
      }
      if (s.ok()) {
        // Same session replay dedup as kAppend; one seq covers the whole
        // batch, which applies atomically from the session's point of view.
        std::shared_ptr<TenantState::SessionState> session;
        std::unique_lock<std::mutex> session_lock;
        if (header.has_session) {
          session = tenant->GetSession(header.session_id);
          session_lock = std::unique_lock<std::mutex>(session->mu);
          if (header.seq <= session->last_seq) {
            DupSuppressedTotal().Inc();
            FlightRecorder::Default().Record(FlightEventType::kNetDupSuppressed,
                                             header.session_id, header.seq);
            *ingest_status = Status::Ok();
            EncodeStatus(Status::Ok(), resp);
            return resp.Release();
          }
        }
        s = store_->AppendBatch(target, *events);
        if (s.ok() && session != nullptr) {
          session->last_seq = header.seq;
        }
      }
      *ingest_status = s;
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kQuery: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto spec = DecodeQuerySpec(body);
      if (!spec.ok()) {
        return fail(spec.status());
      }
      StreamId target = 0;
      if (Status s = map_id(*id, &target); !s.ok()) {
        return fail(s);
      }
      auto result = store_->Query(target, *spec);
      if (!result.ok()) {
        return fail(result.status());
      }
      EncodeStatus(Status::Ok(), resp);
      std::string trace;
      if (spec->collect_trace && result->trace != nullptr) {
        trace = result->trace->Render();
      }
      EncodeQueryResult(*result, trace, resp);
      return resp.Release();
    }
    case Opcode::kQueryAggregate: {
      auto n = body.ReadVarint();
      if (!n.ok()) {
        return fail(n.status());
      }
      if (*n > body.remaining()) {  // >= 1 byte per id on the wire
        return fail(Status::Corruption("stream-id count exceeds payload"));
      }
      std::vector<StreamId> ids;
      ids.reserve(static_cast<size_t>(*n));
      for (uint64_t i = 0; i < *n; ++i) {
        auto id = body.ReadVarint();
        if (!id.ok()) {
          return fail(id.status());
        }
        StreamId target = 0;
        if (Status s = map_id(*id, &target); !s.ok()) {
          return fail(s);
        }
        ids.push_back(target);
      }
      auto spec = DecodeQuerySpec(body);
      if (!spec.ok()) {
        return fail(spec.status());
      }
      auto result = store_->QueryAggregate(ids, *spec);
      if (!result.ok()) {
        return fail(result.status());
      }
      EncodeStatus(Status::Ok(), resp);
      std::string trace;
      if (spec->collect_trace && result->trace != nullptr) {
        trace = result->trace->Render();
      }
      EncodeQueryResult(*result, trace, resp);
      return resp.Release();
    }
    case Opcode::kBeginLandmark:
    case Opcode::kEndLandmark: {
      auto id = body.ReadVarint();
      if (!id.ok()) {
        return fail(id.status());
      }
      auto ts = body.ReadSignedVarint();
      if (!ts.ok()) {
        return fail(ts.status());
      }
      StreamId target = 0;
      if (Status s = map_id(*id, &target); !s.ok()) {
        return fail(s);
      }
      Status s = header.op == Opcode::kBeginLandmark ? store_->BeginLandmark(target, *ts)
                                                     : store_->EndLandmark(target, *ts);
      if (!s.ok()) {
        return fail(s);
      }
      if (Status flush = store_->Flush(); !flush.ok()) {
        return fail(flush);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kFlush: {
      if (Status s = store_->Flush(); !s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
    case Opcode::kScrub: {
      auto repair = body.ReadU8();
      if (!repair.ok()) {
        return fail(repair.status());
      }
      ScrubReport report;
      Status s = store_->Scrub(*repair != 0, &report);
      if (!s.ok()) {
        return fail(s);
      }
      EncodeStatus(Status::Ok(), resp);
      EncodeScrubReport(report, resp);
      return resp.Release();
    }
    case Opcode::kStats: {
      auto format = body.ReadU8();
      if (!format.ok()) {
        return fail(format.status());
      }
      if (*format > 1) {
        return fail(Status::Corruption("unknown stats format"));
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutString(RenderStats(store_, /*json=*/*format == 0));
      return resp.Release();
    }
    case Opcode::kStreamInfo: {
      auto want = body.ReadVarint();
      if (!want.ok()) {
        return fail(want.status());
      }
      std::vector<StreamId> ids;
      if (*want != 0) {
        StreamId target = 0;
        if (Status s = map_id(*want, &target); !s.ok()) {
          return fail(s);
        }
        ids.push_back(target);
      } else {
        ids = store_->ListStreams();
        if (tenant_id != 0) {
          std::erase_if(ids, [&](StreamId id) { return TenantOfStream(id) != tenant_id; });
        }
      }
      std::vector<StreamInfo> rows;
      for (StreamId id : ids) {
        auto stream = store_->GetStream(id);
        if (!stream.ok()) {
          return fail(stream.status());
        }
        StreamInfo info;
        info.id = tenant_id != 0 ? LocalStreamId(id) : id;
        info.element_count = (*stream)->element_count();
        info.landmark_element_count = (*stream)->landmark_element_count();
        info.window_count = (*stream)->window_count();
        info.landmark_window_count = (*stream)->landmark_window_count();
        info.size_bytes = (*stream)->SizeBytes();
        info.decay = (*stream)->config().decay->Describe();
        rows.push_back(std::move(info));
      }
      EncodeStatus(Status::Ok(), resp);
      resp.PutVarint(rows.size());
      for (const StreamInfo& row : rows) {
        EncodeStreamInfo(row, resp);
      }
      return resp.Release();
    }
    case Opcode::kHello: {
      // The loop thread intercepts hellos before dispatch; if one lands here
      // anyway it is a no-op on an already-resolved tenant.
      EncodeStatus(Status::Ok(), resp);
      return resp.Release();
    }
  }
  return fail(Status::Unimplemented("unhandled opcode"));
}

// ----------------------------------------------------------- durability acks

void Server::AckThread() {
  for (;;) {
    std::vector<PendingAck> batch;
    {
      std::unique_lock<std::mutex> lock(ack_mu_);
      ack_cv_.wait(lock, [this] { return ack_stop_ || !pending_acks_.empty(); });
      if (pending_acks_.empty() && ack_stop_) {
        return;
      }
      batch.swap(pending_acks_);
    }
    if (abort_.load(std::memory_order_acquire)) {
      // Hard kill: never acked, allowed to be lost. Release the budget so
      // teardown doesn't hinge on it.
      for (const PendingAck& ack : batch) {
        ReleaseIngest(ack.tenant, ack.events);
      }
      continue;
    }
    Status flush;
    {
      ScopedTimer timer(AckFlushUs());
      flush = store_->Flush();
    }
    AckBatch().Record(batch.size());
    for (PendingAck& ack : batch) {
      Writer w;
      w.PutVarint(ack.request_id);
      EncodeStatus(flush, w);
      std::string frame;
      if (AppendFrame(w.data(), &frame).ok()) {
        SendResponse(ack.conn, std::move(frame));
      }
      ReleaseIngest(ack.tenant, ack.events);
    }
  }
}

}  // namespace ss::net
