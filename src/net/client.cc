#include "src/net/client.h"

#include <cstring>

namespace ss::net {

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host, uint16_t port) {
  return Connect(host, port, ClientOptions{});
}

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host, uint16_t port,
                                                  const ClientOptions& options) {
  std::unique_ptr<Client> client(new Client());
  client->options_ = options;
  SS_ASSIGN_OR_RETURN(client->fd_, ConnectTcpTimeout(host, port, options.connect_timeout_ms));
  return client;
}

uint64_t Client::IoDeadline() const {
  return options_.rpc_timeout_ms > 0 ? MonotonicMicros() + options_.rpc_timeout_ms * 1000 : 0;
}

StatusOr<uint64_t> Client::SendRequest(Opcode op, const Writer& body) {
  const uint64_t id = next_id_++;
  RequestHeader header;
  header.request_id = id;
  header.op = op;
  if (options_.deadline_ms > 0) {
    header.has_deadline = true;
    header.deadline_ms = options_.deadline_ms;
  }
  if (session_id_ != 0 && (op == Opcode::kAppend || op == Opcode::kAppendBatch)) {
    header.has_session = true;
    header.session_id = session_id_;
    header.seq = next_seq_++;
  }
  Writer payload;
  EncodeRequestHeader(header, payload);
  payload.PutRaw(body.data().data(), body.data().size());
  std::string frame;
  SS_RETURN_IF_ERROR(AppendFrame(payload.data(), &frame));
  SS_RETURN_IF_ERROR(WriteFullyDeadline(fd_.get(), frame, IoDeadline()));
  ++inflight_;
  return id;
}

Status Client::ReceiveFrame(std::string* payload) {
  const uint64_t deadline = IoDeadline();
  char prefix[4];
  SS_RETURN_IF_ERROR(ReadFullyDeadline(fd_.get(), prefix, sizeof(prefix), deadline));
  uint32_t len;
  std::memcpy(&len, prefix, sizeof(len));
  // The server is trusted more than the wild internet, but a corrupt length
  // still must not drive a giant allocation.
  if (len == 0 || len > kMaxFrameBytes) {
    return Status::Corruption("response frame length out of range: " + std::to_string(len));
  }
  payload->resize(len);
  SS_RETURN_IF_ERROR(ReadFullyDeadline(fd_.get(), payload->data(), len, deadline));
  if (inflight_ > 0) {
    --inflight_;
  }
  return Status::Ok();
}

Status Client::Transact(Opcode op, const Writer& body, std::string* resp_body) {
  SS_ASSIGN_OR_RETURN(uint64_t id, SendRequest(op, body));
  std::string payload;
  SS_RETURN_IF_ERROR(ReceiveFrame(&payload));
  Reader reader(payload);
  SS_ASSIGN_OR_RETURN(uint64_t echoed, reader.ReadVarint());
  if (echoed != id) {
    return Status::Internal("response id " + std::to_string(echoed) +
                            " does not match request id " + std::to_string(id) +
                            " (pipelined acks outstanding?)");
  }
  Status remote = Status::Ok();
  SS_RETURN_IF_ERROR(DecodeStatus(reader, &remote));
  SS_RETURN_IF_ERROR(remote);
  if (resp_body != nullptr) {
    SS_ASSIGN_OR_RETURN(std::string_view rest, reader.ReadRaw(reader.remaining()));
    resp_body->assign(rest);
  }
  return Status::Ok();
}

Status Client::Hello(uint32_t tenant, std::string_view token) {
  Writer body;
  body.PutVarint(tenant);
  body.PutString(token);
  return Transact(Opcode::kHello, body, nullptr);
}

Status Client::Ping() { return Transact(Opcode::kPing, Writer(), nullptr); }

StatusOr<ServerHealth> Client::Health() {
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kPing, Writer(), &resp));
  if (resp.empty()) {
    return ServerHealth::kOk;  // legacy server: no health byte
  }
  Reader reader(resp);
  SS_ASSIGN_OR_RETURN(uint8_t health, reader.ReadU8());
  if (health > static_cast<uint8_t>(ServerHealth::kDraining)) {
    return Status::Corruption("unknown health state: " + std::to_string(health));
  }
  return static_cast<ServerHealth>(health);
}

StatusOr<StreamId> Client::CreateStream(StreamId id, const StreamConfig& config) {
  Writer body;
  body.PutVarint(id);
  config.Serialize(body);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kCreateStream, body, &resp));
  Reader reader(resp);
  SS_ASSIGN_OR_RETURN(uint64_t created, reader.ReadVarint());
  return StreamId{created};
}

Status Client::DeleteStream(StreamId id) {
  Writer body;
  body.PutVarint(id);
  return Transact(Opcode::kDeleteStream, body, nullptr);
}

StatusOr<std::vector<StreamId>> Client::ListStreams() {
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kListStreams, Writer(), &resp));
  Reader reader(resp);
  SS_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
  if (n > reader.remaining()) {  // >= 1 byte per id
    return Status::Corruption("stream-id count exceeds payload");
  }
  std::vector<StreamId> ids;
  ids.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    ids.push_back(id);
  }
  return ids;
}

Status Client::Append(StreamId id, Timestamp ts, double value) {
  Writer body;
  body.PutVarint(id);
  body.PutSignedVarint(ts);
  body.PutDouble(value);
  return Transact(Opcode::kAppend, body, nullptr);
}

Status Client::AppendBatch(StreamId id, std::span<const Event> events) {
  Writer body;
  body.PutVarint(id);
  EncodeEventBatch(events, body);
  return Transact(Opcode::kAppendBatch, body, nullptr);
}

StatusOr<WireQueryResult> Client::Query(StreamId id, const QuerySpec& spec) {
  Writer body;
  body.PutVarint(id);
  EncodeQuerySpec(spec, body);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kQuery, body, &resp));
  Reader reader(resp);
  return DecodeQueryResult(reader);
}

StatusOr<WireQueryResult> Client::QueryAggregate(std::span<const StreamId> ids,
                                                 const QuerySpec& spec) {
  Writer body;
  body.PutVarint(ids.size());
  for (StreamId id : ids) {
    body.PutVarint(id);
  }
  EncodeQuerySpec(spec, body);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kQueryAggregate, body, &resp));
  Reader reader(resp);
  return DecodeQueryResult(reader);
}

Status Client::BeginLandmark(StreamId id, Timestamp ts) {
  Writer body;
  body.PutVarint(id);
  body.PutSignedVarint(ts);
  return Transact(Opcode::kBeginLandmark, body, nullptr);
}

Status Client::EndLandmark(StreamId id, Timestamp ts) {
  Writer body;
  body.PutVarint(id);
  body.PutSignedVarint(ts);
  return Transact(Opcode::kEndLandmark, body, nullptr);
}

Status Client::Flush() { return Transact(Opcode::kFlush, Writer(), nullptr); }

StatusOr<ScrubReport> Client::Scrub(bool repair) {
  Writer body;
  body.PutU8(repair ? 1 : 0);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kScrub, body, &resp));
  Reader reader(resp);
  return DecodeScrubReport(reader);
}

StatusOr<std::string> Client::Stats(bool prometheus) {
  Writer body;
  body.PutU8(prometheus ? 1 : 0);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kStats, body, &resp));
  Reader reader(resp);
  SS_ASSIGN_OR_RETURN(std::string_view text, reader.ReadString());
  return std::string(text);
}

StatusOr<std::vector<StreamInfo>> Client::StreamInfos(StreamId id) {
  Writer body;
  body.PutVarint(id);
  std::string resp;
  SS_RETURN_IF_ERROR(Transact(Opcode::kStreamInfo, body, &resp));
  Reader reader(resp);
  SS_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
  if (n > reader.remaining()) {
    return Status::Corruption("stream-info count exceeds payload");
  }
  std::vector<StreamInfo> rows;
  rows.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(StreamInfo info, DecodeStreamInfo(reader));
    rows.push_back(std::move(info));
  }
  return rows;
}

StatusOr<uint64_t> Client::SendAppend(StreamId id, Timestamp ts, double value) {
  Writer body;
  body.PutVarint(id);
  body.PutSignedVarint(ts);
  body.PutDouble(value);
  return SendRequest(Opcode::kAppend, body);
}

StatusOr<uint64_t> Client::SendAppendBatch(StreamId id, std::span<const Event> events) {
  Writer body;
  body.PutVarint(id);
  EncodeEventBatch(events, body);
  return SendRequest(Opcode::kAppendBatch, body);
}

StatusOr<Client::Ack> Client::ReceiveAck() {
  std::string payload;
  SS_RETURN_IF_ERROR(ReceiveFrame(&payload));
  Reader reader(payload);
  Ack ack;
  SS_ASSIGN_OR_RETURN(ack.request_id, reader.ReadVarint());
  SS_RETURN_IF_ERROR(DecodeStatus(reader, &ack.status));
  return ack;
}

}  // namespace ss::net
