#include "src/net/retry_client.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "src/net/socket.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ss::net {
namespace {

Counter& RetriesTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_retries_total");
  return c;
}
Counter& ReconnectsTotal() {
  static Counter& c = MetricRegistry::Default().GetCounter("ss_net_reconnects_total");
  return c;
}

// Process-unique session ids: a monotonic instant mixed with a counter, so
// two clients in one process (or a restarted process hitting the same
// server) cannot collide on the server's per-(tenant, session) dedup table.
uint64_t NewSessionId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = (MonotonicMicros() << 16) ^ (counter.fetch_add(1) + 1);
  return id != 0 ? id : 1;  // 0 means "no session" on the wire
}

}  // namespace

RetryingClient::RetryingClient(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      session_id_(NewSessionId()),
      rng_(options_.rng_seed) {}

StatusOr<std::unique_ptr<RetryingClient>> RetryingClient::Connect(const std::string& host,
                                                                  uint16_t port,
                                                                  const ClientOptions& options) {
  std::unique_ptr<RetryingClient> client(new RetryingClient(host, port, options));
  Status last = Status::Ok();
  for (uint32_t attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) {
      client->Backoff(attempt);
    }
    last = client->EnsureConnected();
    if (last.ok()) {
      return client;
    }
  }
  return last;
}

bool RetryingClient::IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIoError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCorruption:  // mangled response stream: resync impossible
    case StatusCode::kInternal:    // request/response id mismatch
      return true;
    default:
      return false;
  }
}

void RetryingClient::Backoff(uint32_t attempt) {
  uint64_t delay = options_.backoff_initial_ms;
  for (uint32_t i = 1; i < attempt && delay < options_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_max_ms);
  if (options_.backoff_jitter > 0 && delay > 0) {
    // delay * (1 +/- jitter), deterministic under the seeded rng.
    const double spread = options_.backoff_jitter * static_cast<double>(delay);
    const double offset = (rng_.NextDouble() * 2.0 - 1.0) * spread;
    const double jittered = static_cast<double>(delay) + offset;
    delay = jittered < 1.0 ? 1 : static_cast<uint64_t>(jittered);
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

Status RetryingClient::EnsureConnected() {
  if (conn_ != nullptr) {
    return Status::Ok();
  }
  req_to_seq_.clear();  // request ids are per-connection
  auto conn = Client::Connect(host_, port_, options_);
  if (!conn.ok()) {
    return conn.status();
  }
  conn_ = std::move(*conn);
  conn_->SetSession(session_id_);
  conn_->SetNextSeq(next_seq_);
  if (ever_connected_) {
    // Only RE-connects count: the first connection of a client's life is not
    // a recovery event.
    ++reconnects_;
    ReconnectsTotal().Inc();
    FlightRecorder::Default().Record(FlightEventType::kNetReconnect, reconnects_,
                                     pending_.size());
  }
  ever_connected_ = true;
  if (hello_done_) {
    Status s = conn_->Hello(hello_tenant_, hello_token_);
    if (!s.ok()) {
      conn_.reset();
      return s;
    }
  }
  return Status::Ok();
}

Status RetryingClient::Call(RetryMode mode, Opcode op,
                            const std::function<Status(Client&, bool)>& fn) {
  Status last = Status::Ok();
  bool sent_once = false;
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      RetriesTotal().Inc();
      FlightRecorder::Default().Record(FlightEventType::kNetRetry,
                                       static_cast<uint64_t>(op), attempt);
      Backoff(attempt);
    }
    Status conn_status = EnsureConnected();
    if (!conn_status.ok()) {
      last = conn_status;  // connect failures are always retryable
      continue;
    }
    Status s = fn(*conn_, sent_once);
    if (s.ok() || !IsTransient(s)) {
      return s;
    }
    // Transport failure: the connection is unusable either way.
    last = s;
    conn_.reset();
    sent_once = true;
    if (mode == RetryMode::kConnectOnly) {
      return s;  // the request may have reached the server; not safe to resend
    }
  }
  return last;
}

Status RetryingClient::Hello(uint32_t tenant, std::string_view token) {
  hello_tenant_ = tenant;
  hello_token_.assign(token);
  // Hello is idempotent per fresh connection (EnsureConnected re-runs it);
  // on an already-authenticated connection a second hello is rejected, so
  // run it through the resend loop only when it has not succeeded yet.
  Status s = Call(RetryMode::kResend, Opcode::kHello, [&](Client& c, bool) {
    return hello_done_ ? Status::Ok() : c.Hello(tenant, std::string_view(hello_token_));
  });
  if (s.ok()) {
    hello_done_ = true;
  }
  return s;
}

Status RetryingClient::Ping() {
  return Call(RetryMode::kResend, Opcode::kPing, [](Client& c, bool) { return c.Ping(); });
}

StatusOr<ServerHealth> RetryingClient::Health() {
  ServerHealth out = ServerHealth::kOk;
  Status s = Call(RetryMode::kResend, Opcode::kPing, [&](Client& c, bool) {
    auto result = c.Health();
    if (!result.ok()) {
      return result.status();
    }
    out = *result;
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return out;
}

StatusOr<StreamId> RetryingClient::CreateStream(StreamId id, const StreamConfig& config) {
  StreamId created = 0;
  // Auto-assigned ids are not idempotent (a resend could create a second
  // stream); explicit ids are, with kAlreadyExists on a retry meaning the
  // first attempt won.
  const RetryMode mode = id == 0 ? RetryMode::kConnectOnly : RetryMode::kResend;
  Status s = Call(mode, Opcode::kCreateStream, [&](Client& c, bool is_retry) {
    auto result = c.CreateStream(id, config);
    if (!result.ok()) {
      if (is_retry && id != 0 && result.status().code() == StatusCode::kAlreadyExists) {
        created = id;  // an earlier attempt's request landed
        return Status::Ok();
      }
      return result.status();
    }
    created = *result;
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return created;
}

Status RetryingClient::DeleteStream(StreamId id) {
  return Call(RetryMode::kResend, Opcode::kDeleteStream, [&](Client& c, bool is_retry) {
    Status s = c.DeleteStream(id);
    if (is_retry && s.code() == StatusCode::kNotFound) {
      return Status::Ok();  // an earlier attempt's request landed
    }
    return s;
  });
}

StatusOr<std::vector<StreamId>> RetryingClient::ListStreams() {
  std::vector<StreamId> out;
  Status s = Call(RetryMode::kResend, Opcode::kListStreams, [&](Client& c, bool) {
    auto result = c.ListStreams();
    if (!result.ok()) {
      return result.status();
    }
    out = std::move(*result);
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return out;
}

Status RetryingClient::Append(StreamId id, Timestamp ts, double value) {
  // Pin the session seq on the first attempt so every resend carries the
  // same one and the server's dedup table makes the retry exactly-once.
  const uint64_t seq = next_seq_++;
  return Call(RetryMode::kResend, Opcode::kAppend, [&](Client& c, bool) {
    c.SetNextSeq(seq);
    return c.Append(id, ts, value);
  });
}

Status RetryingClient::AppendBatch(StreamId id, std::span<const Event> events) {
  const uint64_t seq = next_seq_++;
  return Call(RetryMode::kResend, Opcode::kAppendBatch, [&](Client& c, bool) {
    c.SetNextSeq(seq);
    return c.AppendBatch(id, events);
  });
}

StatusOr<WireQueryResult> RetryingClient::Query(StreamId id, const QuerySpec& spec) {
  std::optional<WireQueryResult> out;
  Status s = Call(RetryMode::kResend, Opcode::kQuery, [&](Client& c, bool) {
    auto result = c.Query(id, spec);
    if (!result.ok()) {
      return result.status();
    }
    out = std::move(*result);
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return std::move(*out);
}

StatusOr<WireQueryResult> RetryingClient::QueryAggregate(std::span<const StreamId> ids,
                                                         const QuerySpec& spec) {
  std::optional<WireQueryResult> out;
  Status s = Call(RetryMode::kResend, Opcode::kQueryAggregate, [&](Client& c, bool) {
    auto result = c.QueryAggregate(ids, spec);
    if (!result.ok()) {
      return result.status();
    }
    out = std::move(*result);
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return std::move(*out);
}

Status RetryingClient::BeginLandmark(StreamId id, Timestamp ts) {
  // Not idempotent (a second begin on an open landmark is an error); only
  // connect-phase failures are retried.
  return Call(RetryMode::kConnectOnly, Opcode::kBeginLandmark,
              [&](Client& c, bool) { return c.BeginLandmark(id, ts); });
}

Status RetryingClient::EndLandmark(StreamId id, Timestamp ts) {
  return Call(RetryMode::kConnectOnly, Opcode::kEndLandmark,
              [&](Client& c, bool) { return c.EndLandmark(id, ts); });
}

Status RetryingClient::Flush() {
  return Call(RetryMode::kResend, Opcode::kFlush, [](Client& c, bool) { return c.Flush(); });
}

StatusOr<ScrubReport> RetryingClient::Scrub(bool repair) {
  std::optional<ScrubReport> out;
  Status s = Call(RetryMode::kResend, Opcode::kScrub, [&](Client& c, bool) {
    auto result = c.Scrub(repair);
    if (!result.ok()) {
      return result.status();
    }
    out = *result;
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return *out;
}

StatusOr<std::string> RetryingClient::Stats(bool prometheus) {
  std::optional<std::string> out;
  Status s = Call(RetryMode::kResend, Opcode::kStats, [&](Client& c, bool) {
    auto result = c.Stats(prometheus);
    if (!result.ok()) {
      return result.status();
    }
    out = std::move(*result);
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return std::move(*out);
}

StatusOr<std::vector<StreamInfo>> RetryingClient::StreamInfos(StreamId id) {
  std::optional<std::vector<StreamInfo>> out;
  Status s = Call(RetryMode::kResend, Opcode::kStreamInfo, [&](Client& c, bool) {
    auto result = c.StreamInfos(id);
    if (!result.ok()) {
      return result.status();
    }
    out = std::move(*result);
    return Status::Ok();
  });
  if (!s.ok()) {
    return s;
  }
  return std::move(*out);
}

// ------------------------------------------------------------ pipelined ingest

Status RetryingClient::SendPending(const PendingIngest& p) {
  conn_->SetNextSeq(p.seq);
  StatusOr<uint64_t> id = p.op == Opcode::kAppend
                              ? conn_->SendAppend(p.stream, p.ts, p.value)
                              : conn_->SendAppendBatch(p.stream, p.events);
  if (!id.ok()) {
    return id.status();
  }
  req_to_seq_[*id] = p.seq;
  return Status::Ok();
}

Status RetryingClient::ReplayPending() {
  for (const PendingIngest& p : pending_) {
    SS_RETURN_IF_ERROR(SendPending(p));
  }
  return Status::Ok();
}

StatusOr<uint64_t> RetryingClient::SendAppend(StreamId id, Timestamp ts, double value) {
  PendingIngest p;
  p.seq = next_seq_++;
  p.op = Opcode::kAppend;
  p.stream = id;
  p.ts = ts;
  p.value = value;
  pending_.push_back(p);
  // A failed send is absorbed: the request is pending and ReceiveAck's
  // recovery loop replays it. The caller only needs the seq.
  if (conn_ != nullptr && !SendPending(pending_.back()).ok()) {
    conn_.reset();
  }
  return p.seq;
}

StatusOr<uint64_t> RetryingClient::SendAppendBatch(StreamId id, std::span<const Event> events) {
  PendingIngest p;
  p.seq = next_seq_++;
  p.op = Opcode::kAppendBatch;
  p.stream = id;
  p.events.assign(events.begin(), events.end());
  pending_.push_back(std::move(p));
  if (conn_ != nullptr && !SendPending(pending_.back()).ok()) {
    conn_.reset();
  }
  return pending_.back().seq;
}

StatusOr<RetryingClient::Ack> RetryingClient::ReceiveAck() {
  if (pending_.empty()) {
    return Status::FailedPrecondition("no pipelined ingest in flight");
  }
  Status last = Status::Ok();
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      RetriesTotal().Inc();
      FlightRecorder::Default().Record(FlightEventType::kNetRetry,
                                       static_cast<uint64_t>(Opcode::kAppend), attempt);
      Backoff(attempt);
    }
    if (conn_ == nullptr) {
      Status s = EnsureConnected();
      if (s.ok()) {
        s = ReplayPending();
      }
      if (!s.ok()) {
        conn_.reset();
        last = s;
        continue;
      }
    }
    auto ack = conn_->ReceiveAck();
    if (!ack.ok()) {
      if (!IsTransient(ack.status())) {
        return ack.status();
      }
      last = ack.status();
      conn_.reset();
      continue;
    }
    auto it = req_to_seq_.find(ack->request_id);
    if (it == req_to_seq_.end()) {
      // An ack for a request id we no longer track (e.g. from before a
      // replay). Ignore and read the next frame without burning an attempt.
      --attempt;
      continue;
    }
    Ack out;
    out.seq = it->second;
    out.status = ack->status;
    req_to_seq_.erase(it);
    for (auto p = pending_.begin(); p != pending_.end(); ++p) {
      if (p->seq == out.seq) {
        pending_.erase(p);
        break;
      }
    }
    return out;
  }
  return last;
}

}  // namespace ss::net
