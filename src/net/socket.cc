#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>

namespace ss::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

std::atomic<NetOps*> g_net_ops{nullptr};

// Waits until `fd` is ready for the given poll events, retrying EINTR.
// deadline_us == 0 waits forever; otherwise kDeadlineExceeded once the
// absolute MonotonicMicros() instant passes.
Status PollFor(int fd, short events, uint64_t deadline_us = 0) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_us != 0) {
      const uint64_t now = MonotonicMicros();
      if (now >= deadline_us) {
        return Status::DeadlineExceeded("deadline expired while waiting on socket");
      }
      // Round up so a sub-millisecond remainder still gets one bounded wait.
      const uint64_t remaining_ms = (deadline_us - now + 999) / 1000;
      timeout_ms = static_cast<int>(std::min<uint64_t>(remaining_ms, 60'000));
    }
    int rc = GetNetOps().PollOne(fd, events, timeout_ms);
    if (rc > 0) {
      return Status::Ok();
    }
    if (rc == 0) {
      if (deadline_us == 0) {
        continue;  // spurious zero without a deadline; wait again
      }
      return Status::DeadlineExceeded("deadline expired while waiting on socket");
    }
    if (errno != EINTR) {
      return Errno("poll");
    }
  }
}

}  // namespace

int NetOps::Connect(int fd, const struct sockaddr* addr, unsigned int addrlen) {
  return ::connect(fd, addr, static_cast<socklen_t>(addrlen));
}

long NetOps::Send(int fd, const void* buf, size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

long NetOps::Recv(int fd, void* buf, size_t len) { return ::recv(fd, buf, len, 0); }

int NetOps::PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_ms);
}

int NetOps::Close(int fd) { return ::close(fd); }

void SetNetOpsForTest(NetOps* ops) { g_net_ops.store(ops, std::memory_order_release); }

NetOps& GetNetOps() {
  static NetOps default_ops;
  NetOps* ops = g_net_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : default_ops;
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void Fd::Reset() {
  if (fd_ >= 0) {
    // POSIX leaves the fd state unspecified after EINTR from close; retrying
    // on Linux is harmless (the fd is gone either way) and EBADF is ignored.
    // Routed through NetOps so fault schedules can unregister the fd before
    // the kernel recycles its number.
    while (GetNetOps().Close(fd_) < 0 && errno == EINTR) {
    }
    fd_ = -1;
  }
}

StatusOr<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Errno("listen");
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

namespace {

StatusOr<struct sockaddr_in> ResolveHost(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Fall back to resolution for non-numeric hosts ("localhost").
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr) {
      return Status::InvalidArgument("cannot resolve host: " + host);
    }
    addr.sin_addr = reinterpret_cast<struct sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  return addr;
}

}  // namespace

StatusOr<Fd> ConnectTcp(const std::string& host, uint16_t port) {
  SS_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveHost(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  for (;;) {
    if (GetNetOps().Connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;  // retry the whole connect; Linux completes it either way
    }
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd.get());
  return fd;
}

StatusOr<Fd> ConnectTcpTimeout(const std::string& host, uint16_t port, uint64_t timeout_ms) {
  if (timeout_ms == 0) {
    return ConnectTcp(host, port);
  }
  SS_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveHost(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  SS_RETURN_IF_ERROR(SetNonBlocking(fd.get(), true));
  const uint64_t deadline_us = MonotonicMicros() + timeout_ms * 1000;
  for (;;) {
    if (GetNetOps().Connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr)) == 0) {
      break;  // connected immediately (loopback often does)
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EINPROGRESS || errno == EALREADY) {
      Status ready = PollFor(fd.get(), POLLOUT, deadline_us);
      if (!ready.ok()) {
        return ready.code() == StatusCode::kDeadlineExceeded
                   ? Status::DeadlineExceeded("connect " + host + ":" + std::to_string(port) +
                                              " timed out after " + std::to_string(timeout_ms) +
                                              " ms")
                   : ready;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        return Errno("getsockopt(SO_ERROR)");
      }
      if (err != 0) {
        errno = err;
        return Errno("connect " + host + ":" + std::to_string(port));
      }
      break;
    }
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SS_RETURN_IF_ERROR(SetNonBlocking(fd.get(), false));
  SetNoDelay(fd.get());
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl(F_GETFL)");
  }
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status WriteFully(int fd, std::string_view data) { return WriteFullyDeadline(fd, data, 0); }

Status WriteFullyDeadline(int fd, std::string_view data, uint64_t deadline_us) {
  size_t off = 0;
  while (off < data.size()) {
    if (deadline_us != 0) {
      // The fd is usually blocking; a full send buffer would then block past
      // any deadline. Wait for writability first, bounded.
      SS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline_us));
    }
    long n = GetNetOps().Send(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline_us));
      continue;
    }
    return Errno("send");
  }
  return Status::Ok();
}

StatusOr<size_t> ReadSome(int fd, char* buf, size_t n) {
  return ReadSomeDeadline(fd, buf, n, 0);
}

StatusOr<size_t> ReadSomeDeadline(int fd, char* buf, size_t n, uint64_t deadline_us) {
  for (;;) {
    if (deadline_us != 0) {
      // Readiness first: a blocking fd would otherwise sit in recv forever
      // against a silent (black-holed) peer.
      SS_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline_us));
    }
    long r = GetNetOps().Recv(fd, buf, n);
    if (r >= 0) {
      return static_cast<size_t>(r);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SS_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline_us));
      continue;
    }
    return Errno("recv");
  }
}

Status ReadFully(int fd, char* buf, size_t n) { return ReadFullyDeadline(fd, buf, n, 0); }

Status ReadFullyDeadline(int fd, char* buf, size_t n, uint64_t deadline_us) {
  size_t off = 0;
  while (off < n) {
    SS_ASSIGN_OR_RETURN(size_t r, ReadSomeDeadline(fd, buf + off, n - off, deadline_us));
    if (r == 0) {
      return Status::IoError("connection closed mid-read (eof)");
    }
    off += r;
  }
  return Status::Ok();
}

}  // namespace ss::net
