#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace ss::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Waits (indefinitely) until `fd` is ready for the given poll events,
// retrying EINTR.
Status PollFor(int fd, short events) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) {
      return Status::Ok();
    }
    if (rc < 0 && errno != EINTR) {
      return Errno("poll");
    }
  }
}

}  // namespace

void Fd::Reset() {
  if (fd_ >= 0) {
    // POSIX leaves the fd state unspecified after EINTR from close; retrying
    // on Linux is harmless (the fd is gone either way) and EBADF is ignored.
    while (::close(fd_) < 0 && errno == EINTR) {
    }
    fd_ = -1;
  }
}

StatusOr<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Errno("listen");
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<Fd> ConnectTcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Fall back to resolution for non-numeric hosts ("localhost").
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr) {
      return Status::InvalidArgument("cannot resolve host: " + host);
    }
    addr.sin_addr = reinterpret_cast<struct sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;  // retry the whole connect; Linux completes it either way
    }
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd.get());
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl(F_GETFL)");
  }
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status WriteFully(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SS_RETURN_IF_ERROR(PollFor(fd, POLLOUT));
      continue;
    }
    return Errno("send");
  }
  return Status::Ok();
}

StatusOr<size_t> ReadSome(int fd, char* buf, size_t n) {
  for (;;) {
    ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) {
      return static_cast<size_t>(r);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SS_RETURN_IF_ERROR(PollFor(fd, POLLIN));
      continue;
    }
    return Errno("recv");
  }
}

Status ReadFully(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    SS_ASSIGN_OR_RETURN(size_t r, ReadSome(fd, buf + off, n - off));
    if (r == 0) {
      return Status::IoError("connection closed mid-read (eof)");
    }
    off += r;
  }
  return Status::Ok();
}

}  // namespace ss::net
