// Blocking client for the sserver wire protocol (src/net/protocol.h). One
// Client owns one TCP connection and is NOT thread-safe; open one per thread.
//
// Two usage styles:
//   - Synchronous RPCs (Ping/CreateStream/Append/Query/...): one frame out,
//     one frame back. This is what sstool --connect uses.
//   - Pipelined ingest (SendAppend/SendAppendBatch + ReceiveAck): queue many
//     requests without waiting, then drain acks and match them by the echoed
//     request_id. bench_net drives the server this way.
#ifndef SUMMARYSTORE_SRC_NET_CLIENT_H_
#define SUMMARYSTORE_SRC_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/stream.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace ss::net {

class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- synchronous RPCs ----------------------------------------------------
  // Authenticates this connection as `tenant` (multi-tenant servers reject
  // every other request until a hello succeeds; legacy servers accept and
  // ignore it). Must be the first RPC on the connection.
  Status Hello(uint32_t tenant, std::string_view token);
  Status Ping();
  // id 0 asks the server to assign one; returns the created id.
  StatusOr<StreamId> CreateStream(StreamId id, const StreamConfig& config);
  Status DeleteStream(StreamId id);
  StatusOr<std::vector<StreamId>> ListStreams();
  Status Append(StreamId id, Timestamp ts, double value);
  Status AppendBatch(StreamId id, std::span<const Event> events);
  StatusOr<WireQueryResult> Query(StreamId id, const QuerySpec& spec);
  StatusOr<WireQueryResult> QueryAggregate(std::span<const StreamId> ids, const QuerySpec& spec);
  Status BeginLandmark(StreamId id, Timestamp ts);
  Status EndLandmark(StreamId id, Timestamp ts);
  Status Flush();
  StatusOr<ScrubReport> Scrub(bool repair);
  // format: true = Prometheus text, false = JSON.
  StatusOr<std::string> Stats(bool prometheus);
  // id 0 = all streams.
  StatusOr<std::vector<StreamInfo>> StreamInfos(StreamId id);

  // --- pipelined ingest ----------------------------------------------------
  // Queue an ingest request without waiting for its ack; returns the
  // request_id to match against ReceiveAck. Must not be interleaved with the
  // synchronous RPCs above while acks are outstanding.
  StatusOr<uint64_t> SendAppend(StreamId id, Timestamp ts, double value);
  StatusOr<uint64_t> SendAppendBatch(StreamId id, std::span<const Event> events);

  struct Ack {
    uint64_t request_id = 0;
    Status status = Status::Ok();
  };
  // Blocks for the next response frame. IoError on disconnect (e.g. the
  // server was killed with acks outstanding).
  StatusOr<Ack> ReceiveAck();
  size_t inflight() const { return inflight_; }

 private:
  Client() = default;

  // Sends one request frame (header + body) and returns its request_id.
  StatusOr<uint64_t> SendRequest(Opcode op, const Writer& body);
  // Reads one whole response frame into `payload`.
  Status ReceiveFrame(std::string* payload);
  // Synchronous round trip: send, await the matching response, decode the
  // status; on success `resp_body` holds the bytes after the status.
  Status Transact(Opcode op, const Writer& body, std::string* resp_body);

  Fd fd_;
  uint64_t next_id_ = 1;
  size_t inflight_ = 0;
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_CLIENT_H_
