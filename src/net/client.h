// Blocking client for the sserver wire protocol (src/net/protocol.h). One
// Client owns one TCP connection and is NOT thread-safe; open one per thread.
//
// Two usage styles:
//   - Synchronous RPCs (Ping/CreateStream/Append/Query/...): one frame out,
//     one frame back. This is what sstool --connect uses.
//   - Pipelined ingest (SendAppend/SendAppendBatch + ReceiveAck): queue many
//     requests without waiting, then drain acks and match them by the echoed
//     request_id. bench_net drives the server this way.
#ifndef SUMMARYSTORE_SRC_NET_CLIENT_H_
#define SUMMARYSTORE_SRC_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/stream.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace ss::net {

// Shared by Client (connect/deadline fields) and RetryingClient (retry and
// backoff fields; see src/net/retry_client.h).
struct ClientOptions {
  // Bound on the TCP connect handshake. 0 = block until the kernel gives up.
  uint64_t connect_timeout_ms = 0;
  // Local bound on one RPC's socket I/O (send + receive). A stalled or
  // black-holed peer costs at most this. 0 = wait forever (legacy behavior).
  uint64_t rpc_timeout_ms = 0;
  // Wire deadline stamped into every request header (kHeaderFlagDeadline):
  // the server rejects the request with kDeadlineExceeded if this budget
  // expired while it sat queued. 0 = no deadline field (legacy frames).
  uint64_t deadline_ms = 0;
  // --- RetryingClient only -------------------------------------------------
  uint32_t max_retries = 3;          // attempts after the first failure
  uint64_t backoff_initial_ms = 10;  // doubles per retry...
  uint64_t backoff_max_ms = 2000;    // ...up to this cap
  double backoff_jitter = 0.2;       // +/- fraction of the delay, seeded rng
  uint64_t rng_seed = 0x5355'4d53;   // jitter determinism in tests
};

// Decoded from kPing's trailing health byte (DESIGN.md §15). Legacy servers
// send no byte; clients decode that as kOk.
enum class ServerHealth : uint8_t {
  kOk = 0,
  kPoisoned = 1,  // backend rejecting writes until reopen: fail over
  kDraining = 2,  // shutdown imminent: fail over before the reset
};

class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port);
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port,
                                                   const ClientOptions& options);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- synchronous RPCs ----------------------------------------------------
  // Authenticates this connection as `tenant` (multi-tenant servers reject
  // every other request until a hello succeeds; legacy servers accept and
  // ignore it). Must be the first RPC on the connection.
  Status Hello(uint32_t tenant, std::string_view token);
  Status Ping();
  // Ping as a health probe: same RPC, decodes the trailing health byte.
  StatusOr<ServerHealth> Health();
  // id 0 asks the server to assign one; returns the created id.
  StatusOr<StreamId> CreateStream(StreamId id, const StreamConfig& config);
  Status DeleteStream(StreamId id);
  StatusOr<std::vector<StreamId>> ListStreams();
  Status Append(StreamId id, Timestamp ts, double value);
  Status AppendBatch(StreamId id, std::span<const Event> events);
  StatusOr<WireQueryResult> Query(StreamId id, const QuerySpec& spec);
  StatusOr<WireQueryResult> QueryAggregate(std::span<const StreamId> ids, const QuerySpec& spec);
  Status BeginLandmark(StreamId id, Timestamp ts);
  Status EndLandmark(StreamId id, Timestamp ts);
  Status Flush();
  StatusOr<ScrubReport> Scrub(bool repair);
  // format: true = Prometheus text, false = JSON.
  StatusOr<std::string> Stats(bool prometheus);
  // id 0 = all streams.
  StatusOr<std::vector<StreamInfo>> StreamInfos(StreamId id);

  // --- pipelined ingest ----------------------------------------------------
  // Queue an ingest request without waiting for its ack; returns the
  // request_id to match against ReceiveAck. Must not be interleaved with the
  // synchronous RPCs above while acks are outstanding.
  StatusOr<uint64_t> SendAppend(StreamId id, Timestamp ts, double value);
  StatusOr<uint64_t> SendAppendBatch(StreamId id, std::span<const Event> events);

  struct Ack {
    uint64_t request_id = 0;
    Status status = Status::Ok();
  };
  // Blocks for the next response frame. IoError on disconnect (e.g. the
  // server was killed with acks outstanding); kDeadlineExceeded once
  // rpc_timeout_ms elapses with no frame.
  StatusOr<Ack> ReceiveAck();
  size_t inflight() const { return inflight_; }

  // --- idempotent ingest session -------------------------------------------
  // Once a session is set, every kAppend/kAppendBatch request carries
  // (session_id, seq) header fields (kHeaderFlagSession); seq increments per
  // ingest request. The server deduplicates per (tenant, session), so a
  // replay of an already-applied seq is acked without re-applying.
  void SetSession(uint64_t session_id) { session_id_ = session_id; }
  uint64_t session_id() const { return session_id_; }
  // Rewind/read the seq counter — RetryingClient replays its un-acked ingest
  // tail with the original seqs after a reconnect.
  void SetNextSeq(uint64_t seq) { next_seq_ = seq; }
  uint64_t next_seq() const { return next_seq_; }

  const ClientOptions& options() const { return options_; }

 private:
  Client() = default;

  // Absolute MonotonicMicros() instant bounding the current RPC's socket
  // I/O, or 0 when rpc_timeout_ms is unset.
  uint64_t IoDeadline() const;

  // Sends one request frame (header + body) and returns its request_id.
  StatusOr<uint64_t> SendRequest(Opcode op, const Writer& body);
  // Reads one whole response frame into `payload`.
  Status ReceiveFrame(std::string* payload);
  // Synchronous round trip: send, await the matching response, decode the
  // status; on success `resp_body` holds the bytes after the status.
  Status Transact(Opcode op, const Writer& body, std::string* resp_body);

  Fd fd_;
  ClientOptions options_;
  uint64_t next_id_ = 1;
  size_t inflight_ = 0;
  uint64_t session_id_ = 0;  // 0 = no session fields on the wire
  uint64_t next_seq_ = 1;
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_CLIENT_H_
