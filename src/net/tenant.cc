#include "src/net/tenant.h"

#include <cctype>
#include <set>

#include "src/common/hash.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

// Fixed digest seed: the digest is an in-memory authentication artifact, not
// a persisted password hash, so a per-registry salt would buy nothing — the
// cleartext token never leaves the config file.
constexpr uint64_t kTokenSeed = 0x7e9a'11f3'5bd0'c642;

// Splits one config line into whitespace-separated fields.
std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(line.substr(start, i - start));
    }
  }
  return out;
}

StatusOr<uint64_t> ParseU64(const std::string& field, const char* what, int line_no) {
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) + ": " +
                                     what + " is not a number: " + field);
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) + ": " +
                                     what + " overflows: " + field);
    }
    value = value * 10 + digit;
  }
  if (field.empty()) {
    return Status::InvalidArgument(std::string("tenants file: empty ") + what);
  }
  return value;
}

}  // namespace

uint64_t TenantRegistry::TokenDigest(std::string_view token) {
  return Hash64(token, kTokenSeed);
}

StatusOr<TenantRegistry> TenantRegistry::Parse(std::string_view text) {
  TenantRegistry registry;
  std::set<std::string> names;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> fields = Fields(line);
    if (fields.empty()) {
      continue;
    }
    if (fields.size() != 6) {
      return Status::InvalidArgument(
          "tenants file line " + std::to_string(line_no) +
          ": expected `id name token max_streams max_bytes events_per_sec` (6 fields), got " +
          std::to_string(fields.size()));
    }
    TenantConfig tenant;
    SS_ASSIGN_OR_RETURN(uint64_t id, ParseU64(fields[0], "tenant id", line_no));
    if (id == 0 || id > kMaxTenantId) {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) +
                                     ": tenant id must be in [1, 65535], got " + fields[0]);
    }
    tenant.id = static_cast<uint32_t>(id);
    tenant.name = fields[1];
    for (char c : tenant.name) {
      // Names become metric label values and smoke-test grep targets; keep
      // them to a conservative charset so neither needs escaping.
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '-') {
        return Status::InvalidArgument("tenants file line " + std::to_string(line_no) +
                                       ": name must be [A-Za-z0-9_-]: " + tenant.name);
      }
    }
    if (fields[2].empty()) {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) +
                                     ": empty token");
    }
    tenant.token_digest = TokenDigest(fields[2]);
    SS_ASSIGN_OR_RETURN(tenant.quotas.max_streams, ParseU64(fields[3], "max_streams", line_no));
    SS_ASSIGN_OR_RETURN(tenant.quotas.max_resident_bytes,
                        ParseU64(fields[4], "max_resident_bytes", line_no));
    SS_ASSIGN_OR_RETURN(tenant.quotas.ingest_events_per_sec,
                        ParseU64(fields[5], "ingest_events_per_sec", line_no));
    if (!registry.by_id_.emplace(tenant.id, registry.tenants_.size()).second) {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) +
                                     ": duplicate tenant id " + fields[0]);
    }
    if (!names.insert(tenant.name).second) {
      return Status::InvalidArgument("tenants file line " + std::to_string(line_no) +
                                     ": duplicate tenant name " + tenant.name);
    }
    registry.tenants_.push_back(std::move(tenant));
  }
  if (registry.tenants_.empty()) {
    return Status::InvalidArgument("tenants file defines no tenants");
  }
  return registry;
}

StatusOr<TenantRegistry> TenantRegistry::LoadFile(const std::string& path) {
  SS_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto parsed = Parse(text);
  if (!parsed.ok()) {
    return Status(parsed.status().code(), path + ": " + parsed.status().message());
  }
  return parsed;
}

const TenantConfig* TenantRegistry::Find(uint32_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &tenants_[it->second];
}

bool TenantRegistry::Authenticate(uint32_t id, std::string_view token) const {
  const TenantConfig* tenant = Find(id);
  // Unknown ids compare against a digest that can never match, through the
  // same code path, so the timing does not reveal which ids exist.
  const uint64_t expect = tenant != nullptr ? tenant->token_digest : 0;
  const uint64_t got = TokenDigest(token);
  // Branch-free 64-bit compare: the XOR folds to 0 only on equality and the
  // reduction cost is independent of how many bits differ.
  uint64_t diff = expect ^ got;
  diff |= diff >> 32;
  diff |= diff >> 16;
  diff |= diff >> 8;
  diff |= diff >> 4;
  diff |= diff >> 2;
  diff |= diff >> 1;
  return tenant != nullptr && (diff & 1) == 0;
}

}  // namespace ss::net
