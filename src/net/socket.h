// Thin POSIX TCP helpers shared by the server, the client, and the tests:
// fd lifetime (RAII), listen/connect, and read/write loops that retry EINTR
// and handle partial transfers — every byte of socket I/O in src/net goes
// through these so the retry discipline lives in exactly one place.
#ifndef SUMMARYSTORE_SRC_NET_SOCKET_H_
#define SUMMARYSTORE_SRC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ss::net {

// Owns a file descriptor; closes (retrying EINTR) on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (port 0 picks an ephemeral port; read it
// back with LocalPort). SO_REUSEADDR is set so restart-after-kill tests can
// rebind immediately.
StatusOr<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog = 128);

// The locally bound port of a listening/connected socket.
StatusOr<uint16_t> LocalPort(int fd);

// Blocking connect to host:port (numeric IPv4 or a resolvable name).
StatusOr<Fd> ConnectTcp(const std::string& host, uint16_t port);

Status SetNonBlocking(int fd, bool nonblocking);

// Disables Nagle so small request/response frames don't stall on ACKs.
void SetNoDelay(int fd);

// Writes all of `data`, retrying EINTR and polling out short/EAGAIN writes.
// Works for blocking and non-blocking fds alike.
Status WriteFully(int fd, std::string_view data);

// Blocking read of up to `n` bytes (at least 1 unless EOF), retrying EINTR
// and polling out EAGAIN. Returns 0 on clean EOF.
StatusOr<size_t> ReadSome(int fd, char* buf, size_t n);

// Blocking read of exactly `n` bytes; kIoError{"eof"} on a short stream.
Status ReadFully(int fd, char* buf, size_t n);

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_SOCKET_H_
