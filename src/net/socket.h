// Thin POSIX TCP helpers shared by the server, the client, and the tests:
// fd lifetime (RAII), listen/connect, and read/write loops that retry EINTR
// and handle partial transfers — every byte of socket I/O in src/net goes
// through these so the retry discipline lives in exactly one place.
//
// All client-side syscalls route through a process-pluggable NetOps seam
// (the network analogue of storage's FileOps/FaultFs): tests install a
// FaultNet (src/net/fault_net.h) to deterministically sever, stall, or
// throttle connections at exact frame boundaries.
#ifndef SUMMARYSTORE_SRC_NET_SOCKET_H_
#define SUMMARYSTORE_SRC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

struct sockaddr;  // <sys/socket.h>; kept out of this header on purpose

namespace ss::net {

// Syscall-level hooks for client-side socket I/O. The default implementation
// calls straight through to the kernel; FaultNet wraps it with deterministic
// fault schedules. Implementations must be thread-safe.
class NetOps {
 public:
  virtual ~NetOps() = default;

  // ::connect(2) driven to completion (EINTR handled by the caller's loop).
  virtual int Connect(int fd, const struct sockaddr* addr, unsigned int addrlen);
  // ::send(2) with MSG_NOSIGNAL. Returns bytes sent or -1 with errno set.
  virtual long Send(int fd, const void* buf, size_t len);
  // ::recv(2). Returns bytes read (0 = EOF) or -1 with errno set.
  virtual long Recv(int fd, void* buf, size_t len);
  // ::poll(2) on one fd. timeout_ms < 0 waits forever. Returns the poll rc.
  virtual int PollOne(int fd, short events, int timeout_ms);
  // ::close(2) notification so fault schedules can unregister the fd (the
  // kernel may recycle the fd number immediately).
  virtual int Close(int fd);
};

// Installs `ops` for every subsequent client-side socket call (nullptr
// restores the passthrough default). NOT for production use: call only from
// tests/benches, before any I/O the schedule should see.
void SetNetOpsForTest(NetOps* ops);
NetOps& GetNetOps();

// Owns a file descriptor; closes (retrying EINTR) on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (port 0 picks an ephemeral port; read it
// back with LocalPort). SO_REUSEADDR is set so restart-after-kill tests can
// rebind immediately.
StatusOr<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog = 128);

// The locally bound port of a listening/connected socket.
StatusOr<uint16_t> LocalPort(int fd);

// Blocking connect to host:port (numeric IPv4 or a resolvable name).
StatusOr<Fd> ConnectTcp(const std::string& host, uint16_t port);

// Connect with a bound: non-blocking connect + poll. timeout_ms == 0 means
// no bound (identical to ConnectTcp). kDeadlineExceeded if the peer does not
// complete the handshake in time.
StatusOr<Fd> ConnectTcpTimeout(const std::string& host, uint16_t port, uint64_t timeout_ms);

Status SetNonBlocking(int fd, bool nonblocking);

// Disables Nagle so small request/response frames don't stall on ACKs.
void SetNoDelay(int fd);

// Writes all of `data`, retrying EINTR and polling out short/EAGAIN writes.
// Works for blocking and non-blocking fds alike.
Status WriteFully(int fd, std::string_view data);

// Blocking read of up to `n` bytes (at least 1 unless EOF), retrying EINTR
// and polling out EAGAIN. Returns 0 on clean EOF.
StatusOr<size_t> ReadSome(int fd, char* buf, size_t n);

// Blocking read of exactly `n` bytes; kIoError{"eof"} on a short stream.
Status ReadFully(int fd, char* buf, size_t n);

// Deadline-aware variants: identical I/O discipline, but every EAGAIN poll
// is bounded by the time remaining until `deadline_us` (an absolute
// MonotonicMicros() instant); kDeadlineExceeded once it passes. A stalled
// peer (black hole) therefore costs at most the deadline, never forever.
// deadline_us == 0 means unbounded (plain WriteFully/ReadFully behavior).
uint64_t MonotonicMicros();
Status WriteFullyDeadline(int fd, std::string_view data, uint64_t deadline_us);
StatusOr<size_t> ReadSomeDeadline(int fd, char* buf, size_t n, uint64_t deadline_us);
Status ReadFullyDeadline(int fd, char* buf, size_t n, uint64_t deadline_us);

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_SOCKET_H_
