#include "src/net/fault_net.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/obs/flight_recorder.h"

namespace ss::net {

// ------------------------------------------------------------- FrameParser

void FaultNet::FrameParser::Feed(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    if (!in_body) {
      while (header_have < 4 && off < n) {
        header[header_have++] = static_cast<unsigned char>(data[off++]);
      }
      if (header_have < 4) {
        return;
      }
      uint32_t len;
      std::memcpy(&len, header, sizeof(len));
      body_len = len;
      body_remaining = len;
      in_body = true;
      header_have = 0;
      // A zero-length frame is protocol corruption; the receiver will fail
      // the connection. Treat it as an immediately-complete frame so the
      // parser cannot wedge.
      if (body_remaining == 0) {
        in_body = false;
        ++frames_done;
      }
      continue;
    }
    const uint64_t take = std::min<uint64_t>(body_remaining, n - off);
    body_remaining -= take;
    off += static_cast<size_t>(take);
    if (body_remaining == 0) {
      in_body = false;
      ++frames_done;
    }
  }
}

uint64_t FaultNet::FrameParser::BytesUntilCutoff(uint64_t frames, uint64_t extra) const {
  if (frames_done < frames) {
    // Finishing the current frame cannot cross the boundary: allow up to the
    // end of the body, or up to the end of the length header (after which
    // the body size is known and the next call allows the body).
    if (in_body) {
      return std::max<uint64_t>(1, body_remaining);
    }
    return 4 - header_have;
  }
  if (frames_done > frames) {
    return 0;  // already past any "+extra bytes into the next frame" window
  }
  // At or past the boundary of frame `frames`: count bytes consumed into the
  // next frame so far.
  const uint64_t past = in_body ? 4 + (body_len - body_remaining) : header_have;
  return extra > past ? extra - past : 0;
}

// ------------------------------------------------------------ schedule API

void FaultNet::SeverAfterSentFrames(uint64_t frames, uint64_t extra_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kSeverSend;
  target_frames_ = frames;
  target_extra_ = extra_bytes;
}

void FaultNet::SeverAfterRecvFrames(uint64_t frames, uint64_t extra_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kSeverRecv;
  target_frames_ = frames;
  target_extra_ = extra_bytes;
}

void FaultNet::BlackHoleAfterSentFrames(uint64_t frames) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kBlackHole;
  target_frames_ = frames;
  target_extra_ = 0;
}

void FaultNet::SetMaxSendBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_send_bytes_ = bytes;
}

void FaultNet::SetDelayMs(uint64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  delay_ms_ = ms;
}

void FaultNet::FailNextConnects(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_connects_ = n;
}

void FaultNet::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.clear();
  mode_ = Mode::kNone;
  target_frames_ = 0;
  target_extra_ = 0;
  max_send_bytes_ = 0;
  delay_ms_ = 0;
  fail_connects_ = 0;
  total_frames_sent_ = 0;
  total_frames_received_ = 0;
  injected_resets_ = 0;
  refused_connects_count_ = 0;
  blackholed_count_ = 0;
}

uint64_t FaultNet::frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_frames_sent_;
}

uint64_t FaultNet::frames_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_frames_received_;
}

uint64_t FaultNet::injected_resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_resets_;
}

uint64_t FaultNet::refused_connects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refused_connects_count_;
}

uint64_t FaultNet::blackholed_fds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blackholed_count_;
}

bool FaultNet::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_ != Mode::kNone;
}

void FaultNet::TripLocked(int fd, FdState& state) {
  if (mode_ == Mode::kBlackHole) {
    state.blackholed = true;
    ++blackholed_count_;
    FlightRecorder::Default().Record(FlightEventType::kNetFaultInjected,
                                     static_cast<uint64_t>(fd),
                                     static_cast<uint64_t>(NetFaultKind::kBlackHole));
  } else {
    state.severed = true;
    ++injected_resets_;
    // Shut the real socket down both ways so the peer observes the sever too
    // (the server sees EOF/reset, exactly like a mid-flight network cut).
    (void)::shutdown(fd, SHUT_RDWR);
    FlightRecorder::Default().Record(
        FlightEventType::kNetFaultInjected, static_cast<uint64_t>(fd),
        static_cast<uint64_t>(mode_ == Mode::kSeverSend ? NetFaultKind::kSeverSend
                                                        : NetFaultKind::kSeverRecv));
  }
  mode_ = Mode::kNone;  // one-shot: the reconnect runs clean
}

// ------------------------------------------------------------------ NetOps

int FaultNet::Connect(int fd, const struct sockaddr* addr, unsigned int addrlen) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fail_connects_ > 0) {
      --fail_connects_;
      ++refused_connects_count_;
      FlightRecorder::Default().Record(FlightEventType::kNetFaultInjected,
                                       static_cast<uint64_t>(fd),
                                       static_cast<uint64_t>(NetFaultKind::kRefusedConnect));
      errno = ECONNREFUSED;
      return -1;
    }
  }
  int rc = NetOps::Connect(fd, addr, addrlen);
  if (rc == 0 || errno == EINPROGRESS || errno == EALREADY) {
    std::lock_guard<std::mutex> lock(mu_);
    fds_[fd] = FdState{};  // fresh parsers; any stale state for a recycled fd is gone
  }
  return rc;
}

long FaultNet::Send(int fd, const void* buf, size_t len) {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay = delay_ms_;
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  size_t cap = len;
  {
    // NEVER hold mu_ across the real syscall below: a blocking send/recv
    // would wedge every other thread that touches the seam — including the
    // server's loop thread, whose Fd::Reset routes through NetOps::Close.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return NetOps::Send(fd, buf, len);  // untracked (server-side) fd
    }
    FdState& state = it->second;
    if (state.severed) {
      errno = ECONNRESET;
      return -1;
    }
    if (mode_ == Mode::kSeverSend) {
      // The cutoff counts frames GLOBALLY (across connections, in the order
      // they hit the wire): translate to this fd's local frame space so the
      // passthrough-learned total covers boundaries on every connection the
      // workload opens.
      const uint64_t remaining =
          target_frames_ > total_frames_sent_ ? target_frames_ - total_frames_sent_ : 0;
      const uint64_t allowed =
          state.send.BytesUntilCutoff(state.send.frames_done + remaining, target_extra_);
      if (allowed == 0) {
        TripLocked(fd, state);
        errno = ECONNRESET;
        return -1;
      }
      cap = std::min<size_t>(cap, static_cast<size_t>(allowed));
    }
    if (max_send_bytes_ > 0) {
      cap = std::min(cap, max_send_bytes_);
    }
  }
  long n = NetOps::Send(fd, buf, cap);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-find: a concurrent Close may have unregistered the fd mid-syscall.
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      FdState& state = it->second;
      const uint64_t before = state.send.frames_done;
      state.send.Feed(static_cast<const char*>(buf), static_cast<size_t>(n));
      total_frames_sent_ += state.send.frames_done - before;
      if (mode_ == Mode::kBlackHole && total_frames_sent_ >= target_frames_ &&
          !state.blackholed) {
        TripLocked(fd, state);
      }
    }
  }
  return n;
}

long FaultNet::Recv(int fd, void* buf, size_t len) {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay = delay_ms_;
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  size_t cap = len;
  {
    // As in Send: the real recv below may block; holding mu_ across it would
    // serialize all client I/O and deadlock the server's close path.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return NetOps::Recv(fd, buf, len);
    }
    FdState& state = it->second;
    if (state.severed) {
      errno = ECONNRESET;
      return -1;
    }
    if (state.blackholed) {
      errno = EAGAIN;  // peer alive but silent: nothing ever arrives
      return -1;
    }
    if (mode_ == Mode::kSeverRecv) {
      // Global → fd-local frame translation, as in Send.
      const uint64_t remaining =
          target_frames_ > total_frames_received_ ? target_frames_ - total_frames_received_ : 0;
      const uint64_t allowed =
          state.recv.BytesUntilCutoff(state.recv.frames_done + remaining, target_extra_);
      if (allowed == 0) {
        TripLocked(fd, state);
        errno = ECONNRESET;
        return -1;
      }
      cap = std::min<size_t>(cap, static_cast<size_t>(allowed));
    }
  }
  long n = NetOps::Recv(fd, buf, cap);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      FdState& state = it->second;
      const uint64_t before = state.recv.frames_done;
      state.recv.Feed(static_cast<const char*>(buf), static_cast<size_t>(n));
      total_frames_received_ += state.recv.frames_done - before;
    }
  }
  return n;
}

int FaultNet::PollOne(int fd, short events, int timeout_ms) {
  bool blackholed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fds_.find(fd);
    blackholed = it != fds_.end() && it->second.blackholed && (events & POLLIN) != 0;
  }
  if (blackholed) {
    // Simulate the silent wait: sleep out (a slice of) the timeout, report
    // nothing ready. With no deadline the caller re-polls, so cap the nap.
    const int nap = timeout_ms < 0 ? 10 : std::min(timeout_ms, 50);
    if (nap > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(nap));
    }
    return 0;
  }
  return NetOps::PollOne(fd, events, timeout_ms);
}

int FaultNet::Close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fds_.erase(fd);
  }
  return NetOps::Close(fd);
}

}  // namespace ss::net
