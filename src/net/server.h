// sserver's service core: a TCP daemon serving the SummaryStore API over the
// length-prefixed binary protocol of src/net/protocol.h (DESIGN.md §12).
//
// Architecture:
//   - One epoll event-loop thread owns all sockets: it accepts, reads,
//     frames, and performs admission control; request execution fans out to
//     a ThreadPool (src/common/thread_pool) so slow queries never stall the
//     loop. Responses are queued per connection and written by the loop
//     (workers attempt an opportunistic non-blocking send first).
//   - Per-connection pipelining: clients may send many requests without
//     waiting. Requests from one connection EXECUTE in arrival order (a
//     pipelined create-then-append is safe, and appends keep a monotone
//     stream monotone); responses still carry the echoed request_id because
//     durable ingest acks complete out of band and may interleave with later
//     non-ingest responses.
//   - Admission control / backpressure: ingest requests (append and
//     append-batch) are admitted against a bounded budget of
//     not-yet-acknowledged events. At the bound, policy kShed answers
//     kFailedPrecondition immediately, while kBlock simply stops reading
//     that connection (frames stay in the kernel/receive buffer and TCP
//     flow control pushes back on the client) until capacity frees up.
//   - Durable acks: ingest responses are withheld until a store Flush
//     covering the request completes (group-flush: one Flush acks every
//     append admitted before it began — the network-facing analogue of the
//     PR 4 WAL group commit). An acked append therefore survives a hard
//     server kill; WAL replay covers the tail. Disable via
//     ServerOptions::durable_acks for throughput experiments.
//
// Every frame decoder treats input as hostile (see protocol.h); a frame that
// cannot be parsed closes the connection, a valid frame with a malformed
// body earns an error response, and neither can crash or wedge the server.
#ifndef SUMMARYSTORE_SRC_NET_SERVER_H_
#define SUMMARYSTORE_SRC_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/summary_store.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/net/tenant.h"

namespace ss::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;        // 0 = ephemeral; read back via Server::port()
  size_t worker_threads = 0;  // 0 = ThreadPool::DefaultThreadCount()
  size_t max_frame_bytes = kMaxFrameBytes;
  // Ingest admission budget: events admitted but not yet acknowledged. A
  // single batch larger than the whole budget is admitted when the queue is
  // empty (it could never run otherwise) under kBlock, and shed under kShed.
  size_t ingest_queue_events = 1u << 16;
  enum class Backpressure { kBlock = 0, kShed = 1 };
  Backpressure backpressure = Backpressure::kBlock;
  // Withhold ingest acks until a covering SummaryStore::Flush completes.
  bool durable_acks = true;
  // Slow-peer defense (DESIGN.md §15): a connection whose outbound response
  // buffer stays above max_conn_buffer_bytes for slow_peer_timeout_ms is
  // disconnected (ss_net_slow_peer_disconnects_total), so one client that
  // stops reading cannot pin unbounded server memory. 0 = unbounded (legacy).
  size_t max_conn_buffer_bytes = 0;
  uint64_t slow_peer_timeout_ms = 5000;
  // Multi-tenant mode (DESIGN.md §14): non-null makes kHello mandatory,
  // scopes every stream id to the authenticated tenant's namespace, and
  // splits the ingest budget into per-tenant fair shares. Null keeps the
  // legacy single-tenant behavior exactly.
  std::shared_ptr<const TenantRegistry> tenants;
};

class Server {
 public:
  // Binds, registers the listener, and spawns the loop/worker/ack threads.
  // `store` must outlive the server (the caller owns it — bench harnesses
  // deliberately leak it to simulate kills).
  static StatusOr<std::unique_ptr<Server>> Start(SummaryStore* store, ServerOptions options);
  ~Server();  // graceful Stop() unless already stopped

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }

  // Graceful shutdown: stop accepting, drain in-flight requests, flush and
  // ack the ingest tail, write out queued responses, close. Idempotent.
  void Stop();

  // Hard shutdown (kill simulation): close every socket immediately, drop
  // pending acks un-flushed and un-answered. Clients see a reset; appends
  // they never got an ack for are allowed to be lost. Idempotent.
  void Abort();

  // Flags the server as draining: it keeps serving, but kPing health probes
  // answer "draining" so load balancers / retrying clients fail over before
  // the actual Stop(). sserver calls this on SIGTERM, sleeps the drain grace
  // period, then stops.
  void BeginDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // Introspection for tests.
  size_t active_connections() const;

 private:
  struct Connection;
  struct TenantState;
  struct PendingAck {
    std::shared_ptr<Connection> conn;
    TenantState* tenant = nullptr;
    uint64_t request_id = 0;
    uint64_t events = 0;  // admission budget to release once acked
  };

  Server(SummaryStore* store, ServerOptions options);
  Status Init();

  // --- event-loop thread ---------------------------------------------------
  void LoopThread();
  void AcceptAll();
  void ReadInput(const std::shared_ptr<Connection>& conn);
  // Parses and dispatches every complete frame buffered on `conn`; applies
  // admission control; may mark the connection blocked.
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  void RetryBlocked();
  void FlushOutput(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void UpdateEpoll(const std::shared_ptr<Connection>& conn, bool want_read, bool want_write);
  void Wake();

  // --- request execution (worker threads) ----------------------------------
  // Drains the connection's FIFO request queue; at most one worker runs this
  // per connection at a time, so pipelined requests execute in arrival order.
  void RunRequests(const std::shared_ptr<Connection>& conn);
  // `deadline_at_us` is the absolute MonotonicMicros() instant the request's
  // wire deadline expires (0 = none); ExecuteRequest answers
  // kDeadlineExceeded without touching the store if it is already past.
  void ExecuteRequest(const std::shared_ptr<Connection>& conn, std::string payload,
                      TenantState* tenant, uint64_t admitted_events, uint64_t deadline_at_us);
  std::string HandleRequest(TenantState* tenant, const RequestHeader& header, Reader& body,
                            bool* defer_ack, Status* ingest_status);
  void SendResponse(const std::shared_ptr<Connection>& conn, std::string frame);
  void ReleaseIngest(TenantState* tenant, uint64_t events);
  // Slow-peer bookkeeping, called with conn->out_mu held after conn->out
  // changes size: starts/clears the stall clock and maintains the global
  // over-bound count that switches the loop to timed epoll waits.
  void UpdateStallLocked(Connection* conn);
  // Loop thread: disconnects every connection whose stall clock has exceeded
  // slow_peer_timeout_ms.
  void SweepSlowPeers();

  // --- multi-tenancy (loop thread unless noted) -----------------------------
  bool multi_tenant() const { return options_.tenants != nullptr; }
  // Handles a kHello frame synchronously on the loop thread (the connection's
  // tenant must be set before later frames in the same buffer sweep reach
  // admission); the pre-encoded response is queued through exec_queue so it
  // stays in pipeline order.
  void HandleHello(const std::shared_ptr<Connection>& conn, uint64_t request_id, Reader& body);
  // Enqueues a pre-encoded response frame in FIFO position (shed rejections,
  // auth errors, hello acks).
  void EnqueueReadyFrame(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                         const Status& status);
  // Worker-side append gate: tenant byte quota (approximate, cached).
  Status CheckByteQuota(TenantState* tenant, uint64_t events);

  // --- durability ack thread ----------------------------------------------
  void AckThread();

  SummaryStore* const store_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  Fd epoll_;
  Fd listener_;
  Fd wake_;  // eventfd: workers/Stop wake the loop

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  std::thread ack_thread_;

  // Loop-thread-owned connection registry (fd -> connection). Only the loop
  // thread touches the map; workers hold shared_ptrs handed out at dispatch.
  std::map<int, std::shared_ptr<Connection>> conns_;
  mutable std::mutex conns_mu_;  // guards size() for active_connections()
  std::atomic<size_t> conn_count_{0};

  // Connections with queued output that need the loop to arm EPOLLOUT.
  std::mutex pending_writes_mu_;
  std::vector<std::shared_ptr<Connection>> pending_writes_;

  // Ingest admission budget (events admitted, ack not yet sent).
  std::atomic<uint64_t> ingest_pending_{0};
  std::atomic<bool> recheck_blocked_{false};

  // Tenant table, fixed at Init: index 0 is the implicit legacy tenant (id 0,
  // unlimited quotas, the whole ingest budget); multi-tenant mode appends one
  // entry per registry tenant. TenantState pointers stay valid for the
  // server's lifetime.
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::mutex create_mu_;  // serializes tenant-local stream id auto-assignment

  // Durable-ack batcher state.
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::vector<PendingAck> pending_acks_;
  bool ack_stop_ = false;

  // Connections currently holding more than max_conn_buffer_bytes of queued
  // output. Non-zero switches the loop to timed epoll waits so stall clocks
  // are checked even when no socket events arrive.
  std::atomic<size_t> over_bound_{0};

  std::atomic<bool> draining_{false};   // health probes answer "draining"
  std::atomic<bool> stopping_{false};   // stop accepting + dispatching
  std::atomic<bool> loop_stop_{false};  // loop should flush/close and exit
  std::atomic<bool> abort_{false};      // hard kill: no final flush, no acks
  std::mutex state_mu_;
  bool stopped_ = false;  // Stop()/Abort() already ran
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_SERVER_H_
