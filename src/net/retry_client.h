// Resilient wrapper around net::Client: bounded per-RPC deadlines, automatic
// reconnect + re-hello, exponential backoff with deterministic jitter, and
// exactly-once pipelined ingest via the (session, seq) replay-dedup contract
// (DESIGN.md §15).
//
// Retry discipline:
//   - Transport failures (kIoError, kDeadlineExceeded, kCorruption of a
//     response, kInternal id mismatch) tear the connection down; the next
//     attempt reconnects (with backoff) and re-runs the hello handshake.
//   - Read-only / idempotent RPCs (Ping, ListStreams, Query, QueryAggregate,
//     Stats, StreamInfos, Flush, Scrub) are always safe to resend.
//   - Ingest (Append/AppendBatch, sync or pipelined) is made idempotent by
//     the session header fields: every ingest request carries this client's
//     session id and a monotone seq, the server remembers the highest
//     applied seq per (tenant, session), and a replayed seq is acked without
//     re-applying. A reconnect-and-resend after a lost ack cannot
//     double-apply an event.
//   - CreateStream with an explicit id resends and treats kAlreadyExists on
//     a retry as success (the first attempt won); DeleteStream likewise maps
//     kNotFound on a retry to success. CreateStream with auto-assigned id
//     and the landmark RPCs are NOT resent once the request may have reached
//     the server — only connect-phase failures are retried for those.
//   - Application-level errors from the server are returned immediately.
//
// Every retry/reconnect bumps ss_net_retries_total / ss_net_reconnects_total
// and records a flight event, so recovery paths are observable in prod.
//
// NOT thread-safe (same contract as Client): one RetryingClient per thread.
#ifndef SUMMARYSTORE_SRC_NET_RETRY_CLIENT_H_
#define SUMMARYSTORE_SRC_NET_RETRY_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/stream.h"
#include "src/net/client.h"
#include "src/random/rng.h"

namespace ss::net {

class RetryingClient {
 public:
  // Establishes the first connection (retrying with backoff up to
  // max_retries if the server is not up yet).
  static StatusOr<std::unique_ptr<RetryingClient>> Connect(const std::string& host,
                                                           uint16_t port,
                                                           const ClientOptions& options = {});

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  // Authenticates and remembers the credentials: every automatic reconnect
  // re-runs the hello before anything else.
  Status Hello(uint32_t tenant, std::string_view token);

  // --- synchronous RPCs (same surface as Client) ---------------------------
  Status Ping();
  StatusOr<ServerHealth> Health();
  StatusOr<StreamId> CreateStream(StreamId id, const StreamConfig& config);
  Status DeleteStream(StreamId id);
  StatusOr<std::vector<StreamId>> ListStreams();
  Status Append(StreamId id, Timestamp ts, double value);
  Status AppendBatch(StreamId id, std::span<const Event> events);
  StatusOr<WireQueryResult> Query(StreamId id, const QuerySpec& spec);
  StatusOr<WireQueryResult> QueryAggregate(std::span<const StreamId> ids, const QuerySpec& spec);
  Status BeginLandmark(StreamId id, Timestamp ts);
  Status EndLandmark(StreamId id, Timestamp ts);
  Status Flush();
  StatusOr<ScrubReport> Scrub(bool repair);
  StatusOr<std::string> Stats(bool prometheus);
  StatusOr<std::vector<StreamInfo>> StreamInfos(StreamId id);

  // --- pipelined ingest ----------------------------------------------------
  // Queue an ingest request without waiting for its ack; returns the SESSION
  // SEQ identifying it (stable across reconnect replays, unlike the per-
  // connection request id). A send failure is absorbed: the request stays
  // pending and is replayed by the next ReceiveAck's reconnect.
  StatusOr<uint64_t> SendAppend(StreamId id, Timestamp ts, double value);
  StatusOr<uint64_t> SendAppendBatch(StreamId id, std::span<const Event> events);

  struct Ack {
    uint64_t seq = 0;
    Status status = Status::Ok();  // the server's verdict for that request
  };
  // Blocks for the next ingest ack, transparently reconnecting and replaying
  // the un-acked tail on transport failure. Fails only once max_retries
  // consecutive recovery attempts made no progress.
  StatusOr<Ack> ReceiveAck();
  size_t inflight() const { return pending_.size(); }

  // --- introspection -------------------------------------------------------
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }
  uint64_t session_id() const { return session_id_; }

 private:
  RetryingClient(std::string host, uint16_t port, ClientOptions options);

  // How a sync RPC may be re-attempted after a transport failure.
  enum class RetryMode {
    kResend,       // idempotent (or made so by session seq): full retry
    kConnectOnly,  // only failures BEFORE the request was sent are retried
  };

  // Runs `fn` against a live connection with the retry/backoff/reconnect
  // loop. `fn(client, is_retry)` returns the RPC status; is_retry is true on
  // every attempt after the first successful send.
  Status Call(RetryMode mode, Opcode op,
              const std::function<Status(Client&, bool is_retry)>& fn);

  // Connects (if needed) and replays hello + session state. Does NOT retry;
  // the Call/ReceiveAck loops own backoff.
  Status EnsureConnected();
  void Backoff(uint32_t attempt);
  static bool IsTransient(const Status& s);

  // Replays every pending ingest request (in seq order) on a fresh
  // connection. Caller guarantees conn_ is live.
  Status ReplayPending();

  struct PendingIngest {
    uint64_t seq = 0;
    Opcode op = Opcode::kAppend;
    StreamId stream = 0;
    Timestamp ts = 0;   // kAppend
    double value = 0;   // kAppend
    std::vector<Event> events;  // kAppendBatch
  };
  // Sends one pending request on conn_ and records its request-id mapping.
  Status SendPending(const PendingIngest& p);

  const std::string host_;
  const uint16_t port_;
  const ClientOptions options_;

  std::unique_ptr<Client> conn_;
  bool ever_connected_ = false;
  bool hello_done_ = false;
  uint32_t hello_tenant_ = 0;
  std::string hello_token_;

  uint64_t session_id_ = 0;
  uint64_t next_seq_ = 1;  // session-scoped, survives reconnects

  std::deque<PendingIngest> pending_;  // un-acked ingest, ascending seq
  std::unordered_map<uint64_t, uint64_t> req_to_seq_;  // current connection only

  Rng rng_;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_RETRY_CLIENT_H_
