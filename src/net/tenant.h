// Multi-tenant model for sserver (DESIGN.md §14): a registry of tenants
// (numeric id, display name, authentication token, resource quotas) loaded
// from a `--tenants FILE` config, plus the tenant → StreamId namespace
// mapping that keeps SummaryStore itself tenant-oblivious.
//
// Namespace mapping: the wire layer speaks *local* stream ids (what a tenant
// names its own streams); below the wire layer every id is mapped to a
// *global* StreamId with the tenant id in the top 16 bits:
//
//   global := (tenant_id << 48) | local          local ∈ [1, 2^48)
//
// so tenant A's stream 7 and tenant B's stream 7 are distinct store keys,
// and the mapping round-trips through the store's existing manifest
// machinery with no new persistent state (the namespaced ids ARE the
// persisted keys). Tenant id 0 is reserved for legacy single-tenant mode,
// where the mapping is the identity and the full 64-bit id space is the
// tenant's own.
//
// Tokens are never stored in cleartext past load: the registry keeps a
// seeded 64-bit digest and authenticates with a constant-time compare, so
// a token probe learns nothing from timing.
#ifndef SUMMARYSTORE_SRC_NET_TENANT_H_
#define SUMMARYSTORE_SRC_NET_TENANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/keys.h"

namespace ss::net {

// Top 16 bits of a global StreamId carry the tenant id; the low 48 bits are
// the tenant-local id. Local id 0 stays "auto-assign" on the wire.
inline constexpr uint32_t kTenantShift = 48;
inline constexpr uint64_t kMaxLocalStreamId = (uint64_t{1} << kTenantShift) - 1;
inline constexpr uint32_t kMaxTenantId = 0xffff;

constexpr StreamId GlobalStreamId(uint32_t tenant_id, StreamId local) {
  return (static_cast<uint64_t>(tenant_id) << kTenantShift) | local;
}
constexpr uint32_t TenantOfStream(StreamId global) {
  return static_cast<uint32_t>(global >> kTenantShift);
}
constexpr StreamId LocalStreamId(StreamId global) { return global & kMaxLocalStreamId; }

// Per-tenant resource quotas. 0 = unlimited.
struct TenantQuotas {
  uint64_t max_streams = 0;           // live streams in the tenant namespace
  uint64_t max_resident_bytes = 0;    // sum of the tenant's stream sizes
  uint64_t ingest_events_per_sec = 0; // token bucket: rate + 1 s of burst
};

struct TenantConfig {
  uint32_t id = 0;  // 1..kMaxTenantId (0 is the reserved legacy tenant)
  std::string name;
  uint64_t token_digest = 0;  // seeded Hash64 of the token; never the token
  TenantQuotas quotas;
};

// Immutable once loaded; shared by reference across server threads.
class TenantRegistry {
 public:
  // File format, one tenant per line (blank lines and '#' comments ignored):
  //
  //   id name token max_streams max_resident_bytes ingest_events_per_sec
  //
  // e.g. `1 acme s3cret 64 1073741824 100000`. Quota fields of 0 mean
  // unlimited; all three quota fields are required. Ids must be unique and
  // in [1, 65535]; names must be unique and are used as metric label values.
  static StatusOr<TenantRegistry> Parse(std::string_view text);
  static StatusOr<TenantRegistry> LoadFile(const std::string& path);

  // Computes the digest Parse stores for `token` (exposed so tests can
  // build registries without files).
  static uint64_t TokenDigest(std::string_view token);

  const TenantConfig* Find(uint32_t id) const;
  // Constant-time token check; false for unknown ids too (same cost either
  // way, so probing ids is no cheaper than probing tokens).
  bool Authenticate(uint32_t id, std::string_view token) const;

  size_t size() const { return tenants_.size(); }
  const std::vector<TenantConfig>& tenants() const { return tenants_; }

 private:
  std::vector<TenantConfig> tenants_;          // config order
  std::map<uint32_t, size_t> by_id_;           // id -> index in tenants_
};

}  // namespace ss::net

#endif  // SUMMARYSTORE_SRC_NET_TENANT_H_
