// Exponential Histogram (Datar, Gionis, Indyk, Motwani — SIAM J. Comput.
// 2002): approximate count over a *sliding window*, the algorithmic
// ancestor of SummaryStore's decayed windowing (§8.4 of the paper).
//
// EH maintains power-of-two-sized buckets with at most ⌈k/2⌉+2 buckets per
// size; querying the count of the last W time units has relative error at
// most 1/k using O(k·log²W) bits. The paper's critique — which this
// baseline lets the ablation bench demonstrate — is that EH (i) supports
// only the sliding-window suffix, not arbitrary historical ranges, and
// (ii) its forced power-of-2 windowing is the most aggressive decay in the
// family SummaryStore generalizes.
#ifndef SUMMARYSTORE_SRC_BASELINE_EXPONENTIAL_HISTOGRAM_H_
#define SUMMARYSTORE_SRC_BASELINE_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>

#include "src/common/clock.h"

namespace ss {

class ExponentialHistogram {
 public:
  // Counts events within the trailing `window` time units; relative error
  // <= 1/k.
  ExponentialHistogram(Timestamp window, uint32_t k);

  // Records an event; timestamps must be non-decreasing.
  void Add(Timestamp ts);

  // Estimated number of events with ts in (now - window, now].
  double EstimateCount(Timestamp now);

  size_t bucket_count() const { return buckets_.size(); }
  // Logical memory footprint (one (timestamp, size) pair per bucket).
  size_t SizeBytes() const { return buckets_.size() * 16 + 16; }

 private:
  struct Bucket {
    Timestamp newest;  // timestamp of the most recent event in the bucket
    uint64_t size;     // number of events (a power of two)
  };

  void Expire(Timestamp now);
  void Cascade();

  Timestamp window_;
  uint32_t per_size_limit_;  // ⌈k/2⌉ + 2
  Timestamp last_ts_ = kMinTimestamp;
  std::deque<Bucket> buckets_;  // front = newest, back = oldest
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_BASELINE_EXPONENTIAL_HISTOGRAM_H_
