// EnumStore: the exact, enumerate-everything time-series store baseline
// (the role InfluxDB plays in Table 2 and Figure 7 of the paper).
//
// Events are packed into fixed-size blocks and persisted through the same
// KV backend SummaryStore uses, so the comparison isolates the effect of
// decayed summarization: EnumStore's size grows linearly with the data and
// range queries scan every overlapping block; answers are always exact.
#ifndef SUMMARYSTORE_SRC_BASELINE_ENUM_STORE_H_
#define SUMMARYSTORE_SRC_BASELINE_ENUM_STORE_H_

#include <memory>
#include <vector>

#include "src/core/keys.h"
#include "src/core/window.h"  // Event
#include "src/storage/kv_backend.h"

namespace ss {

class EnumStore {
 public:
  // `block_events`: raw events per storage block.
  EnumStore(StreamId id, KvBackend* kv, size_t block_events = 4096);

  // Rebuilds the block index from the KV store.
  static StatusOr<std::unique_ptr<EnumStore>> Load(StreamId id, KvBackend* kv,
                                                   size_t block_events = 4096);

  Status Append(Timestamp ts, double value);
  Status Flush();

  uint64_t element_count() const { return count_; }
  // Logical raw size: 16 bytes per (timestamp, value) event — the "S" of the
  // paper's compaction factor.
  uint64_t SizeBytes() const { return count_ * 16; }
  size_t block_count() const { return blocks_.size() + (buffer_.empty() ? 0 : 1); }

  // Exact range aggregates over [t1, t2] (inclusive).
  StatusOr<double> QueryCount(Timestamp t1, Timestamp t2);
  StatusOr<double> QuerySum(Timestamp t1, Timestamp t2);
  StatusOr<double> QueryMin(Timestamp t1, Timestamp t2);
  StatusOr<double> QueryMax(Timestamp t1, Timestamp t2);
  StatusOr<double> QueryFrequency(Timestamp t1, Timestamp t2, double value);
  StatusOr<bool> QueryExistence(Timestamp t1, Timestamp t2, double value);

  // Visits every event in [t1, t2] in time order.
  Status Scan(Timestamp t1, Timestamp t2, const std::function<bool(const Event&)>& visit);

  // Full-resolution extraction (for baselines that need the raw series).
  StatusOr<std::vector<Event>> Materialize(Timestamp t1, Timestamp t2);

 private:
  struct BlockMeta {
    uint64_t seq;
    Timestamp ts_first;
    Timestamp ts_last;
    uint64_t count;
  };

  std::string BlockKey(uint64_t seq) const;
  Status FlushBuffer();
  StatusOr<std::vector<Event>> LoadBlock(const BlockMeta& meta);

  StreamId id_;
  KvBackend* kv_;
  size_t block_events_;
  uint64_t count_ = 0;
  uint64_t next_seq_ = 0;
  Timestamp last_ts_ = kMinTimestamp;
  std::vector<BlockMeta> blocks_;  // time-ordered
  std::vector<Event> buffer_;      // unsealed tail block
};

}  // namespace ss

#endif  // SUMMARYSTORE_SRC_BASELINE_ENUM_STORE_H_
