#include "src/baseline/exponential_histogram.h"

#include "src/common/logging.h"

namespace ss {

ExponentialHistogram::ExponentialHistogram(Timestamp window, uint32_t k)
    : window_(window), per_size_limit_((k + 1) / 2 + 2) {
  SS_CHECK(window > 0) << "EH: window must be positive";
  SS_CHECK(k >= 1) << "EH: k must be >= 1";
}

void ExponentialHistogram::Add(Timestamp ts) {
  SS_DCHECK(ts >= last_ts_) << "EH: non-monotone timestamp";
  last_ts_ = ts;
  Expire(ts);
  buckets_.push_front(Bucket{ts, 1});
  Cascade();
}

void ExponentialHistogram::Expire(Timestamp now) {
  // Drop buckets whose newest event already fell out of the window.
  while (!buckets_.empty() && buckets_.back().newest <= now - window_) {
    buckets_.pop_back();
  }
}

void ExponentialHistogram::Cascade() {
  // Walk sizes from smallest (front) to largest; whenever a size class
  // exceeds its limit, merge its two oldest buckets into one of twice the
  // size. Buckets of equal size are contiguous because sizes are
  // monotonically non-decreasing from front to back.
  size_t class_start = 0;
  while (class_start < buckets_.size()) {
    uint64_t size = buckets_[class_start].size;
    size_t class_end = class_start;
    while (class_end < buckets_.size() && buckets_[class_end].size == size) {
      ++class_end;
    }
    size_t count = class_end - class_start;
    if (count <= per_size_limit_) {
      class_start = class_end;
      continue;
    }
    // Merge the two oldest buckets of this size (at positions end-1, end-2).
    // The merged bucket keeps the newer of the two timestamps and doubles in
    // size, joining the next size class; re-examine from the same position.
    Bucket merged{buckets_[class_end - 2].newest, size * 2};
    buckets_.erase(buckets_.begin() + static_cast<long>(class_end) - 2,
                   buckets_.begin() + static_cast<long>(class_end));
    buckets_.insert(buckets_.begin() + static_cast<long>(class_end) - 2, merged);
    class_start = class_end - 2;
  }
}

double ExponentialHistogram::EstimateCount(Timestamp now) {
  Expire(now);
  if (buckets_.empty()) {
    return 0.0;
  }
  double total = 0;
  for (const Bucket& bucket : buckets_) {
    total += static_cast<double>(bucket.size);
  }
  // The oldest bucket straddles the window boundary; in expectation half of
  // it is inside (the classic EH estimator).
  return total - static_cast<double>(buckets_.back().size) / 2.0;
}

}  // namespace ss
