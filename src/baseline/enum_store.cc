#include "src/baseline/enum_store.h"

#include <algorithm>
#include <limits>

#include "src/common/serde.h"

namespace ss {

namespace {

// Key layout: 'e' <sid:8BE> <seq:8BE>; meta under 'f' <sid:8BE>.
std::string EnumBlockKey(StreamId sid, uint64_t seq) {
  std::string key = "e";
  AppendBigEndian64(&key, sid);
  AppendBigEndian64(&key, seq);
  return key;
}

std::string EnumMetaKey(StreamId sid) {
  std::string key = "f";
  AppendBigEndian64(&key, sid);
  return key;
}

}  // namespace

EnumStore::EnumStore(StreamId id, KvBackend* kv, size_t block_events)
    : id_(id), kv_(kv), block_events_(block_events) {}

std::string EnumStore::BlockKey(uint64_t seq) const { return EnumBlockKey(id_, seq); }

Status EnumStore::Append(Timestamp ts, double value) {
  if (last_ts_ != kMinTimestamp && ts < last_ts_) {
    return Status::InvalidArgument("out-of-order append");
  }
  last_ts_ = ts;
  ++count_;
  buffer_.push_back(Event{ts, value});
  if (buffer_.size() >= block_events_) {
    return FlushBuffer();
  }
  return Status::Ok();
}

Status EnumStore::FlushBuffer() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  Writer writer;
  writer.PutVarint(buffer_.size());
  writer.PutSignedVarint(buffer_.front().ts);
  Timestamp prev = buffer_.front().ts;
  for (const Event& event : buffer_) {
    writer.PutSignedVarint(event.ts - prev);
    writer.PutDouble(event.value);
    prev = event.ts;
  }
  uint64_t seq = next_seq_++;
  SS_RETURN_IF_ERROR(kv_->Put(BlockKey(seq), writer.data()));
  blocks_.push_back(BlockMeta{seq, buffer_.front().ts, buffer_.back().ts, buffer_.size()});
  buffer_.clear();
  return Status::Ok();
}

Status EnumStore::Flush() {
  SS_RETURN_IF_ERROR(FlushBuffer());
  Writer writer;
  writer.PutVarint(count_);
  writer.PutVarint(next_seq_);
  writer.PutSignedVarint(last_ts_);
  return kv_->Put(EnumMetaKey(id_), writer.data());
}

StatusOr<std::unique_ptr<EnumStore>> EnumStore::Load(StreamId id, KvBackend* kv,
                                                     size_t block_events) {
  auto store = std::make_unique<EnumStore>(id, kv, block_events);
  SS_ASSIGN_OR_RETURN(std::string meta, kv->Get(EnumMetaKey(id)));
  Reader reader(meta);
  SS_ASSIGN_OR_RETURN(store->count_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(store->next_seq_, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(store->last_ts_, reader.ReadSignedVarint());

  std::string prefix = "e";
  AppendBigEndian64(&prefix, id);
  Status scan_status = Status::Ok();
  SS_RETURN_IF_ERROR(kv->Scan(prefix, PrefixEnd(prefix),
                              [&](std::string_view key, std::string_view value) {
                                uint64_t seq = ReadBigEndian64(key.substr(9));
                                Reader block(value);
                                auto count = block.ReadVarint();
                                auto first_ts = block.ReadSignedVarint();
                                if (!count.ok() || !first_ts.ok()) {
                                  scan_status = Status::Corruption("bad enum block header");
                                  return false;
                                }
                                // ts_last is recovered lazily from the block
                                // body on first scan; store first ts for
                                // routing and approximate last with first.
                                store->blocks_.push_back(
                                    BlockMeta{seq, *first_ts, kMaxTimestamp, *count});
                                return true;
                              }));
  SS_RETURN_IF_ERROR(scan_status);
  // Tighten ts_last: block i's events end before block i+1 starts.
  for (size_t i = 0; i + 1 < store->blocks_.size(); ++i) {
    store->blocks_[i].ts_last = store->blocks_[i + 1].ts_first;
  }
  if (!store->blocks_.empty()) {
    store->blocks_.back().ts_last = store->last_ts_;
  }
  return store;
}

StatusOr<std::vector<Event>> EnumStore::LoadBlock(const BlockMeta& meta) {
  SS_ASSIGN_OR_RETURN(std::string payload, kv_->Get(BlockKey(meta.seq)));
  Reader reader(payload);
  SS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  SS_ASSIGN_OR_RETURN(Timestamp first_ts, reader.ReadSignedVarint());
  std::vector<Event> events;
  events.reserve(count);
  Timestamp prev = first_ts;
  for (uint64_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(int64_t delta, reader.ReadSignedVarint());
    Event event;
    event.ts = prev + delta;
    prev = event.ts;
    SS_ASSIGN_OR_RETURN(event.value, reader.ReadDouble());
    events.push_back(event);
  }
  return events;
}

Status EnumStore::Scan(Timestamp t1, Timestamp t2,
                       const std::function<bool(const Event&)>& visit) {
  // Sealed blocks first (binary search to the first overlapping block).
  auto it = std::partition_point(blocks_.begin(), blocks_.end(),
                                 [t1](const BlockMeta& b) { return b.ts_last < t1; });
  for (; it != blocks_.end() && it->ts_first <= t2; ++it) {
    SS_ASSIGN_OR_RETURN(std::vector<Event> events, LoadBlock(*it));
    for (const Event& event : events) {
      if (event.ts > t2) {
        return Status::Ok();
      }
      if (event.ts >= t1) {
        if (!visit(event)) {
          return Status::Ok();
        }
      }
    }
  }
  for (const Event& event : buffer_) {
    if (event.ts > t2) {
      break;
    }
    if (event.ts >= t1) {
      if (!visit(event)) {
        break;
      }
    }
  }
  return Status::Ok();
}

StatusOr<double> EnumStore::QueryCount(Timestamp t1, Timestamp t2) {
  double count = 0;
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&count](const Event&) {
    ++count;
    return true;
  }));
  return count;
}

StatusOr<double> EnumStore::QuerySum(Timestamp t1, Timestamp t2) {
  double sum = 0;
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&sum](const Event& e) {
    sum += e.value;
    return true;
  }));
  return sum;
}

StatusOr<double> EnumStore::QueryMin(Timestamp t1, Timestamp t2) {
  double best = std::numeric_limits<double>::infinity();
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&best](const Event& e) {
    best = std::min(best, e.value);
    return true;
  }));
  return best;
}

StatusOr<double> EnumStore::QueryMax(Timestamp t1, Timestamp t2) {
  double best = -std::numeric_limits<double>::infinity();
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&best](const Event& e) {
    best = std::max(best, e.value);
    return true;
  }));
  return best;
}

StatusOr<double> EnumStore::QueryFrequency(Timestamp t1, Timestamp t2, double value) {
  double count = 0;
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&](const Event& e) {
    if (e.value == value) {
      ++count;
    }
    return true;
  }));
  return count;
}

StatusOr<bool> EnumStore::QueryExistence(Timestamp t1, Timestamp t2, double value) {
  bool found = false;
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&](const Event& e) {
    if (e.value == value) {
      found = true;
      return false;
    }
    return true;
  }));
  return found;
}

StatusOr<std::vector<Event>> EnumStore::Materialize(Timestamp t1, Timestamp t2) {
  std::vector<Event> events;
  SS_RETURN_IF_ERROR(Scan(t1, t2, [&events](const Event& e) {
    events.push_back(e);
    return true;
  }));
  return events;
}

}  // namespace ss
