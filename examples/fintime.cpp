// Financial time-series example (the FinTime workload the paper's §2
// motivates): tick streams for a basket of instruments, with the
// benchmark's three query families —
//   * deep historic queries    (yearly aggregate statistics, old data)
//   * short time-depth queries (today's ticks, exact)
//   * time-moving statistics   (rolling weekly means with CIs)
// answered from a single decayed store holding years of ticks per
// instrument.
//
// Build & run:  ./build/examples/fintime
#include <cmath>
#include <cstdio>

#include "src/core/summary_store.h"
#include "src/random/arrival.h"
#include "src/random/rng.h"

namespace {

constexpr ss::Timestamp kDay = 86400;
constexpr ss::Timestamp kWeek = 7 * kDay;
constexpr ss::Timestamp kYear = 365 * kDay;
constexpr int kInstruments = 8;
constexpr int kYears = 3;

// Geometric-random-walk tick generator for one instrument.
class TickGenerator {
 public:
  TickGenerator(uint64_t seed, double open_price, double volatility, double tick_rate)
      : rng_(seed), arrivals_(tick_rate, seed ^ 0x7157), price_(open_price),
        volatility_(volatility) {}

  ss::Event Next() {
    ss::Timestamp ts = arrivals_.Next();
    price_ *= std::exp(volatility_ * rng_.NextGaussian());
    return ss::Event{ts, price_};
  }

 private:
  ss::Rng rng_;
  ss::PoissonArrivals arrivals_;
  double price_;
  double volatility_;
};

}  // namespace

int main() {
  auto store = ss::SummaryStore::Open(ss::StoreOptions{});
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  std::vector<ss::StreamId> instruments;
  ss::Timestamp horizon = 0;
  uint64_t total_ticks = 0;
  for (int i = 0; i < kInstruments; ++i) {
    ss::StreamConfig config;
    config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 4, 1);
    config.operators = ss::OperatorSet::AggregatesOnly();
    config.operators.quantile = true;
    config.operators.quantile_k = 64;
    config.arrival_model = ss::ArrivalModel::kPoisson;
    config.raw_threshold = 64;  // today's ticks answer exactly
    config.seed = 100 + static_cast<uint64_t>(i);
    instruments.push_back(*(*store)->CreateStream(std::move(config)));

    TickGenerator gen(42 + static_cast<uint64_t>(i), 50.0 + 20.0 * i, 0.0015,
                      1.0 / 600.0);  // a tick every ~10 minutes
    while (true) {
      ss::Event e = gen.Next();
      if (e.ts >= kYears * kYear) {
        break;
      }
      (void)(*store)->Append(instruments.back(), e.ts, e.value);
      horizon = std::max(horizon, e.ts);
      ++total_ticks;
    }
  }
  std::printf("ticks: %llu across %d instruments (%.1f MB raw) -> %.2f MB decayed (%.1fx)\n\n",
              static_cast<unsigned long long>(total_ticks), kInstruments,
              total_ticks * 16.0 / 1e6, (*store)->TotalSizeBytes() / 1e6,
              total_ticks * 16.0 / static_cast<double>((*store)->TotalSizeBytes()));

  // --- deep historic: yearly mean + p95 price per instrument, 2 years back.
  std::printf("deep historic: year-1 statistics (aged ~2 years)\n");
  std::printf("%12s %12s %12s %24s\n", "instrument", "mean", "p95", "mean 95% CI");
  for (int i = 0; i < 4; ++i) {
    ss::QuerySpec spec{.t1 = 0, .t2 = kYear - 1, .op = ss::QueryOp::kMean};
    auto mean = (*store)->Query(instruments[static_cast<size_t>(i)], spec);
    spec.op = ss::QueryOp::kQuantile;
    spec.quantile_q = 0.95;
    auto p95 = (*store)->Query(instruments[static_cast<size_t>(i)], spec);
    if (!mean.ok() || !p95.ok()) {
      continue;
    }
    std::printf("%12d %12.2f %12.2f     [%8.2f, %8.2f]\n", i, mean->estimate, p95->estimate,
                mean->ci_lo, mean->ci_hi);
  }

  // --- short time-depth: today's tick count and range, answered exactly
  // from the raw tail windows.
  std::printf("\nshort depth: last day (exact from raw tail windows)\n");
  std::printf("%12s %10s %12s %12s %8s\n", "instrument", "ticks", "low", "high", "exact");
  for (int i = 0; i < 4; ++i) {
    ss::QuerySpec spec{.t1 = horizon - kDay, .t2 = horizon, .op = ss::QueryOp::kCount};
    auto count = (*store)->Query(instruments[static_cast<size_t>(i)], spec);
    spec.op = ss::QueryOp::kMin;
    auto low = (*store)->Query(instruments[static_cast<size_t>(i)], spec);
    spec.op = ss::QueryOp::kMax;
    auto high = (*store)->Query(instruments[static_cast<size_t>(i)], spec);
    if (!count.ok() || !low.ok() || !high.ok()) {
      continue;
    }
    std::printf("%12d %10.0f %12.2f %12.2f %8s\n", i, count->estimate, low->estimate,
                high->estimate, count->exact ? "yes" : "no");
  }

  // --- time-moving statistics: 8-week rolling weekly mean for instrument 0,
  // one year back (each point is a range query with a CI).
  std::printf("\ntime-moving: weekly mean, instrument 0, one year ago\n");
  std::printf("%10s %12s %24s\n", "week", "mean", "95% CI");
  for (int w = 0; w < 8; ++w) {
    ss::Timestamp t1 = kYear + static_cast<ss::Timestamp>(w) * kWeek;
    ss::QuerySpec spec{.t1 = t1, .t2 = t1 + kWeek - 1, .op = ss::QueryOp::kMean};
    auto mean = (*store)->Query(instruments[0], spec);
    if (!mean.ok()) {
      continue;
    }
    std::printf("%10d %12.2f     [%8.2f, %8.2f]\n", w, mean->estimate, mean->ci_lo,
                mean->ci_hi);
  }
  return 0;
}
