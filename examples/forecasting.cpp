// Forecasting example (the §7.1.1 scenario): train the Prophet-style
// forecaster on (a) the full raw series, (b) a uniformly sampled store, and
// (c) a time-decayed SummaryStore, and compare hold-out accuracy. Decay
// keeps recent structure dense while shedding storage, so its forecasts stay
// close to the full-data baseline at a fraction of the footprint.
//
// Build & run:  ./build/examples/forecasting
#include <cstdio>

#include "src/analytics/forecaster.h"
#include "src/analytics/reconstruct.h"
#include "src/core/summary_store.h"
#include "src/workload/generators.h"

namespace {

constexpr ss::Timestamp kDay = 86400;

double EvaluateForecast(std::span<const ss::Event> train, std::span<const ss::Event> test) {
  ss::ForecasterOptions options;
  options.seasonal_periods = {7.0 * kDay, 365.25 * kDay};
  auto model = ss::Forecaster::Fit(train, options);
  if (!model.ok()) {
    return -1.0;
  }
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const ss::Event& e : test) {
    actual.push_back(e.value);
    predicted.push_back(model->Predict(e.ts));
  }
  return ss::Smape(actual, predicted);
}

}  // namespace

int main() {
  std::printf("%-8s %-14s %12s %12s %12s\n", "dataset", "store", "samples", "compaction",
              "SMAPE");
  for (ss::ForecastDataset dataset :
       {ss::ForecastDataset::kEcon, ss::ForecastDataset::kWiki, ss::ForecastDataset::kNoaa}) {
    auto series = ss::GenerateForecastSeries(dataset, 4000, 99);
    size_t split = series.size() * 9 / 10;
    std::vector<ss::Event> train(series.begin(), series.begin() + static_cast<long>(split));
    std::vector<ss::Event> test(series.begin() + static_cast<long>(split), series.end());

    // (a) Full enumeration baseline.
    double base = EvaluateForecast(train, test);
    std::printf("%-8s %-14s %12zu %12s %11.2f%%\n", ss::ForecastDatasetName(dataset), "full",
                train.size(), "1x", base * 100);

    // (b, c) Uniform vs power-law decayed SummaryStore instances at matched
    // storage budgets.
    struct StoreSpec {
      const char* name;
      std::shared_ptr<const ss::DecayFunction> decay;
    };
    const StoreSpec specs[] = {
        {"uniform", std::make_shared<ss::UniformDecay>(40)},
        {"powerlaw", std::make_shared<ss::PowerLawDecay>(1, 1, 1, 1)},
        {"exponential", std::make_shared<ss::ExponentialDecay>(2.0, 2, 1)},
    };
    for (const StoreSpec& spec : specs) {
      auto store = ss::SummaryStore::Open(ss::StoreOptions{});
      ss::StreamConfig config;
      config.decay = spec.decay;
      config.operators = ss::OperatorSet::AggregatesOnly();
      config.operators.reservoir = true;
      config.operators.reservoir_capacity = 6;
      config.raw_threshold = 6;
      ss::StreamId sid = *(*store)->CreateStream(std::move(config));
      for (const ss::Event& e : train) {
        (void)(*store)->Append(sid, e.ts, e.value);
      }
      auto* stream = (*store)->GetStream(sid).value();
      auto samples = ss::ReconstructSamples(*stream, 0, train.back().ts);
      if (!samples.ok()) {
        continue;
      }
      double smape = EvaluateForecast(*samples, test);
      char compaction[32];
      std::snprintf(compaction, sizeof(compaction), "%.1fx",
                    static_cast<double>(train.size()) / static_cast<double>(samples->size()));
      std::printf("%-8s %-14s %12zu %12s %11.2f%%\n", ss::ForecastDatasetName(dataset),
                  spec.name, samples->size(), compaction, smape * 100);
    }
    std::printf("\n");
  }
  return 0;
}
