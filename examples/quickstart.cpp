// Quickstart: the SummaryStore API end to end (Table 3 of the paper).
//
// Creates a store, configures a stream with power-law decay and the full
// operator set, ingests a year of synthetic sensor readings, marks one
// anomalous interval as a landmark, and runs the paper's example queries:
//
//   "What was the avg. energy consumption last month?"
//   "Did a particular node back up last week?"        (existence)
//   "How many times did a user visit the server?"     (frequency)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/summary_store.h"
#include "src/random/arrival.h"
#include "src/random/rng.h"

namespace {

constexpr ss::Timestamp kDay = 86400;
constexpr ss::Timestamp kMonth = 30 * kDay;
constexpr ss::Timestamp kYear = 365 * kDay;

void PrintResult(const char* question, const ss::QueryResult& result) {
  std::printf("%-55s -> %10.2f  (95%% CI [%.2f, %.2f]%s)\n", question, result.estimate,
              result.ci_lo, result.ci_hi, result.exact ? ", exact" : "");
}

}  // namespace

int main() {
  // An in-memory store; pass StoreOptions{.dir = "/path"} for durability.
  auto store = ss::SummaryStore::Open(ss::StoreOptions{});
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  // CreateStream(decay, [summary operators]).
  ss::StreamConfig config;
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 1, 1);  // ~100x at scale
  config.operators = ss::OperatorSet::Full();
  // Size the per-window sketches for a laptop-scale stream (the paper's
  // ~40 KB windows amortize over billions of events; ours over a million).
  config.operators.bloom_bits = 512;
  config.operators.cms_width = 64;
  config.operators.cms_depth = 4;
  config.operators.cbf_counters = 256;
  config.operators.hll_precision = 8;
  config.operators.hist_buckets = 32;
  config.operators.quantile_k = 32;
  config.operators.reservoir_capacity = 16;
  config.operators.hist_lo = 0.0;
  config.operators.hist_hi = 100.0;
  config.arrival_model = ss::ArrivalModel::kPoisson;
  auto sid = (*store)->CreateStream(std::move(config));

  // Append one year of readings: a value every ~30 seconds.
  ss::Rng rng(2024);
  ss::Timestamp now = 0;
  ss::PoissonArrivals arrivals(1.0 / 30.0, 7);
  long appended = 0;
  while (true) {
    ss::Timestamp ts = arrivals.Next();
    if (ts >= kYear) {
      break;
    }
    double watts = 40.0 + 10.0 * rng.NextGaussian();
    if (ts >= 100 * kDay && ts < 100 * kDay + 3600 && !(*store)->GetStream(*sid).value()->in_landmark()) {
      // An operator notices a brownout event: preserve it losslessly.
      (void)(*store)->BeginLandmark(*sid, ts);
    }
    if (ts >= 100 * kDay + 3600 && (*store)->GetStream(*sid).value()->in_landmark()) {
      (void)(*store)->EndLandmark(*sid, ts);
    }
    if ((*store)->GetStream(*sid).value()->in_landmark()) {
      watts = 95.0;  // the anomaly itself
    }
    if (auto s = (*store)->Append(*sid, ts, watts); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
    ++appended;
    now = ts;
  }

  auto* stream = (*store)->GetStream(*sid).value();
  std::printf("ingested %ld events; store keeps %zu summary windows + %zu landmark windows\n",
              appended, stream->window_count(), stream->landmark_window_count());
  std::printf("raw data %.1f MB -> decayed store %.2f MB (%.0fx compaction)\n\n",
              appended * 16.0 / 1e6, stream->SizeBytes() / 1e6,
              appended * 16.0 / static_cast<double>(stream->SizeBytes()));

  // Query(stream, Ts, Te, operator, params) -> (answer, confidence estimate).
  ss::QuerySpec spec;
  spec.t1 = now - kMonth;
  spec.t2 = now;
  spec.op = ss::QueryOp::kMean;
  PrintResult("avg consumption, last month", *(*store)->Query(*sid, spec));

  spec.op = ss::QueryOp::kCount;
  spec.t1 = now - 7 * kDay;
  PrintResult("number of readings, last week", *(*store)->Query(*sid, spec));

  spec.op = ss::QueryOp::kSum;
  spec.t1 = 0;
  spec.t2 = now;
  PrintResult("total consumption, full year", *(*store)->Query(*sid, spec));

  spec.op = ss::QueryOp::kMax;
  PrintResult("max reading, full year", *(*store)->Query(*sid, spec));

  spec.op = ss::QueryOp::kQuantile;
  spec.quantile_q = 0.99;
  PrintResult("p99 reading, full year", *(*store)->Query(*sid, spec));

  // The landmark interval is preserved exactly even though it is months old.
  auto landmark_events = (*store)->QueryLandmark(*sid, 100 * kDay, 100 * kDay + 3600);
  std::printf("\nlandmark enumeration over the anomaly hour: %zu exact events\n",
              landmark_events->size());

  spec.op = ss::QueryOp::kExistence;
  spec.value = 95.0;
  spec.t1 = 99 * kDay;
  spec.t2 = 102 * kDay;
  auto exists = (*store)->Query(*sid, spec);
  std::printf("did a 95W reading occur around day 100?          -> %s (p=%.3f)\n",
              exists->bool_answer ? "yes" : "no", exists->estimate);
  return 0;
}
