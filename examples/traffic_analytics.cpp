// Internet-traffic analytics example (the §7.4 M-Lab scenario): a visit log
// with Zipf-distributed client IPs is decayed 5x; frequency and membership
// queries over arbitrary time ranges run against the CMS and Bloom operators
// with confidence estimates, Aperture-style but *without* requiring
// window-aligned queries.
//
// Build & run:  ./build/examples/traffic_analytics
#include <cstdio>
#include <map>

#include "src/core/summary_store.h"
#include "src/workload/generators.h"

int main() {
  auto store = ss::SummaryStore::Open(ss::StoreOptions{});
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  ss::StreamConfig config;
  // The paper's §7.4 run uses PowerLaw(1,1,4,1) on 170M visits; at this
  // example's 1M-visit scale an equivalent ~6x compaction needs the more
  // aggressive q=2 family and sketches sized for thousands (not millions)
  // of elements per window.
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 2, 8, 1);
  config.operators = ss::OperatorSet::Microbench();  // count/sum/minmax + bloom + CMS
  config.operators.bloom_bits = 1024;
  config.operators.cms_width = 128;
  config.operators.cms_depth = 4;
  config.arrival_model = ss::ArrivalModel::kPoisson;
  config.raw_threshold = 32;
  ss::StreamId sid = *(*store)->CreateStream(std::move(config));

  // ~1 visit/second over two simulated weeks, 50k distinct client IPs.
  ss::MLabTraceGenerator gen(1.0, 50000, 1.1, 404);
  std::map<int64_t, std::vector<ss::Timestamp>> truth;
  ss::Timestamp horizon = 0;
  const int kVisits = 1000000;
  for (int i = 0; i < kVisits; ++i) {
    ss::Event e = gen.Next();
    truth[static_cast<int64_t>(e.value)].push_back(e.ts);
    if (auto s = (*store)->Append(sid, e.ts, e.value); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
    horizon = e.ts;
  }
  auto* stream = (*store)->GetStream(sid).value();
  std::printf("visit log: %d visits -> %zu windows, %.1fx compaction\n\n", kVisits,
              stream->window_count(),
              kVisits * 16.0 / static_cast<double>(stream->SizeBytes()));

  auto count_in = [&](int64_t ip, ss::Timestamp lo, ss::Timestamp hi) {
    double count = 0;
    for (ss::Timestamp t : truth[ip]) {
      if (t >= lo && t <= hi) {
        ++count;
      }
    }
    return count;
  };

  // "How many times did this client visit in <range>?"
  std::printf("%-44s %10s %10s %20s\n", "frequency query", "truth", "estimate", "95% CI");
  struct RangeSpec {
    const char* name;
    ss::Timestamp lo;
    ss::Timestamp hi;
  };
  const RangeSpec ranges[] = {
      {"rank-1 IP, full history", 0, horizon},
      {"rank-1 IP, first day (old data)", 0, 86400},
      {"rank-3 IP, last hour (fresh data)", horizon - 3600, horizon},
      {"rank-10 IP, mid-week window", horizon / 2, horizon / 2 + 6 * 86400},
  };
  const int64_t ips[] = {1, 1, 3, 10};
  for (int i = 0; i < 4; ++i) {
    ss::QuerySpec spec{.t1 = ranges[i].lo, .t2 = ranges[i].hi, .op = ss::QueryOp::kFrequency,
                       .value = static_cast<double>(ips[i])};
    auto result = (*store)->Query(sid, spec);
    if (!result.ok()) {
      continue;
    }
    std::printf("%-44s %10.0f %10.1f   [%8.1f, %8.1f]\n", ranges[i].name,
                count_in(ips[i], ranges[i].lo, ranges[i].hi), result->estimate, result->ci_lo,
                result->ci_hi);
  }

  // "Did this rare client visit recently?" Recent windows are small (or
  // still raw), so membership is sharp there; over wide historical ranges
  // heavily merged Bloom filters saturate toward "yes" — exactly the
  // behavior §7.2.2 reports for month-scale membership at high compaction.
  std::printf("\n%-44s %8s %8s %8s\n", "membership query (last 6 hours)", "truth", "answer",
              "p");
  for (int64_t ip : {49990, 49991, 2}) {
    ss::Timestamp lo = horizon - 6 * 3600;
    ss::Timestamp hi = horizon;
    ss::QuerySpec spec{.t1 = lo, .t2 = hi, .op = ss::QueryOp::kExistence,
                       .value = static_cast<double>(ip)};
    auto result = (*store)->Query(sid, spec);
    if (!result.ok()) {
      continue;
    }
    bool actual = count_in(ip, lo, hi) > 0;
    std::printf("IP rank %-36lld %8s %8s %8.3f\n", static_cast<long long>(ip),
                actual ? "yes" : "no", result->bool_answer ? "yes" : "no", result->estimate);
  }
  return 0;
}
