// DevOps monitoring example (the §7.1.2 scenario): a cluster's CPU
// utilization stream is ingested with aggressive decay; a streaming
// Three-Sigma policy wraps anomalies in landmark windows at ingest. An
// Etsy-Kale-style analysis then (1) finds outlier intervals over the *whole*
// history, and (2) computes moving averages — both from the decayed store —
// and compares against ground truth.
//
// Build & run:  ./build/examples/devops_monitoring
#include <cstdio>

#include "src/analytics/outlier.h"
#include "src/analytics/reconstruct.h"
#include "src/core/summary_store.h"
#include "src/workload/generators.h"

namespace {

constexpr ss::Timestamp kHour = 3600;

}  // namespace

int main() {
  auto store = ss::SummaryStore::Open(ss::StoreOptions{});
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  ss::StreamConfig config;
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 2, 5, 1);
  config.operators = ss::OperatorSet::AggregatesOnly();
  config.operators.reservoir = true;
  config.operators.reservoir_capacity = 8;
  config.raw_threshold = 8;
  ss::StreamId sid = *(*store)->CreateStream(std::move(config));

  // Three weeks of per-minute utilization samples, outlier-heavy like the
  // Google cluster trace.
  ss::ClusterTraceGenerator gen(60, 0.004, 20240601);
  ss::ThreeSigmaPolicy policy(2.2, 500);
  std::vector<ss::Event> ground_truth;
  ss::Timestamp t_end = 0;
  for (int i = 0; i < 3 * 7 * 24 * 60; ++i) {
    ss::Event e = gen.Next();
    ground_truth.push_back(e);
    t_end = e.ts + 1;
    if (policy.Observe(e.value)) {
      (void)(*store)->BeginLandmark(sid, e.ts);
      (void)(*store)->Append(sid, e.ts, e.value);
      (void)(*store)->EndLandmark(sid, e.ts);
    } else {
      (void)(*store)->Append(sid, e.ts, e.value);
    }
  }

  auto* stream = (*store)->GetStream(sid).value();
  double raw_mb = ground_truth.size() * 16.0 / 1e6;
  double store_mb = stream->SizeBytes() / 1e6;
  std::printf("cluster trace: %zu samples (%.1f MB raw) -> %.2f MB decayed (%.1fx), "
              "%zu landmark windows\n\n",
              ground_truth.size(), raw_mb, store_mb, raw_mb / store_mb,
              stream->landmark_window_count());

  // Outlier detection over full history: boxplot test per hour.
  auto samples = ss::ReconstructSamples(*stream, 0, t_end);
  ss::OutlierReport truth = ss::DetectOutliers(ground_truth, 0, t_end, kHour);
  ss::OutlierReport approx = ss::DetectOutliers(*samples, 0, t_end, kHour);
  ss::OutlierAccuracy acc = ss::CompareOutlierReports(truth, approx);
  std::printf("outlier intervals (truth): %zu\n", truth.flagged);
  std::printf("recovered from decayed store + landmarks: %zu (missed %zu, spurious %zu)\n\n",
              acc.true_positives, acc.false_negatives, acc.false_positives);

  // Moving averages (the aggregation workload of Figure 6) straight from
  // the query engine, with confidence intervals.
  std::printf("%-28s %10s %10s %22s\n", "window", "true avg", "est avg", "95% CI");
  for (int day = 0; day < 21; day += 5) {
    ss::Timestamp lo = day * 24 * kHour;
    ss::Timestamp hi = lo + 24 * kHour - 1;
    double sum = 0;
    double count = 0;
    for (const ss::Event& e : ground_truth) {
      if (e.ts >= lo && e.ts <= hi) {
        sum += e.value;
        ++count;
      }
    }
    ss::QuerySpec spec{.t1 = lo, .t2 = hi, .op = ss::QueryOp::kMean};
    auto result = (*store)->Query(sid, spec);
    if (!result.ok()) {
      continue;
    }
    std::printf("day %-24d %10.4f %10.4f     [%8.4f, %8.4f]\n", day, sum / count,
                result->estimate, result->ci_lo, result->ci_hi);
  }
  return 0;
}
