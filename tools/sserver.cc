// sserver — the SummaryStore TCP daemon (DESIGN.md §12). Opens a durable
// store directory and serves the full sstool surface over the length-prefixed
// binary protocol; any sstool subcommand works against it via
// `sstool <cmd> --connect host:port`.
//
//   sserver --dir D [--host H] [--port P] [--workers N]
//           [--ingest-bound EVENTS] [--backpressure block|shed]
//           [--no-durable-acks] [--sync-wal] [--tenants FILE]
//           [--scrub-interval MS] [--scrub-no-repair]
//           [--max-conn-buffer-bytes N] [--slow-peer-timeout-ms MS]
//           [--drain-grace-ms MS]
//
//   --port 0 (default) binds an ephemeral port; the chosen one is printed.
//   --tenants FILE enables multi-tenant mode (DESIGN.md §14): clients must
//     hello with a tenant id + token (sstool: --tenant/--token), stream ids
//     are scoped per tenant, and the ingest budget is fair-shared. Without
//     it the server runs in legacy single-tenant mode.
//   --ingest-bound caps events admitted but not yet acknowledged; at the
//     bound, `block` stops reading the offending connections (TCP pushes
//     back) while `shed` answers FAILED_PRECONDITION immediately.
//   --no-durable-acks acks ingest before the covering flush (throughput
//     experiments; an acked append may be lost on a hard kill).
//   --sync-wal makes every acknowledged write survive power loss, not just
//     process death.
//   --max-conn-buffer-bytes bounds each connection's queued-response memory;
//     a peer that stays over the bound for --slow-peer-timeout-ms without
//     reading is disconnected (slow-peer defense, DESIGN.md §15). 0 (the
//     default) keeps the legacy unbounded behavior.
//   --drain-grace-ms makes SIGTERM/SIGINT announce the shutdown first: kPing
//     health probes answer "draining" for that long before the actual stop,
//     so load balancers drain connections instead of seeing resets.
//
// Prints exactly one `listening on HOST:PORT` line to stdout once serving
// (smoke tests and bench harnesses key off it), then runs until SIGINT or
// SIGTERM, which trigger a graceful drain: stop accepting, finish in-flight
// requests, flush + ack the ingest tail, close.
#include <signal.h>
#include <time.h>

#include <cstdio>
#include <string>

#include "src/core/summary_store.h"
#include "src/net/server.h"
#include "src/obs/flight_recorder.h"
#include "tools/cli.h"

namespace ss {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "sserver: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sserver --dir DIR [--host H] [--port P] [--workers N]\n"
               "               [--ingest-bound EVENTS] [--backpressure block|shed]\n"
               "               [--no-durable-acks] [--sync-wal] [--tenants FILE]\n"
               "               [--scrub-interval MS] [--scrub-no-repair]\n"
               "               [--max-conn-buffer-bytes N] [--slow-peer-timeout-ms MS]\n"
               "               [--drain-grace-ms MS]\n");
  return 2;
}

int Main(int argc, char** argv) {
  FlightRecorder::Default().InstallCrashHandler();
  auto args = ParseArgs(argc, argv, 1, {"no-durable-acks", "sync-wal", "scrub-no-repair"});
  if (!args.ok()) {
    return Fail(args.status());
  }
  if (!args->Has("dir")) {
    return Usage();
  }

  // Block the shutdown signals before any thread spawns, so every server
  // thread inherits the mask and only the sigwait below receives them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  StoreOptions store_options;
  store_options.dir = args->flags.at("dir");
  store_options.lsm.sync_wal = args->Has("sync-wal");
  store_options.scrub_interval_ms = std::stoull(args->GetOr("scrub-interval", "0"));
  store_options.scrub_repair = !args->Has("scrub-no-repair");
  auto store = SummaryStore::Open(store_options);
  if (!store.ok()) {
    return Fail(store.status());
  }

  net::ServerOptions options;
  options.host = args->GetOr("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(std::stoul(args->GetOr("port", "0")));
  options.worker_threads = std::stoull(args->GetOr("workers", "0"));
  options.ingest_queue_events = std::stoull(args->GetOr("ingest-bound", "65536"));
  options.durable_acks = !args->Has("no-durable-acks");
  options.max_conn_buffer_bytes = std::stoull(args->GetOr("max-conn-buffer-bytes", "0"));
  options.slow_peer_timeout_ms = std::stoull(args->GetOr("slow-peer-timeout-ms", "5000"));
  const std::string policy = args->GetOr("backpressure", "block");
  if (policy == "shed") {
    options.backpressure = net::ServerOptions::Backpressure::kShed;
  } else if (policy == "block") {
    options.backpressure = net::ServerOptions::Backpressure::kBlock;
  } else {
    return Fail(Status::InvalidArgument("--backpressure must be block or shed"));
  }
  if (args->Has("tenants")) {
    auto registry = net::TenantRegistry::LoadFile(args->flags.at("tenants"));
    if (!registry.ok()) {
      return Fail(registry.status());
    }
    options.tenants =
        std::make_shared<const net::TenantRegistry>(std::move(registry).value());
    std::fprintf(stderr, "sserver: multi-tenant mode, %zu tenant(s)\n",
                 options.tenants->size());
  }

  auto server = net::Server::Start(store->get(), options);
  if (!server.ok()) {
    return Fail(server.status());
  }
  std::printf("listening on %s:%u\n", options.host.c_str(), (*server)->port());
  std::fflush(stdout);

  int sig = 0;
  while (sigwait(&sigs, &sig) != 0) {
  }
  std::fprintf(stderr, "sserver: received %s, draining\n", sig == SIGINT ? "SIGINT" : "SIGTERM");
  const uint64_t drain_grace_ms = std::stoull(args->GetOr("drain-grace-ms", "0"));
  if (drain_grace_ms > 0) {
    // Announce first, stop later: health probes answer "draining" during the
    // grace window so clients and load balancers fail over cleanly.
    (*server)->BeginDrain();
    struct timespec grace;
    grace.tv_sec = static_cast<time_t>(drain_grace_ms / 1000);
    grace.tv_nsec = static_cast<long>((drain_grace_ms % 1000) * 1'000'000);
    nanosleep(&grace, nullptr);
  }
  (*server)->Stop();
  server->reset();
  if (Status s = (*store)->Flush(); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

}  // namespace
}  // namespace ss

int main(int argc, char** argv) { return ss::Main(argc, argv); }
