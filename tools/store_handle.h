// StoreHandle: the uniform store surface sstool's subcommands run against,
// with two backends — a local durable directory (--dir, the historical mode)
// and a live sserver over TCP (--connect host:port). Commands are written
// once against this interface and work identically in both modes; results
// that the server computes remotely (rendered query traces, the metrics
// registry text, per-stream info rows) come back as wire types.
#ifndef SUMMARYSTORE_TOOLS_STORE_HANDLE_H_
#define SUMMARYSTORE_TOOLS_STORE_HANDLE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/retry_client.h"
#include "tools/cli.h"

namespace ss {

class StoreHandle {
 public:
  // Picks the backend from the parsed flags: --connect host:port dials a
  // server, otherwise --dir opens the directory in-process. Exactly one of
  // the two must be present.
  static StatusOr<std::unique_ptr<StoreHandle>> Open(const ParsedArgs& args);

  virtual ~StoreHandle() = default;

  // id 0 = auto-assign; returns the created id. Durable on return.
  virtual StatusOr<StreamId> CreateStream(StreamId id, StreamConfig config) = 0;
  virtual Status DeleteStream(StreamId id) = 0;
  virtual StatusOr<std::vector<StreamId>> ListStreams() = 0;
  virtual Status Append(StreamId id, Timestamp ts, double value) = 0;
  virtual Status AppendBatch(StreamId id, std::span<const Event> events) = 0;
  // Durable on return (local: append + flush; remote: server flushes).
  virtual Status BeginLandmark(StreamId id, Timestamp ts) = 0;
  virtual Status EndLandmark(StreamId id, Timestamp ts) = 0;
  // trace_text is populated when spec.collect_trace is set.
  virtual StatusOr<net::WireQueryResult> Query(StreamId id, const QuerySpec& spec) = 0;
  virtual Status Flush() = 0;
  virtual Status Scrub(bool repair, ScrubReport* report) = 0;
  // Metrics registry rendering (remote: the *server* process's registry,
  // which is where the store's counters live).
  virtual StatusOr<std::string> Stats(bool prometheus) = 0;
  // id 0 = all streams.
  virtual StatusOr<std::vector<net::StreamInfo>> StreamInfos(StreamId id) = 0;
};

}  // namespace ss

#endif  // SUMMARYSTORE_TOOLS_STORE_HANDLE_H_
