// Perf-trajectory gate: diff a current bench report against a committed
// baseline and fail when a metric regresses past the threshold in its own
// "better" direction. tools/ci.sh runs this after the CI-profile bench runs
// so order-of-magnitude regressions land red instead of silently shipping.
//
//   bench_compare <baseline.json> <current.json> [--threshold-pct N]
//
// Exit 0: comparable and within threshold (or incomparable -> skipped with a
// note, so a deliberate profile change doesn't wedge CI). Exit 1: at least
// one regression beyond the threshold. Exit 2: usage / unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/storage/file_util.h"

namespace {

using ss::bench::BenchReport;

bool LoadReport(const char* path, BenchReport* out) {
  auto text = ss::ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "bench_compare: cannot read %s: %s\n", path,
                 text.status().ToString().c_str());
    return false;
  }
  if (!BenchReport::ParseJson(*text, out)) {
    std::fprintf(stderr, "bench_compare: %s is not a bench report\n", path);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 50.0;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold-pct") == 0 && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    }
  }
  if (npaths != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> [--threshold-pct N]\n");
    return 2;
  }

  BenchReport base(""), cur("");
  if (!LoadReport(paths[0], &base) || !LoadReport(paths[1], &cur)) {
    return 2;
  }
  if (base.bench() != cur.bench() || base.meta() != cur.meta()) {
    std::printf("bench_compare: run profiles differ (baseline '%s' vs current '%s'); "
                "skipping comparison.\n",
                base.bench().c_str(), cur.bench().c_str());
    for (const auto& [k, v] : base.meta()) {
      auto it = cur.meta().find(k);
      std::printf("  meta %s: baseline=%s current=%s\n", k.c_str(), v.c_str(),
                  it != cur.meta().end() ? it->second.c_str() : "(missing)");
    }
    return 0;
  }

  std::printf("bench '%s' vs baseline (regression threshold %.0f%%):\n", cur.bench().c_str(),
              threshold_pct);
  int regressions = 0;
  for (const auto& [name, m] : cur.metrics()) {
    auto it = base.metrics().find(name);
    if (it == base.metrics().end()) {
      std::printf("  %-52s %14.4g %-9s (new, no baseline)\n", name.c_str(), m.value,
                  m.unit.c_str());
      continue;
    }
    const double b = it->second.value;
    const double delta_pct = b != 0.0 ? (m.value - b) / b * 100.0 : 0.0;
    // Regression is movement against the metric's better-direction.
    const bool lower_better = m.direction != "higher";
    const bool regressed = lower_better ? delta_pct > threshold_pct
                                        : delta_pct < -threshold_pct;
    std::printf("  %-52s %14.4g -> %14.4g %-9s %+8.1f%%%s\n", name.c_str(), b, m.value,
                m.unit.c_str(), delta_pct, regressed ? "  REGRESSION" : "");
    regressions += regressed ? 1 : 0;
  }
  for (const auto& [name, m] : base.metrics()) {
    if (cur.metrics().find(name) == cur.metrics().end()) {
      std::printf("  %-52s %14.4g %-9s (missing from current run)\n", name.c_str(), m.value,
                  m.unit.c_str());
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d metric(s) regressed beyond %.0f%%\n", regressions,
                 threshold_pct);
    return 1;
  }
  std::printf("bench_compare: OK, no regressions beyond %.0f%%\n", threshold_pct);
  return 0;
}
