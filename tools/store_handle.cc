#include "tools/store_handle.h"

#include "src/obs/metrics.h"

namespace ss {
namespace {

class LocalStoreHandle : public StoreHandle {
 public:
  explicit LocalStoreHandle(std::unique_ptr<SummaryStore> store) : store_(std::move(store)) {}

  StatusOr<StreamId> CreateStream(StreamId id, StreamConfig config) override {
    StreamId created = id;
    if (id == 0) {
      SS_ASSIGN_OR_RETURN(created, store_->CreateStream(std::move(config)));
    } else {
      SS_RETURN_IF_ERROR(store_->CreateStreamWithId(id, std::move(config)));
    }
    SS_RETURN_IF_ERROR(store_->Flush());
    return created;
  }

  Status DeleteStream(StreamId id) override { return store_->DeleteStream(id); }

  StatusOr<std::vector<StreamId>> ListStreams() override { return store_->ListStreams(); }

  Status Append(StreamId id, Timestamp ts, double value) override {
    return store_->Append(id, ts, value);
  }

  Status AppendBatch(StreamId id, std::span<const Event> events) override {
    return store_->AppendBatch(id, events);
  }

  Status BeginLandmark(StreamId id, Timestamp ts) override {
    SS_RETURN_IF_ERROR(store_->BeginLandmark(id, ts));
    return store_->Flush();
  }

  Status EndLandmark(StreamId id, Timestamp ts) override {
    SS_RETURN_IF_ERROR(store_->EndLandmark(id, ts));
    return store_->Flush();
  }

  StatusOr<net::WireQueryResult> Query(StreamId id, const QuerySpec& spec) override {
    SS_ASSIGN_OR_RETURN(QueryResult result, store_->Query(id, spec));
    net::WireQueryResult out;
    if (spec.collect_trace && result.trace != nullptr) {
      out.trace_text = result.trace->Render();
    }
    out.result = std::move(result);
    return out;
  }

  Status Flush() override { return store_->Flush(); }

  Status Scrub(bool repair, ScrubReport* report) override {
    return store_->Scrub(repair, report);
  }

  StatusOr<std::string> Stats(bool prometheus) override {
    MetricRegistry& registry = MetricRegistry::Default();
    std::vector<StreamId> ids = store_->ListStreams();
    registry.GetGauge("ss_store_streams").Set(static_cast<int64_t>(ids.size()));
    registry.GetGauge("ss_store_size_bytes").Set(static_cast<int64_t>(store_->TotalSizeBytes()));
    registry.GetGauge("ss_store_backend_bytes")
        .Set(static_cast<int64_t>(store_->backend().ApproximateSizeBytes()));
    uint64_t windows = 0;
    uint64_t events = 0;
    uint64_t landmarks = 0;
    for (StreamId id : ids) {
      SS_ASSIGN_OR_RETURN(Stream * stream, store_->GetStream(id));
      windows += stream->window_count();
      events += stream->element_count();
      landmarks += stream->landmark_window_count();
    }
    registry.GetGauge("ss_store_windows").Set(static_cast<int64_t>(windows));
    registry.GetGauge("ss_store_events").Set(static_cast<int64_t>(events));
    registry.GetGauge("ss_store_landmark_windows").Set(static_cast<int64_t>(landmarks));
    return prometheus ? registry.RenderPrometheusText() : registry.RenderJson();
  }

  StatusOr<std::vector<net::StreamInfo>> StreamInfos(StreamId id) override {
    std::vector<StreamId> ids;
    if (id != 0) {
      ids.push_back(id);
    } else {
      ids = store_->ListStreams();
    }
    std::vector<net::StreamInfo> rows;
    rows.reserve(ids.size());
    for (StreamId sid : ids) {
      SS_ASSIGN_OR_RETURN(Stream * stream, store_->GetStream(sid));
      net::StreamInfo info;
      info.id = sid;
      info.element_count = stream->element_count();
      info.landmark_element_count = stream->landmark_element_count();
      info.window_count = stream->window_count();
      info.landmark_window_count = stream->landmark_window_count();
      info.size_bytes = stream->SizeBytes();
      info.decay = stream->config().decay->Describe();
      rows.push_back(std::move(info));
    }
    return rows;
  }

 private:
  std::unique_ptr<SummaryStore> store_;
};

class RemoteStoreHandle : public StoreHandle {
 public:
  explicit RemoteStoreHandle(std::unique_ptr<net::RetryingClient> client)
      : client_(std::move(client)) {}

  StatusOr<StreamId> CreateStream(StreamId id, StreamConfig config) override {
    return client_->CreateStream(id, config);
  }
  Status DeleteStream(StreamId id) override { return client_->DeleteStream(id); }
  StatusOr<std::vector<StreamId>> ListStreams() override { return client_->ListStreams(); }
  Status Append(StreamId id, Timestamp ts, double value) override {
    return client_->Append(id, ts, value);
  }
  Status AppendBatch(StreamId id, std::span<const Event> events) override {
    return client_->AppendBatch(id, events);
  }
  Status BeginLandmark(StreamId id, Timestamp ts) override {
    return client_->BeginLandmark(id, ts);
  }
  Status EndLandmark(StreamId id, Timestamp ts) override {
    return client_->EndLandmark(id, ts);
  }
  StatusOr<net::WireQueryResult> Query(StreamId id, const QuerySpec& spec) override {
    return client_->Query(id, spec);
  }
  Status Flush() override { return client_->Flush(); }
  Status Scrub(bool repair, ScrubReport* report) override {
    SS_ASSIGN_OR_RETURN(*report, client_->Scrub(repair));
    return Status::Ok();
  }
  StatusOr<std::string> Stats(bool prometheus) override { return client_->Stats(prometheus); }
  StatusOr<std::vector<net::StreamInfo>> StreamInfos(StreamId id) override {
    return client_->StreamInfos(id);
  }

 private:
  std::unique_ptr<net::RetryingClient> client_;
};

}  // namespace

StatusOr<std::unique_ptr<StoreHandle>> StoreHandle::Open(const ParsedArgs& args) {
  if (args.Has("connect")) {
    const std::string& target = args.flags.at("connect");
    size_t colon = target.rfind(':');
    if (colon == std::string::npos || colon + 1 >= target.size()) {
      return Status::InvalidArgument("--connect expects host:port, got " + target);
    }
    unsigned long port = std::stoul(target.substr(colon + 1));
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("--connect port out of range: " + target);
    }
    // Remote commands run through the retrying client: --timeout-ms bounds
    // both the connect and each RPC's socket I/O, --deadline-ms stamps a wire
    // deadline the server enforces against queue time, and --retries bounds
    // the reconnect/resend loop (appends stay exactly-once via the session
    // replay-dedup contract). Defaults keep the legacy block-forever
    // behavior with a few retries for flaky links.
    net::ClientOptions client_options;
    client_options.connect_timeout_ms = std::stoull(args.GetOr("timeout-ms", "0"));
    client_options.rpc_timeout_ms = client_options.connect_timeout_ms;
    client_options.deadline_ms = std::stoull(args.GetOr("deadline-ms", "0"));
    client_options.max_retries = static_cast<uint32_t>(std::stoul(args.GetOr("retries", "3")));
    SS_ASSIGN_OR_RETURN(std::unique_ptr<net::RetryingClient> client,
                        net::RetryingClient::Connect(target.substr(0, colon),
                                                     static_cast<uint16_t>(port),
                                                     client_options));
    if (args.Has("tenant") || args.Has("token")) {
      // Multi-tenant server: authenticate before anything else. A legacy
      // server accepts and ignores the hello, so the flags are always safe.
      if (!args.Has("tenant") || !args.Has("token")) {
        return Status::InvalidArgument("--tenant and --token must be given together");
      }
      unsigned long tenant = std::stoul(args.flags.at("tenant"));
      if (tenant == 0 || tenant > 65535) {
        return Status::InvalidArgument("--tenant must be in [1, 65535]");
      }
      SS_RETURN_IF_ERROR(
          client->Hello(static_cast<uint32_t>(tenant), args.flags.at("token")));
    }
    return std::unique_ptr<StoreHandle>(new RemoteStoreHandle(std::move(client)));
  }
  if (!args.Has("dir")) {
    return Status::InvalidArgument("--dir DIR or --connect host:port is required");
  }
  StoreOptions options;
  options.dir = args.flags.at("dir");
  SS_ASSIGN_OR_RETURN(std::unique_ptr<SummaryStore> store, SummaryStore::Open(options));
  return std::unique_ptr<StoreHandle>(new LocalStoreHandle(std::move(store)));
}

}  // namespace ss
