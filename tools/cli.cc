#include "tools/cli.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace ss {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string StripSpaces(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      out.push_back(c);
    }
  }
  return out;
}

// Splits "name(a,b,c)" into name and numeric args.
Status SplitCall(const std::string& spec, std::string* name, std::vector<double>* args) {
  std::string s = StripSpaces(spec);
  size_t open = s.find('(');
  if (open == std::string::npos || s.back() != ')') {
    return Status::InvalidArgument("expected name(args...): " + spec);
  }
  *name = Lower(s.substr(0, open));
  std::string body = s.substr(open + 1, s.size() - open - 2);
  args->clear();
  if (body.empty()) {
    return Status::Ok();
  }
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      size_t used = 0;
      double v = std::stod(token, &used);
      if (used != token.size()) {
        return Status::InvalidArgument("bad number '" + token + "' in " + spec);
      }
      args->push_back(v);
    } catch (...) {
      return Status::InvalidArgument("bad number '" + token + "' in " + spec);
    }
  }
  return Status::Ok();
}

bool IsPositiveInteger(double v, uint64_t max = UINT32_MAX) {
  return v >= 1 && v <= static_cast<double>(max) && v == static_cast<double>(static_cast<uint64_t>(v));
}

}  // namespace

StatusOr<std::shared_ptr<const DecayFunction>> ParseDecaySpec(const std::string& spec) {
  std::string name;
  std::vector<double> args;
  SS_RETURN_IF_ERROR(SplitCall(spec, &name, &args));
  if (name == "powerlaw" || name == "power" || name == "pl") {
    if (args.size() != 4 || !IsPositiveInteger(args[0]) || args[1] < 0 ||
        !IsPositiveInteger(args[2]) || !IsPositiveInteger(args[3])) {
      return Status::InvalidArgument("powerlaw needs (p>=1, q>=0, R>=1, S>=1): " + spec);
    }
    return std::shared_ptr<const DecayFunction>(std::make_shared<PowerLawDecay>(
        static_cast<uint32_t>(args[0]), static_cast<uint32_t>(args[1]),
        static_cast<uint32_t>(args[2]), static_cast<uint32_t>(args[3])));
  }
  if (name == "exponential" || name == "exp") {
    if (args.size() != 3 || !(args[0] > 1.0) || !IsPositiveInteger(args[1]) ||
        !IsPositiveInteger(args[2])) {
      return Status::InvalidArgument("exponential needs (b>1, R>=1, S>=1): " + spec);
    }
    return std::shared_ptr<const DecayFunction>(std::make_shared<ExponentialDecay>(
        args[0], static_cast<uint32_t>(args[1]), static_cast<uint32_t>(args[2])));
  }
  if (name == "uniform") {
    if (args.size() != 1 || !IsPositiveInteger(args[0], UINT64_MAX >> 1)) {
      return Status::InvalidArgument("uniform needs (window_length>=1): " + spec);
    }
    return std::shared_ptr<const DecayFunction>(
        std::make_shared<UniformDecay>(static_cast<uint64_t>(args[0])));
  }
  return Status::InvalidArgument("unknown decay family: " + name);
}

StatusOr<OperatorSet> ParseOperatorSpec(const std::string& spec) {
  std::string name = Lower(StripSpaces(spec));
  if (name == "agg" || name == "aggregates") {
    return OperatorSet::AggregatesOnly();
  }
  if (name == "micro" || name == "microbench") {
    return OperatorSet::Microbench();
  }
  if (name == "full") {
    return OperatorSet::Full();
  }
  return Status::InvalidArgument("unknown operator set (agg|micro|full): " + spec);
}

StatusOr<QueryOp> ParseQueryOp(const std::string& name) {
  std::string op = Lower(StripSpaces(name));
  if (op == "count") {
    return QueryOp::kCount;
  }
  if (op == "sum") {
    return QueryOp::kSum;
  }
  if (op == "mean" || op == "avg" || op == "average") {
    return QueryOp::kMean;
  }
  if (op == "min") {
    return QueryOp::kMin;
  }
  if (op == "max") {
    return QueryOp::kMax;
  }
  if (op == "exists" || op == "existence" || op == "member") {
    return QueryOp::kExistence;
  }
  if (op == "freq" || op == "frequency") {
    return QueryOp::kFrequency;
  }
  if (op == "distinct" || op == "cardinality") {
    return QueryOp::kDistinct;
  }
  if (op == "quantile" || op == "percentile") {
    return QueryOp::kQuantile;
  }
  if (op == "range" || op == "valuerange" || op == "selection") {
    return QueryOp::kValueRangeCount;
  }
  if (op == "topk" || op == "heavyhitters" || op == "hh") {
    return QueryOp::kTopK;
  }
  return Status::InvalidArgument("unknown query op: " + name);
}

StatusOr<ParsedArgs> ParseArgs(int argc, const char* const* argv, int begin,
                               const std::set<std::string>& bool_flags) {
  ParsedArgs out;
  for (int i = begin; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      if (key.empty()) {
        return Status::InvalidArgument("empty flag name");
      }
      // --key=value form.
      size_t eq = key.find('=');
      if (eq != std::string::npos) {
        out.flags[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      // Declared boolean flags take no value; their presence means "1".
      if (bool_flags.contains(key)) {
        out.flags[key] = "1";
        continue;
      }
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        return Status::InvalidArgument("flag --" + key + " needs a value");
      }
      out.flags[key] = argv[++i];
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

StatusOr<Event> ParseCsvLine(const std::string& line) {
  std::string s = StripSpaces(line);
  if (s.empty() || s[0] == '#') {
    return Status::NotFound("comment or blank line");
  }
  size_t comma = s.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("expected ts,value: " + line);
  }
  Event event;
  try {
    size_t used = 0;
    event.ts = std::stoll(s.substr(0, comma), &used);
    if (used != comma) {
      return Status::InvalidArgument("bad timestamp: " + line);
    }
    std::string value_str = s.substr(comma + 1);
    event.value = std::stod(value_str, &used);
    if (used != value_str.size()) {
      return Status::InvalidArgument("bad value: " + line);
    }
  } catch (...) {
    return Status::InvalidArgument("bad ts,value line: " + line);
  }
  return event;
}

StatusOr<std::map<std::string, double>> ParseMetricsJson(const std::string& json) {
  // Line-oriented scanner for the exact shape RenderJson emits: one entry
  // per line, 4-space indented, `"key": <number>` (counters/gauges) or
  // `"key": {"count": n, ...}` (histograms). Not a general JSON parser.
  std::map<std::string, double> out;
  size_t pos = 0;
  while (pos <= json.size()) {
    size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) {
      eol = json.size();
    }
    const std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    size_t q = line.find('"');
    if (q == std::string::npos) {
      continue;
    }
    // Extract the key, honoring the \" escapes labeled keys carry.
    std::string key;
    size_t i = q + 1;
    bool closed = false;
    for (; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        key += line[++i];
        continue;
      }
      if (line[i] == '"') {
        closed = true;
        break;
      }
      key += line[i];
    }
    if (!closed || i + 1 >= line.size() || line[i + 1] != ':') {
      continue;
    }
    std::string rest = line.substr(i + 2);
    size_t start = rest.find_first_not_of(' ');
    if (start == std::string::npos) {
      continue;
    }
    if (rest[start] == '{') {
      // Histogram object — flatten, or a section header ("counters": {) when
      // the brace has no fields on the same line.
      size_t p = start;
      while (true) {
        size_t k1 = rest.find('"', p);
        if (k1 == std::string::npos) {
          break;
        }
        size_t k2 = rest.find('"', k1 + 1);
        if (k2 == std::string::npos) {
          break;
        }
        size_t colon = rest.find(':', k2);
        if (colon == std::string::npos) {
          break;
        }
        out[key + "." + rest.substr(k1 + 1, k2 - k1 - 1)] =
            std::strtod(rest.c_str() + colon + 1, nullptr);
        p = colon + 1;
      }
    } else if (rest[start] == '-' || (rest[start] >= '0' && rest[start] <= '9')) {
      out[key] = std::strtod(rest.c_str() + start, nullptr);
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument("no metrics found (expected sstool stats --format json)");
  }
  return out;
}

}  // namespace ss
