// Parsing helpers for the sstool command-line client, split out so they can
// be unit-tested: decay-function specs, operator-set names, query operators,
// and a tiny --flag value argument parser.
#ifndef SUMMARYSTORE_TOOLS_CLI_H_
#define SUMMARYSTORE_TOOLS_CLI_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/query.h"
#include "src/core/stream.h"

namespace ss {

// "powerlaw(p,q,R,S)" | "exponential(b,R,S)" | "uniform(W)"
// (case-insensitive, spaces allowed).
StatusOr<std::shared_ptr<const DecayFunction>> ParseDecaySpec(const std::string& spec);

// "agg" | "aggregates" | "micro" | "microbench" | "full"
StatusOr<OperatorSet> ParseOperatorSpec(const std::string& spec);

// "count" | "sum" | "mean" | "min" | "max" | "exists" | "existence" |
// "freq" | "frequency" | "distinct" | "quantile"
StatusOr<QueryOp> ParseQueryOp(const std::string& name);

// Splits {"--a", "1", "--b", "2", "pos"} into flags {a:1, b:2} and
// positional args. A flag without a following value (or followed by another
// flag) is an error, unless it is listed in `bool_flags` — those take no
// value and parse as "1" when present.
struct ParsedArgs {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  bool Has(const std::string& key) const { return flags.contains(key); }
  std::string GetOr(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};
StatusOr<ParsedArgs> ParseArgs(int argc, const char* const* argv, int begin,
                               const std::set<std::string>& bool_flags = {});

// Parses one "ts,value" CSV line (ignores surrounding spaces; '#' comments
// and blank lines yield nullopt-equivalent via kNotFound).
StatusOr<Event> ParseCsvLine(const std::string& line);

// Flattens a MetricRegistry::RenderJson() document (what `sstool stats
// --format json` prints and what flight bundles embed) into metric -> value.
// Counters and gauges keep their key; histogram fields become "key.count",
// "key.p50", etc. Labeled keys round-trip through the \" escapes RenderJson
// emits. Used by `sstool stats --diff` and `sstool flight --metrics`.
StatusOr<std::map<std::string, double>> ParseMetricsJson(const std::string& json);

}  // namespace ss

#endif  // SUMMARYSTORE_TOOLS_CLI_H_
