#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then an ASan+UBSan build
# of the obs and storage tests (the layers with the most concurrency and
# raw-pointer traffic).
#
#   tools/ci.sh [build-dir-prefix]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "=== tier-1: configure + build + ctest (${prefix}) ==="
cmake -B "${prefix}" -S .
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

san_dir="${prefix}-asan"
echo "=== sanitizers: ASan+UBSan build of obs + storage tests (${san_dir}) ==="
cmake -B "${san_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DSS_SANITIZE=address,undefined
cmake --build "${san_dir}" -j"$(nproc)" --target \
  metrics_test trace_test \
  wal_test sstable_test lsm_store_test crash_recovery_test lsm_concurrency_test
for t in metrics_test trace_test wal_test sstable_test lsm_store_test \
         crash_recovery_test lsm_concurrency_test; do
  echo "--- ${t} (asan+ubsan)"
  if [ "${t}" = crash_recovery_test ]; then
    # Simulates hard kills by deliberately leaking un-flushed stores; leak
    # detection would report exactly those, so keep ASan but mute LSan here.
    ASAN_OPTIONS=detect_leaks=0 "${san_dir}/tests/${t}"
  else
    "${san_dir}/tests/${t}"
  fi
done

echo "=== ci.sh: all green ==="
