#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then an ASan+UBSan build
# of the obs and storage tests (the layers with the most concurrency and
# raw-pointer traffic), then a TSan build of the core locking and worker-pool
# tests (SS_SANITIZE=thread), then the perf-trajectory leg (CI-profile bench
# runs diffed against the committed BENCH_*.json baselines).
#
# Any test failure dumps + decodes the newest flight-recorder bundle from
# SS_FLIGHT_DIR so the events leading up to the failure land in the CI log.
#
#   tools/ci.sh [build-dir-prefix]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

# Every store poison / fatal signal in any test process dumps its flight
# bundle here; on failure the EXIT trap decodes the newest one into the log.
export SS_FLIGHT_DIR="${PWD}/${prefix}-flight"
rm -rf "${SS_FLIGHT_DIR}"
mkdir -p "${SS_FLIGHT_DIR}"

decode_flight_on_failure() {
  local rc=$?
  if [ "${rc}" -ne 0 ] && ls "${SS_FLIGHT_DIR}"/flight-*.bin >/dev/null 2>&1; then
    echo "=== ci.sh FAILED (rc=${rc}): decoding newest flight bundle ==="
    "${prefix}/tools/sstool" flight "${SS_FLIGHT_DIR}" || true
  fi
  return "${rc}"
}
trap decode_flight_on_failure EXIT

echo "=== tier-1: configure + build + ctest (${prefix}) ==="
cmake -B "${prefix}" -S .
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

san_dir="${prefix}-asan"
echo "=== sanitizers: ASan+UBSan build of obs + storage + net tests (${san_dir}) ==="
cmake -B "${san_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DSS_SANITIZE=address,undefined
cmake --build "${san_dir}" -j"$(nproc)" --target \
  metrics_test trace_test flight_recorder_test \
  wal_test sstable_test lsm_store_test group_commit_test crash_recovery_test \
  lsm_concurrency_test fault_fs_test fault_injection_test \
  corruption_test serde_fuzz_test frame_fuzz_test kernels_test spacesaving_test \
  net_server_test tenant_test net_fault_test
# net_fault_test severs every frame boundary of its workload with FaultNet —
# reconnect/replay buffer churn is exactly what ASan should watch.
for t in metrics_test trace_test flight_recorder_test wal_test sstable_test \
         lsm_store_test group_commit_test crash_recovery_test lsm_concurrency_test \
         fault_fs_test corruption_test serde_fuzz_test frame_fuzz_test \
         kernels_test spacesaving_test net_server_test tenant_test net_fault_test; do
  echo "--- ${t} (asan+ubsan)"
  if [ "${t}" = crash_recovery_test ]; then
    # Simulates hard kills by deliberately leaking un-flushed stores; leak
    # detection would report exactly those, so keep ASan but mute LSan here.
    ASAN_OPTIONS=detect_leaks=0 "${san_dir}/tests/${t}"
  else
    "${san_dir}/tests/${t}"
  fi
done

echo "=== fault injection: full crash matrix under ASan (SS_FAULT_INJECT=1) ==="
# Every mutating-syscall boundary in the write/flush/compact path — including
# crashes at group-commit boundaries mid-batch — gets a simulated power loss
# + reopen; the enlarged matrix runs only in CI.
SS_FAULT_INJECT=1 "${san_dir}/tests/fault_injection_test"

echo "=== corruption matrix: byte-flip sweep under ASan (SS_FAULT_INJECT=1) ==="
# Flips bytes at every payload offset class of persisted windows and asserts
# every query either fails cleanly or returns a degraded answer whose CI
# covers the oracle truth — never a silent wrong point estimate. The full
# offset sweep runs only in CI; the dev build uses a strided subset.
SS_FAULT_INJECT=1 "${san_dir}/tests/corruption_test"

echo "=== scalar kernels: SS_FORCE_SCALAR=1 leg (dispatch fallback on AVX2 hosts) ==="
# The batch kernels must leave bit-identical sketch state on both dispatch
# targets. The tier-1 run exercised the native (AVX2 where available) path;
# this leg pins the scalar reference and re-runs the equivalence fuzz suite
# plus the sketch-math tests under ASan so the fallback stays tested.
for t in kernels_test cms_test bloom_test hyperloglog_test; do
  echo "--- ${t} (SS_FORCE_SCALAR=1)"
  SS_FORCE_SCALAR=1 "${prefix}/tests/${t}"
done
SS_FORCE_SCALAR=1 "${san_dir}/tests/kernels_test"

echo "=== server smoke: sserver on loopback + sstool --connect e2e ==="
# Boots the real daemon, drives every store subcommand over the wire, and
# asserts a clean SIGTERM drain + durable store, then a two-tenant leg (auth,
# namespace isolation, quota errors). ctest runs this too; the
# explicit leg keeps the wire path visible in the CI log.
tests/tools/sserver_smoke.sh "${prefix}/tools/sserver" "${prefix}/tools/sstool"

tsan_dir="${prefix}-tsan"
echo "=== sanitizers: TSan build of core + concurrency tests (${tsan_dir}) ==="
# group_commit_test and the batched writers in lsm_concurrency_test /
# concurrency_test exercise the leader/follower commit handoff under TSan;
# flight_recorder_test races 8 ring writers against concurrent snapshots.
cmake -B "${tsan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSS_SANITIZE=thread
# corruption_test rides along for its background-scrub-thread coverage.
cmake --build "${tsan_dir}" -j"$(nproc)" --target \
  thread_pool_test summary_store_test group_commit_test lsm_concurrency_test \
  concurrency_test corruption_test flight_recorder_test net_server_test \
  ingest_ring_test retry_client_test
# ingest_ring_test races producer rings against the merge worker and a
# concurrent reader — the acquire/release SPSC publication under TSan.
# retry_client_test races concurrent retrying clients (including two raw
# clients sharing one session) against the server's per-session dedup map.
for t in thread_pool_test summary_store_test group_commit_test \
         lsm_concurrency_test concurrency_test corruption_test flight_recorder_test \
         net_server_test ingest_ring_test retry_client_test; do
  echo "--- ${t} (tsan)"
  TSAN_OPTIONS=halt_on_error=1 "${tsan_dir}/tests/${t}"
done

echo "=== perf trajectory: CI-profile bench runs vs committed baselines ==="
# Machine-readable bench telemetry: bench_micro (a fast subset + the
# flight-recorder overhead gate) and bench_scale (shrunk via env knobs) each
# write a BenchReport; bench_compare fails the build on direction-aware
# regressions beyond the threshold. The 75% bar only catches order-of-
# magnitude cliffs — CI machines are too noisy for anything tighter.
bench_out="${prefix}-bench"
mkdir -p "${bench_out}"
SS_BENCH_PROFILE=ci SS_BENCH_OUT="${bench_out}/BENCH_micro.json" \
  "${prefix}/bench/bench_micro" \
  --benchmark_filter='BM_StreamAppend|BM_StoreAppend$|BM_ObsCounterInc|BM_ObsScopedTimer|BM_LsmPut$|BM_Kernel' \
  --benchmark_min_time=0.05
"${prefix}/tools/bench_compare" BENCH_micro.json "${bench_out}/BENCH_micro.json" \
  --threshold-pct 75
SS_BENCH_PROFILE=ci SS_SCALE_STREAMS=8 SS_SCALE_EVENTS=50000 SS_SCALE_RING_EVENTS=200000 \
  SS_BENCH_OUT="${bench_out}/BENCH_scale.json" "${prefix}/bench/bench_scale"
"${prefix}/tools/bench_compare" BENCH_scale.json "${bench_out}/BENCH_scale.json" \
  --threshold-pct 75
# bench_net doubles as a correctness gate: it exits non-zero if backpressure
# never engages or any acked append is lost across the in-bench kill+replay.
SS_BENCH_PROFILE=ci SS_BENCH_OUT="${bench_out}/BENCH_net.json" "${prefix}/bench/bench_net"
"${prefix}/tools/bench_compare" BENCH_net.json "${bench_out}/BENCH_net.json" \
  --threshold-pct 75
echo "=== ci.sh: all green ==="
