#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then an ASan+UBSan build
# of the obs and storage tests (the layers with the most concurrency and
# raw-pointer traffic), then a TSan build of the core locking and worker-pool
# tests (SS_SANITIZE=thread).
#
#   tools/ci.sh [build-dir-prefix]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "=== tier-1: configure + build + ctest (${prefix}) ==="
cmake -B "${prefix}" -S .
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure -j"$(nproc)"

san_dir="${prefix}-asan"
echo "=== sanitizers: ASan+UBSan build of obs + storage tests (${san_dir}) ==="
cmake -B "${san_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DSS_SANITIZE=address,undefined
cmake --build "${san_dir}" -j"$(nproc)" --target \
  metrics_test trace_test \
  wal_test sstable_test lsm_store_test group_commit_test crash_recovery_test \
  lsm_concurrency_test fault_fs_test fault_injection_test \
  corruption_test serde_fuzz_test
for t in metrics_test trace_test wal_test sstable_test lsm_store_test \
         group_commit_test crash_recovery_test lsm_concurrency_test fault_fs_test \
         corruption_test serde_fuzz_test; do
  echo "--- ${t} (asan+ubsan)"
  if [ "${t}" = crash_recovery_test ]; then
    # Simulates hard kills by deliberately leaking un-flushed stores; leak
    # detection would report exactly those, so keep ASan but mute LSan here.
    ASAN_OPTIONS=detect_leaks=0 "${san_dir}/tests/${t}"
  else
    "${san_dir}/tests/${t}"
  fi
done

echo "=== fault injection: full crash matrix under ASan (SS_FAULT_INJECT=1) ==="
# Every mutating-syscall boundary in the write/flush/compact path — including
# crashes at group-commit boundaries mid-batch — gets a simulated power loss
# + reopen; the enlarged matrix runs only in CI.
SS_FAULT_INJECT=1 "${san_dir}/tests/fault_injection_test"

echo "=== corruption matrix: byte-flip sweep under ASan (SS_FAULT_INJECT=1) ==="
# Flips bytes at every payload offset class of persisted windows and asserts
# every query either fails cleanly or returns a degraded answer whose CI
# covers the oracle truth — never a silent wrong point estimate. The full
# offset sweep runs only in CI; the dev build uses a strided subset.
SS_FAULT_INJECT=1 "${san_dir}/tests/corruption_test"

tsan_dir="${prefix}-tsan"
echo "=== sanitizers: TSan build of core + concurrency tests (${tsan_dir}) ==="
# group_commit_test and the batched writers in lsm_concurrency_test /
# concurrency_test exercise the leader/follower commit handoff under TSan.
cmake -B "${tsan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSS_SANITIZE=thread
# corruption_test rides along for its background-scrub-thread coverage.
cmake --build "${tsan_dir}" -j"$(nproc)" --target \
  thread_pool_test summary_store_test group_commit_test lsm_concurrency_test \
  concurrency_test corruption_test
for t in thread_pool_test summary_store_test group_commit_test \
         lsm_concurrency_test concurrency_test corruption_test; do
  echo "--- ${t} (tsan)"
  TSAN_OPTIONS=halt_on_error=1 "${tsan_dir}/tests/${t}"
done

echo "=== ci.sh: all green ==="
