// sstool — command-line client for a SummaryStore, either a local durable
// directory (--dir D) or a live sserver over TCP (--connect host:port).
// Every subcommand below except the offline ones (`stats --diff`, `flight`)
// accepts either flag and behaves identically in both modes.
//
// Against a multi-tenant sserver (`sserver --tenants FILE`), add
// `--tenant ID --token TOKEN` next to --connect: the connection authenticates
// first and every --stream id is then tenant-local (DESIGN.md §14). A legacy
// server accepts and ignores the handshake.
//
//   sstool create  --dir D --decay "powerlaw(1,1,1,1)" [--ops agg|micro|full]
//                  [--stream N] [--raw-threshold K] [--poisson]
//                  [--time-windowing 1] [--reorder N]
//   sstool ingest  --dir D --stream N [--csv FILE] [--batch K]
//                  (default: stdin, "ts,value" lines; events are batched K
//                  at a time — one AppendBatch per chunk locally, one
//                  append-batch frame per chunk over the wire)
//   sstool query   --dir D --stream N --op count|sum|mean|min|max|exists|freq|distinct|
//                  quantile|range|topk --t1 T --t2 T [--value V] [--q Q]
//                  [--vlo A --vhi B] [--k K] [--confidence C] [--explain]
//   sstool landmark --dir D --stream N --begin T | --end T
//   sstool info    --dir D [--stream N]
//   sstool stats   --dir D [--format prom|json]
//   sstool stats   --diff A.json B.json            (offline; no --dir needed)
//   sstool scrub   --dir D [--dry-run]
//   sstool delete  --dir D --stream N
//   sstool ping    --connect HOST:PORT            (health probe; remote only)
//   sstool flight  <bundle.bin|dir> [--since US] [--metrics]
//
// Remote-mode resilience flags (next to --connect, any subcommand):
//   --timeout-ms MS   bound the connect handshake and each RPC's socket I/O
//   --deadline-ms MS  stamp a wire deadline; the server answers
//                     DEADLINE_EXCEEDED instead of executing a request whose
//                     budget expired while queued
//   --retries N       reconnect/resend attempts after a transport failure
//                     (appends stay exactly-once via session replay dedup)
//
// `ping` prints the server's health — ok, poisoned (backend rejecting writes)
// or draining (shutdown imminent) — and exits 0 only for ok, so scripts and
// load-balancer checks can branch on it.
//
// `query --explain` additionally prints the per-query trace: windows scanned,
// bytes read, window/block cache hits and misses, per-phase latency, and the
// estimator's CI (in remote mode the server renders the trace and ships the
// text). Degraded answers (quarantined windows in range) are flagged with the
// missing time spans. `stats` dumps the process metric registry (plus
// store-level gauges) in Prometheus text format or JSON — in remote mode the
// *server's* registry, where the store's counters live; `stats --diff`
// compares two saved `--format json` snapshots and prints the metric deltas.
// `scrub` re-verifies every persisted checksum, quarantining and (without
// --dry-run) repairing corrupt windows by folding them into their intact left
// neighbors. `flight` decodes a flight-recorder bundle (written to
// <store>/debug/ when a store poisons or the process takes a fatal signal)
// into a human-readable event timeline; given a directory it picks the
// newest flight-*.bin under it (or its debug/ subdirectory).
//
// Exit code 0 on success; errors go to stderr.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/net/retry_client.h"
#include "src/obs/flight_recorder.h"
#include "src/storage/file_util.h"
#include "tools/cli.h"
#include "tools/store_handle.h"

namespace ss {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "sstool: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sstool <create|ingest|query|landmark|info|stats|scrub|delete> "
               "(--dir DIR | --connect HOST:PORT [--tenant ID --token TOKEN]\n"
               "        [--timeout-ms MS] [--deadline-ms MS] [--retries N]) [flags]\n"
               "       sstool ping --connect HOST:PORT\n"
               "       sstool stats --diff A.json B.json\n"
               "       sstool flight <bundle.bin|dir> [--since US] [--metrics]\n"
               "run with a command and no flags for per-command help in the header comment\n");
  return 2;
}

StatusOr<StreamId> RequiredStream(const ParsedArgs& args) {
  if (!args.Has("stream")) {
    return Status::InvalidArgument("--stream is required");
  }
  return static_cast<StreamId>(std::stoull(args.flags.at("stream")));
}

int CmdCreate(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  if (!args.Has("decay")) {
    return Fail(Status::InvalidArgument("--decay is required, e.g. --decay 'powerlaw(1,1,1,1)'"));
  }
  auto decay = ParseDecaySpec(args.flags.at("decay"));
  if (!decay.ok()) {
    return Fail(decay.status());
  }
  auto ops = ParseOperatorSpec(args.GetOr("ops", "full"));
  if (!ops.ok()) {
    return Fail(ops.status());
  }
  StreamConfig config;
  config.decay = *decay;
  config.operators = *ops;
  config.raw_threshold = std::stoull(args.GetOr("raw-threshold", "64"));
  config.arrival_model = args.Has("poisson") ? ArrivalModel::kPoisson : ArrivalModel::kGeneric;
  if (args.Has("time-windowing")) {
    config.windowing = WindowingMode::kTimeBased;
  }
  config.reorder_buffer = std::stoull(args.GetOr("reorder", "0"));

  StreamId want = 0;  // 0 = auto-assign
  if (args.Has("stream")) {
    want = static_cast<StreamId>(std::stoull(args.flags.at("stream")));
  }
  auto sid = (*handle)->CreateStream(want, std::move(config));
  if (!sid.ok()) {
    return Fail(sid.status());
  }
  std::printf("created stream %" PRIu64 " (decay %s)\n", *sid, (*decay)->Describe().c_str());
  return 0;
}

int CmdIngest(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  auto sid = RequiredStream(args);
  if (!sid.ok()) {
    return Fail(sid.status());
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.Has("csv")) {
    file.open(args.flags.at("csv"));
    if (!file) {
      return Fail(Status::IoError("cannot open " + args.flags.at("csv")));
    }
    in = &file;
  }
  const size_t chunk = std::stoull(args.GetOr("batch", "1024"));
  if (chunk == 0) {
    return Fail(Status::InvalidArgument("--batch must be positive"));
  }
  uint64_t appended = 0;
  uint64_t skipped = 0;
  std::vector<Event> batch;
  batch.reserve(chunk);
  auto drain = [&]() {
    if (batch.empty()) {
      return;
    }
    if (Status s = (*handle)->AppendBatch(*sid, batch); !s.ok()) {
      skipped += batch.size();
      std::fprintf(stderr, "skipping batch of %zu: %s\n", batch.size(), s.ToString().c_str());
    } else {
      appended += batch.size();
    }
    batch.clear();
  };
  std::string line;
  while (std::getline(*in, line)) {
    auto event = ParseCsvLine(line);
    if (!event.ok()) {
      if (event.status().code() == StatusCode::kNotFound) {
        continue;  // blank/comment
      }
      ++skipped;
      std::fprintf(stderr, "skipping: %s\n", event.status().ToString().c_str());
      continue;
    }
    batch.push_back(*event);
    if (batch.size() >= chunk) {
      drain();
    }
  }
  drain();
  if (Status s = (*handle)->Flush(); !s.ok()) {
    return Fail(s);
  }
  std::printf("appended %" PRIu64 " events (%" PRIu64 " skipped)\n", appended, skipped);
  return 0;
}

int CmdQuery(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  auto sid = RequiredStream(args);
  if (!sid.ok()) {
    return Fail(sid.status());
  }
  if (!args.Has("op") || !args.Has("t1") || !args.Has("t2")) {
    return Fail(Status::InvalidArgument("--op, --t1 and --t2 are required"));
  }
  auto op = ParseQueryOp(args.flags.at("op"));
  if (!op.ok()) {
    return Fail(op.status());
  }
  QuerySpec spec;
  spec.op = *op;
  spec.t1 = std::stoll(args.flags.at("t1"));
  spec.t2 = std::stoll(args.flags.at("t2"));
  spec.value = std::stod(args.GetOr("value", "0"));
  spec.quantile_q = std::stod(args.GetOr("q", "0.5"));
  spec.value_lo = std::stod(args.GetOr("vlo", "0"));
  spec.value_hi = std::stod(args.GetOr("vhi", "0"));
  spec.confidence = std::stod(args.GetOr("confidence", "0.95"));
  spec.top_k = static_cast<uint32_t>(std::stoul(args.GetOr("k", "10")));
  spec.collect_trace = args.Has("explain");
  auto wire = (*handle)->Query(*sid, spec);
  if (!wire.ok()) {
    return Fail(wire.status());
  }
  const QueryResult& result = wire->result;
  if (spec.op == QueryOp::kExistence) {
    std::printf("answer: %s  (p=%.4f, ci=[%.4f, %.4f])%s\n",
                result.bool_answer ? "yes" : "no", result.estimate, result.ci_lo,
                result.ci_hi, result.degraded ? "  [degraded]" : "");
  } else {
    std::printf("estimate: %.6g  %.0f%% CI: [%.6g, %.6g]%s%s  (windows read: %zu, landmark "
                "events: %zu)\n",
                result.estimate, spec.confidence * 100, result.ci_lo, result.ci_hi,
                result.exact ? "  [exact]" : "", result.degraded ? "  [degraded]" : "",
                result.windows_read, result.landmark_events);
  }
  for (size_t i = 0; i < result.topk.size(); ++i) {
    const TopKEntry& entry = result.topk[i];
    std::printf("  #%zu value=%.6g count~%.6g ci=[%.6g, %.6g]\n", i + 1, entry.value,
                entry.estimate, entry.ci_lo, entry.ci_hi);
  }
  if (result.degraded) {
    for (const auto& [a, b] : result.skipped_spans) {
      std::printf("degraded: missing data in [%" PRId64 ", %" PRId64 "]\n",
                  static_cast<int64_t>(a), static_cast<int64_t>(b));
    }
  }
  if (spec.collect_trace && !wire->trace_text.empty()) {
    std::printf("%s", wire->trace_text.c_str());
  }
  return 0;
}

// Offline diff of two saved `stats --format json` snapshots.
int CmdStatsDiff(const ParsedArgs& args) {
  if (args.positional.size() != 2) {
    return Fail(Status::InvalidArgument("stats --diff takes two metrics-JSON files"));
  }
  std::map<std::string, double> maps[2];
  for (int i = 0; i < 2; ++i) {
    auto text = ReadFileToString(args.positional[static_cast<size_t>(i)]);
    if (!text.ok()) {
      return Fail(text.status());
    }
    auto parsed = ParseMetricsJson(*text);
    if (!parsed.ok()) {
      return Fail(parsed.status());
    }
    maps[i] = std::move(*parsed);
  }
  std::map<std::string, double> all;
  all.insert(maps[0].begin(), maps[0].end());
  all.insert(maps[1].begin(), maps[1].end());
  uint64_t changed = 0;
  for (const auto& [key, unused] : all) {
    (void)unused;
    auto a = maps[0].find(key);
    auto b = maps[1].find(key);
    const double va = a != maps[0].end() ? a->second : 0.0;
    const double vb = b != maps[1].end() ? b->second : 0.0;
    if (va == vb) {
      continue;
    }
    ++changed;
    std::printf("%-64s %14.6g -> %-14.6g (%+.6g)\n", key.c_str(), va, vb, vb - va);
  }
  std::printf("%" PRIu64 " of %zu metrics changed\n", changed, all.size());
  return 0;
}

int CmdStats(const ParsedArgs& args) {
  if (args.Has("diff")) {
    return CmdStatsDiff(args);
  }
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  const std::string format = args.GetOr("format", "prom");
  if (format != "prom" && format != "json") {
    return Fail(Status::InvalidArgument("--format must be prom or json"));
  }
  auto text = (*handle)->Stats(/*prometheus=*/format == "prom");
  if (!text.ok()) {
    return Fail(text.status());
  }
  if (format == "json") {
    std::printf("%s\n", text->c_str());
  } else {
    std::printf("%s", text->c_str());
  }
  return 0;
}

int CmdLandmark(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  auto sid = RequiredStream(args);
  if (!sid.ok()) {
    return Fail(sid.status());
  }
  Status s = Status::InvalidArgument("pass --begin T or --end T");
  if (args.Has("begin")) {
    s = (*handle)->BeginLandmark(*sid, std::stoll(args.flags.at("begin")));
  } else if (args.Has("end")) {
    s = (*handle)->EndLandmark(*sid, std::stoll(args.flags.at("end")));
  }
  if (!s.ok()) {
    return Fail(s);
  }
  std::printf("ok\n");
  return 0;
}

int CmdInfo(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  StreamId want = 0;  // 0 = all
  if (args.Has("stream")) {
    want = static_cast<StreamId>(std::stoull(args.flags.at("stream")));
  }
  auto rows = (*handle)->StreamInfos(want);
  if (!rows.ok()) {
    return Fail(rows.status());
  }
  std::printf("%8s %12s %10s %10s %12s %14s %s\n", "stream", "events", "windows", "landmarks",
              "store bytes", "compaction", "decay");
  for (const net::StreamInfo& row : *rows) {
    uint64_t raw = (row.element_count + row.landmark_element_count) * 16;
    std::printf("%8" PRIu64 " %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %12" PRIu64
                " %13.1fx %s\n",
                row.id, row.element_count, row.window_count, row.landmark_window_count,
                row.size_bytes,
                row.size_bytes > 0
                    ? static_cast<double>(raw) / static_cast<double>(row.size_bytes)
                    : 0.0,
                row.decay.c_str());
  }
  return 0;
}

int CmdScrub(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  const bool repair = !args.Has("dry-run");
  ScrubReport report;
  Status status = (*handle)->Scrub(repair, &report);
  std::printf("scrub%s: %" PRIu64 " windows, %" PRIu64 " landmarks checked; %" PRIu64
              " errors, %" PRIu64 " quarantined, %" PRIu64 " repaired, %" PRIu64 " healed\n",
              repair ? "" : " (dry-run)", report.windows_checked, report.landmarks_checked,
              report.errors, report.quarantined, report.repaired, report.healed);
  if (!status.ok()) {
    return Fail(status);
  }
  return 0;
}

int CmdDelete(const ParsedArgs& args) {
  auto handle = StoreHandle::Open(args);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  auto sid = RequiredStream(args);
  if (!sid.ok()) {
    return Fail(sid.status());
  }
  if (Status s = (*handle)->DeleteStream(*sid); !s.ok()) {
    return Fail(s);
  }
  std::printf("deleted stream %" PRIu64 "\n", *sid);
  return 0;
}

// Decode a flight-recorder bundle (or the newest one under a directory).
int CmdFlight(const ParsedArgs& args) {
  if (args.positional.empty()) {
    return Fail(Status::InvalidArgument("usage: sstool flight <bundle.bin|dir> [--since US] [--metrics]"));
  }
  std::string path = args.positional[0];
  if (ListDir(path).ok()) {
    // Directory: pick the newest flight-<wall-us>.bin in it or its debug/.
    std::string best;
    uint64_t best_ts = 0;
    for (const std::string& dir : {path, path + "/debug"}) {
      auto entries = ListDir(dir);
      if (!entries.ok()) {
        continue;
      }
      for (const std::string& name : *entries) {
        if (name.rfind("flight-", 0) != 0 || name.size() < 12 ||
            name.compare(name.size() - 4, 4, ".bin") != 0) {
          continue;
        }
        uint64_t ts = std::strtoull(name.c_str() + 7, nullptr, 10);
        if (best.empty() || ts > best_ts) {
          best = dir + "/" + name;
          best_ts = ts;
        }
      }
    }
    if (best.empty()) {
      return Fail(Status::NotFound("no flight-*.bin bundles under " + path));
    }
    path = best;
  }
  auto bundle = ReadFlightBundle(path);
  if (!bundle.ok()) {
    return Fail(bundle.status());
  }
  double since = std::stod(args.GetOr("since", "0"));
  std::printf("bundle: %s\n", path.c_str());
  std::printf("%s", RenderFlightTimeline(*bundle, since).c_str());
  if (args.Has("metrics")) {
    std::printf("\nmetrics snapshot at dump time:\n%s", bundle->metrics_json.c_str());
  }
  return 0;
}

int CmdPing(const ParsedArgs& args) {
  if (!args.Has("connect")) {
    return Fail(Status::InvalidArgument("ping requires --connect host:port"));
  }
  const std::string& target = args.flags.at("connect");
  size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 >= target.size()) {
    return Fail(Status::InvalidArgument("--connect expects host:port, got " + target));
  }
  unsigned long port = std::stoul(target.substr(colon + 1));
  if (port == 0 || port > 65535) {
    return Fail(Status::InvalidArgument("--connect port out of range: " + target));
  }
  net::ClientOptions options;
  options.connect_timeout_ms = std::stoull(args.GetOr("timeout-ms", "0"));
  options.rpc_timeout_ms = options.connect_timeout_ms;
  options.max_retries = static_cast<uint32_t>(std::stoul(args.GetOr("retries", "3")));
  auto client = net::RetryingClient::Connect(target.substr(0, colon),
                                             static_cast<uint16_t>(port), options);
  if (!client.ok()) {
    return Fail(client.status());
  }
  auto health = (*client)->Health();
  if (!health.ok()) {
    return Fail(health.status());
  }
  const char* text = *health == net::ServerHealth::kOk         ? "ok"
                     : *health == net::ServerHealth::kPoisoned ? "poisoned"
                                                               : "draining";
  std::printf("%s\n", text);
  // Non-ok health exits non-zero so health checks can branch without parsing.
  return *health == net::ServerHealth::kOk ? 0 : 3;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  // So a crash inside sstool itself leaves a decodable bundle behind.
  FlightRecorder::Default().InstallCrashHandler();
  std::string command = argv[1];
  auto args = ParseArgs(argc, argv, 2, {"explain", "poisson", "dry-run", "diff", "metrics"});
  if (!args.ok()) {
    return Fail(args.status());
  }
  if (command == "create") {
    return CmdCreate(*args);
  }
  if (command == "ingest") {
    return CmdIngest(*args);
  }
  if (command == "query") {
    return CmdQuery(*args);
  }
  if (command == "landmark") {
    return CmdLandmark(*args);
  }
  if (command == "info") {
    return CmdInfo(*args);
  }
  if (command == "stats") {
    return CmdStats(*args);
  }
  if (command == "scrub") {
    return CmdScrub(*args);
  }
  if (command == "delete") {
    return CmdDelete(*args);
  }
  if (command == "ping") {
    return CmdPing(*args);
  }
  if (command == "flight") {
    return CmdFlight(*args);
  }
  return Usage();
}

}  // namespace
}  // namespace ss

int main(int argc, char** argv) { return ss::Main(argc, argv); }
