file(REMOVE_RECURSE
  "libss_cli.a"
)
