# Empty dependencies file for ss_cli.
# This may be replaced when dependencies are built.
