file(REMOVE_RECURSE
  "CMakeFiles/ss_cli.dir/cli.cc.o"
  "CMakeFiles/ss_cli.dir/cli.cc.o.d"
  "libss_cli.a"
  "libss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
