file(REMOVE_RECURSE
  "CMakeFiles/sstool.dir/sstool.cc.o"
  "CMakeFiles/sstool.dir/sstool.cc.o.d"
  "sstool"
  "sstool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
