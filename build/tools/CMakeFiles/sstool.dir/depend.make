# Empty dependencies file for sstool.
# This may be replaced when dependencies are built.
