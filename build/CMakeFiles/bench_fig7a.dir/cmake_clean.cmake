file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a.dir/bench/bench_fig7a.cc.o"
  "CMakeFiles/bench_fig7a.dir/bench/bench_fig7a.cc.o.d"
  "bench/bench_fig7a"
  "bench/bench_fig7a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
