# Empty dependencies file for bench_fig7a.
# This may be replaced when dependencies are built.
