# Empty dependencies file for bench_fig7b.
# This may be replaced when dependencies are built.
