# Empty dependencies file for bench_tsm.
# This may be replaced when dependencies are built.
