file(REMOVE_RECURSE
  "CMakeFiles/bench_tsm.dir/bench/bench_tsm.cc.o"
  "CMakeFiles/bench_tsm.dir/bench/bench_tsm.cc.o.d"
  "bench/bench_tsm"
  "bench/bench_tsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
