file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13.dir/bench/bench_fig13.cc.o"
  "CMakeFiles/bench_fig13.dir/bench/bench_fig13.cc.o.d"
  "bench/bench_fig13"
  "bench/bench_fig13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
