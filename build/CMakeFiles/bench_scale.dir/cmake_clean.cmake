file(REMOVE_RECURSE
  "CMakeFiles/bench_scale.dir/bench/bench_scale.cc.o"
  "CMakeFiles/bench_scale.dir/bench/bench_scale.cc.o.d"
  "bench/bench_scale"
  "bench/bench_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
