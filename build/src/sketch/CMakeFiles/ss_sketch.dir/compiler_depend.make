# Empty compiler generated dependencies file for ss_sketch.
# This may be replaced when dependencies are built.
