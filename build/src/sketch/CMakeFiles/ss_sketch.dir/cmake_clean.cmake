file(REMOVE_RECURSE
  "CMakeFiles/ss_sketch.dir/bloom.cc.o"
  "CMakeFiles/ss_sketch.dir/bloom.cc.o.d"
  "CMakeFiles/ss_sketch.dir/cms.cc.o"
  "CMakeFiles/ss_sketch.dir/cms.cc.o.d"
  "CMakeFiles/ss_sketch.dir/counting_bloom.cc.o"
  "CMakeFiles/ss_sketch.dir/counting_bloom.cc.o.d"
  "CMakeFiles/ss_sketch.dir/histogram.cc.o"
  "CMakeFiles/ss_sketch.dir/histogram.cc.o.d"
  "CMakeFiles/ss_sketch.dir/hyperloglog.cc.o"
  "CMakeFiles/ss_sketch.dir/hyperloglog.cc.o.d"
  "CMakeFiles/ss_sketch.dir/quantile.cc.o"
  "CMakeFiles/ss_sketch.dir/quantile.cc.o.d"
  "CMakeFiles/ss_sketch.dir/registry.cc.o"
  "CMakeFiles/ss_sketch.dir/registry.cc.o.d"
  "CMakeFiles/ss_sketch.dir/reservoir.cc.o"
  "CMakeFiles/ss_sketch.dir/reservoir.cc.o.d"
  "libss_sketch.a"
  "libss_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
