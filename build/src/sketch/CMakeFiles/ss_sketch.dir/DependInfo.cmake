
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/bloom.cc" "src/sketch/CMakeFiles/ss_sketch.dir/bloom.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/bloom.cc.o.d"
  "/root/repo/src/sketch/cms.cc" "src/sketch/CMakeFiles/ss_sketch.dir/cms.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/cms.cc.o.d"
  "/root/repo/src/sketch/counting_bloom.cc" "src/sketch/CMakeFiles/ss_sketch.dir/counting_bloom.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/counting_bloom.cc.o.d"
  "/root/repo/src/sketch/histogram.cc" "src/sketch/CMakeFiles/ss_sketch.dir/histogram.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/histogram.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/sketch/CMakeFiles/ss_sketch.dir/hyperloglog.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/quantile.cc" "src/sketch/CMakeFiles/ss_sketch.dir/quantile.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/quantile.cc.o.d"
  "/root/repo/src/sketch/registry.cc" "src/sketch/CMakeFiles/ss_sketch.dir/registry.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/registry.cc.o.d"
  "/root/repo/src/sketch/reservoir.cc" "src/sketch/CMakeFiles/ss_sketch.dir/reservoir.cc.o" "gcc" "src/sketch/CMakeFiles/ss_sketch.dir/reservoir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
