file(REMOVE_RECURSE
  "libss_sketch.a"
)
