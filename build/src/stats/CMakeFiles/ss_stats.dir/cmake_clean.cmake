file(REMOVE_RECURSE
  "CMakeFiles/ss_stats.dir/distributions.cc.o"
  "CMakeFiles/ss_stats.dir/distributions.cc.o.d"
  "CMakeFiles/ss_stats.dir/special_functions.cc.o"
  "CMakeFiles/ss_stats.dir/special_functions.cc.o.d"
  "libss_stats.a"
  "libss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
