file(REMOVE_RECURSE
  "libss_stats.a"
)
