# Empty dependencies file for ss_stats.
# This may be replaced when dependencies are built.
