file(REMOVE_RECURSE
  "CMakeFiles/ss_workload.dir/generators.cc.o"
  "CMakeFiles/ss_workload.dir/generators.cc.o.d"
  "libss_workload.a"
  "libss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
