file(REMOVE_RECURSE
  "libss_workload.a"
)
