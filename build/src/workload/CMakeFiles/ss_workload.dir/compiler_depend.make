# Empty compiler generated dependencies file for ss_workload.
# This may be replaced when dependencies are built.
