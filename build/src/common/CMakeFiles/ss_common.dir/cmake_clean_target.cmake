file(REMOVE_RECURSE
  "libss_common.a"
)
