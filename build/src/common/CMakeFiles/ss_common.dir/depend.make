# Empty dependencies file for ss_common.
# This may be replaced when dependencies are built.
