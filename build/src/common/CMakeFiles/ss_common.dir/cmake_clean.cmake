file(REMOVE_RECURSE
  "CMakeFiles/ss_common.dir/logging.cc.o"
  "CMakeFiles/ss_common.dir/logging.cc.o.d"
  "CMakeFiles/ss_common.dir/serde.cc.o"
  "CMakeFiles/ss_common.dir/serde.cc.o.d"
  "libss_common.a"
  "libss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
