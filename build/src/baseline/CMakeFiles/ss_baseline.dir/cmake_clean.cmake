file(REMOVE_RECURSE
  "CMakeFiles/ss_baseline.dir/enum_store.cc.o"
  "CMakeFiles/ss_baseline.dir/enum_store.cc.o.d"
  "CMakeFiles/ss_baseline.dir/exponential_histogram.cc.o"
  "CMakeFiles/ss_baseline.dir/exponential_histogram.cc.o.d"
  "libss_baseline.a"
  "libss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
