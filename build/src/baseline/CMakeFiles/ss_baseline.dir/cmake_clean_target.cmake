file(REMOVE_RECURSE
  "libss_baseline.a"
)
