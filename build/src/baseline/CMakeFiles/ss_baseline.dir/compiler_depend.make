# Empty compiler generated dependencies file for ss_baseline.
# This may be replaced when dependencies are built.
