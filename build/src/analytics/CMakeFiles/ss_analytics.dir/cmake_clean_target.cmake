file(REMOVE_RECURSE
  "libss_analytics.a"
)
