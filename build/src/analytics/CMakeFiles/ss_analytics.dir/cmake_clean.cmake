file(REMOVE_RECURSE
  "CMakeFiles/ss_analytics.dir/forecaster.cc.o"
  "CMakeFiles/ss_analytics.dir/forecaster.cc.o.d"
  "CMakeFiles/ss_analytics.dir/outlier.cc.o"
  "CMakeFiles/ss_analytics.dir/outlier.cc.o.d"
  "CMakeFiles/ss_analytics.dir/reconstruct.cc.o"
  "CMakeFiles/ss_analytics.dir/reconstruct.cc.o.d"
  "libss_analytics.a"
  "libss_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
