# Empty dependencies file for ss_analytics.
# This may be replaced when dependencies are built.
