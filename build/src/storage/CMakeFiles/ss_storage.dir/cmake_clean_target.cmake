file(REMOVE_RECURSE
  "libss_storage.a"
)
