# Empty compiler generated dependencies file for ss_storage.
# This may be replaced when dependencies are built.
