
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/file_util.cc" "src/storage/CMakeFiles/ss_storage.dir/file_util.cc.o" "gcc" "src/storage/CMakeFiles/ss_storage.dir/file_util.cc.o.d"
  "/root/repo/src/storage/lsm_store.cc" "src/storage/CMakeFiles/ss_storage.dir/lsm_store.cc.o" "gcc" "src/storage/CMakeFiles/ss_storage.dir/lsm_store.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/storage/CMakeFiles/ss_storage.dir/sstable.cc.o" "gcc" "src/storage/CMakeFiles/ss_storage.dir/sstable.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/ss_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/ss_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
