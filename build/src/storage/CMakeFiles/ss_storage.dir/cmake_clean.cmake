file(REMOVE_RECURSE
  "CMakeFiles/ss_storage.dir/file_util.cc.o"
  "CMakeFiles/ss_storage.dir/file_util.cc.o.d"
  "CMakeFiles/ss_storage.dir/lsm_store.cc.o"
  "CMakeFiles/ss_storage.dir/lsm_store.cc.o.d"
  "CMakeFiles/ss_storage.dir/sstable.cc.o"
  "CMakeFiles/ss_storage.dir/sstable.cc.o.d"
  "CMakeFiles/ss_storage.dir/wal.cc.o"
  "CMakeFiles/ss_storage.dir/wal.cc.o.d"
  "libss_storage.a"
  "libss_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
