
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decay.cc" "src/core/CMakeFiles/ss_core.dir/decay.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/decay.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/ss_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/ss_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/operators.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/ss_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/query.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/core/CMakeFiles/ss_core.dir/stream.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/stream.cc.o.d"
  "/root/repo/src/core/summary_store.cc" "src/core/CMakeFiles/ss_core.dir/summary_store.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/summary_store.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/ss_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/ss_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ss_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ss_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
