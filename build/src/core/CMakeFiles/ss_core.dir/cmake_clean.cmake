file(REMOVE_RECURSE
  "CMakeFiles/ss_core.dir/decay.cc.o"
  "CMakeFiles/ss_core.dir/decay.cc.o.d"
  "CMakeFiles/ss_core.dir/estimator.cc.o"
  "CMakeFiles/ss_core.dir/estimator.cc.o.d"
  "CMakeFiles/ss_core.dir/operators.cc.o"
  "CMakeFiles/ss_core.dir/operators.cc.o.d"
  "CMakeFiles/ss_core.dir/query.cc.o"
  "CMakeFiles/ss_core.dir/query.cc.o.d"
  "CMakeFiles/ss_core.dir/stream.cc.o"
  "CMakeFiles/ss_core.dir/stream.cc.o.d"
  "CMakeFiles/ss_core.dir/summary_store.cc.o"
  "CMakeFiles/ss_core.dir/summary_store.cc.o.d"
  "CMakeFiles/ss_core.dir/window.cc.o"
  "CMakeFiles/ss_core.dir/window.cc.o.d"
  "libss_core.a"
  "libss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
