file(REMOVE_RECURSE
  "libss_core.a"
)
