# Empty dependencies file for ss_core.
# This may be replaced when dependencies are built.
