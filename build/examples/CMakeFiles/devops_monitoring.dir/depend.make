# Empty dependencies file for devops_monitoring.
# This may be replaced when dependencies are built.
