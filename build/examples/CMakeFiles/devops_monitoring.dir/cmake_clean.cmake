file(REMOVE_RECURSE
  "CMakeFiles/devops_monitoring.dir/devops_monitoring.cpp.o"
  "CMakeFiles/devops_monitoring.dir/devops_monitoring.cpp.o.d"
  "devops_monitoring"
  "devops_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devops_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
