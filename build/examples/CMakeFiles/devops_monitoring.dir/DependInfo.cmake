
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/devops_monitoring.cpp" "examples/CMakeFiles/devops_monitoring.dir/devops_monitoring.cpp.o" "gcc" "examples/CMakeFiles/devops_monitoring.dir/devops_monitoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/ss_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ss_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
