# Empty dependencies file for fintime.
# This may be replaced when dependencies are built.
