file(REMOVE_RECURSE
  "CMakeFiles/fintime.dir/fintime.cpp.o"
  "CMakeFiles/fintime.dir/fintime.cpp.o.d"
  "fintime"
  "fintime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fintime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
