file(REMOVE_RECURSE
  "CMakeFiles/traffic_analytics.dir/traffic_analytics.cpp.o"
  "CMakeFiles/traffic_analytics.dir/traffic_analytics.cpp.o.d"
  "traffic_analytics"
  "traffic_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
