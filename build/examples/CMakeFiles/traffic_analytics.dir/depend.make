# Empty dependencies file for traffic_analytics.
# This may be replaced when dependencies are built.
