# Empty dependencies file for forecasting.
# This may be replaced when dependencies are built.
