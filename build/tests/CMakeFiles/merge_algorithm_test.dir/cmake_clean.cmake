file(REMOVE_RECURSE
  "CMakeFiles/merge_algorithm_test.dir/core/merge_algorithm_test.cc.o"
  "CMakeFiles/merge_algorithm_test.dir/core/merge_algorithm_test.cc.o.d"
  "merge_algorithm_test"
  "merge_algorithm_test.pdb"
  "merge_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
