# Empty dependencies file for merge_algorithm_test.
# This may be replaced when dependencies are built.
