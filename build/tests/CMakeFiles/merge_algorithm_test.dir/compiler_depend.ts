# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for merge_algorithm_test.
