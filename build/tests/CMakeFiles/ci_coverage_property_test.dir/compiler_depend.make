# Empty compiler generated dependencies file for ci_coverage_property_test.
# This may be replaced when dependencies are built.
