file(REMOVE_RECURSE
  "CMakeFiles/ci_coverage_property_test.dir/core/ci_coverage_property_test.cc.o"
  "CMakeFiles/ci_coverage_property_test.dir/core/ci_coverage_property_test.cc.o.d"
  "ci_coverage_property_test"
  "ci_coverage_property_test.pdb"
  "ci_coverage_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_coverage_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
