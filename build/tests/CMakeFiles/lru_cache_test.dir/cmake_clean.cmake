file(REMOVE_RECURSE
  "CMakeFiles/lru_cache_test.dir/common/lru_cache_test.cc.o"
  "CMakeFiles/lru_cache_test.dir/common/lru_cache_test.cc.o.d"
  "lru_cache_test"
  "lru_cache_test.pdb"
  "lru_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
