file(REMOVE_RECURSE
  "CMakeFiles/time_windowing_test.dir/core/time_windowing_test.cc.o"
  "CMakeFiles/time_windowing_test.dir/core/time_windowing_test.cc.o.d"
  "time_windowing_test"
  "time_windowing_test.pdb"
  "time_windowing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_windowing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
