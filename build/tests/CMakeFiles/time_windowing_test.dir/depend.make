# Empty dependencies file for time_windowing_test.
# This may be replaced when dependencies are built.
