file(REMOVE_RECURSE
  "CMakeFiles/window_test.dir/core/window_test.cc.o"
  "CMakeFiles/window_test.dir/core/window_test.cc.o.d"
  "window_test"
  "window_test.pdb"
  "window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
