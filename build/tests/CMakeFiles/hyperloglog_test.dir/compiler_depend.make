# Empty compiler generated dependencies file for hyperloglog_test.
# This may be replaced when dependencies are built.
