file(REMOVE_RECURSE
  "CMakeFiles/hyperloglog_test.dir/sketch/hyperloglog_test.cc.o"
  "CMakeFiles/hyperloglog_test.dir/sketch/hyperloglog_test.cc.o.d"
  "hyperloglog_test"
  "hyperloglog_test.pdb"
  "hyperloglog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperloglog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
