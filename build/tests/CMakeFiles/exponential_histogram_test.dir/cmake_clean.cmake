file(REMOVE_RECURSE
  "CMakeFiles/exponential_histogram_test.dir/baseline/exponential_histogram_test.cc.o"
  "CMakeFiles/exponential_histogram_test.dir/baseline/exponential_histogram_test.cc.o.d"
  "exponential_histogram_test"
  "exponential_histogram_test.pdb"
  "exponential_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exponential_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
