# Empty dependencies file for exponential_histogram_test.
# This may be replaced when dependencies are built.
