# Empty compiler generated dependencies file for welford_test.
# This may be replaced when dependencies are built.
