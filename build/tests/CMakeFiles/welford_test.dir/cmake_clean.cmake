file(REMOVE_RECURSE
  "CMakeFiles/welford_test.dir/stats/welford_test.cc.o"
  "CMakeFiles/welford_test.dir/stats/welford_test.cc.o.d"
  "welford_test"
  "welford_test.pdb"
  "welford_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/welford_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
