# Empty compiler generated dependencies file for lsm_concurrency_test.
# This may be replaced when dependencies are built.
