file(REMOVE_RECURSE
  "CMakeFiles/lsm_concurrency_test.dir/storage/lsm_concurrency_test.cc.o"
  "CMakeFiles/lsm_concurrency_test.dir/storage/lsm_concurrency_test.cc.o.d"
  "lsm_concurrency_test"
  "lsm_concurrency_test.pdb"
  "lsm_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
