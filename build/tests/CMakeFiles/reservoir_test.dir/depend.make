# Empty dependencies file for reservoir_test.
# This may be replaced when dependencies are built.
