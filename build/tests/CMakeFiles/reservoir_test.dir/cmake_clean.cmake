file(REMOVE_RECURSE
  "CMakeFiles/reservoir_test.dir/sketch/reservoir_test.cc.o"
  "CMakeFiles/reservoir_test.dir/sketch/reservoir_test.cc.o.d"
  "reservoir_test"
  "reservoir_test.pdb"
  "reservoir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservoir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
