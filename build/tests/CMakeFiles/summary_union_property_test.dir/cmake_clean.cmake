file(REMOVE_RECURSE
  "CMakeFiles/summary_union_property_test.dir/sketch/summary_union_property_test.cc.o"
  "CMakeFiles/summary_union_property_test.dir/sketch/summary_union_property_test.cc.o.d"
  "summary_union_property_test"
  "summary_union_property_test.pdb"
  "summary_union_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_union_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
