# Empty dependencies file for summary_union_property_test.
# This may be replaced when dependencies are built.
