file(REMOVE_RECURSE
  "CMakeFiles/landmark_test.dir/core/landmark_test.cc.o"
  "CMakeFiles/landmark_test.dir/core/landmark_test.cc.o.d"
  "landmark_test"
  "landmark_test.pdb"
  "landmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
