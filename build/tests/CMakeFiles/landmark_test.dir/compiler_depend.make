# Empty compiler generated dependencies file for landmark_test.
# This may be replaced when dependencies are built.
