file(REMOVE_RECURSE
  "CMakeFiles/boxplot_test.dir/stats/boxplot_test.cc.o"
  "CMakeFiles/boxplot_test.dir/stats/boxplot_test.cc.o.d"
  "boxplot_test"
  "boxplot_test.pdb"
  "boxplot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boxplot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
