# Empty dependencies file for boxplot_test.
# This may be replaced when dependencies are built.
