# Empty dependencies file for sstable_test.
# This may be replaced when dependencies are built.
