file(REMOVE_RECURSE
  "CMakeFiles/sstable_test.dir/storage/sstable_test.cc.o"
  "CMakeFiles/sstable_test.dir/storage/sstable_test.cc.o.d"
  "sstable_test"
  "sstable_test.pdb"
  "sstable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
