file(REMOVE_RECURSE
  "CMakeFiles/reorder_buffer_test.dir/core/reorder_buffer_test.cc.o"
  "CMakeFiles/reorder_buffer_test.dir/core/reorder_buffer_test.cc.o.d"
  "reorder_buffer_test"
  "reorder_buffer_test.pdb"
  "reorder_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
