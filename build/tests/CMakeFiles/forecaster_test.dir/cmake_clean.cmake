file(REMOVE_RECURSE
  "CMakeFiles/forecaster_test.dir/analytics/forecaster_test.cc.o"
  "CMakeFiles/forecaster_test.dir/analytics/forecaster_test.cc.o.d"
  "forecaster_test"
  "forecaster_test.pdb"
  "forecaster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
