# Empty dependencies file for forecaster_test.
# This may be replaced when dependencies are built.
