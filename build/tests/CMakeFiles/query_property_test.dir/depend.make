# Empty dependencies file for query_property_test.
# This may be replaced when dependencies are built.
