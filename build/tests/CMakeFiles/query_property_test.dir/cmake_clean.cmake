file(REMOVE_RECURSE
  "CMakeFiles/query_property_test.dir/core/query_property_test.cc.o"
  "CMakeFiles/query_property_test.dir/core/query_property_test.cc.o.d"
  "query_property_test"
  "query_property_test.pdb"
  "query_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
