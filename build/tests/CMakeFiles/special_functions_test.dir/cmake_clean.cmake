file(REMOVE_RECURSE
  "CMakeFiles/special_functions_test.dir/stats/special_functions_test.cc.o"
  "CMakeFiles/special_functions_test.dir/stats/special_functions_test.cc.o.d"
  "special_functions_test"
  "special_functions_test.pdb"
  "special_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
