file(REMOVE_RECURSE
  "CMakeFiles/bloom_test.dir/sketch/bloom_test.cc.o"
  "CMakeFiles/bloom_test.dir/sketch/bloom_test.cc.o.d"
  "bloom_test"
  "bloom_test.pdb"
  "bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
