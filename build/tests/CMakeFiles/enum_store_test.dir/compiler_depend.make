# Empty compiler generated dependencies file for enum_store_test.
# This may be replaced when dependencies are built.
