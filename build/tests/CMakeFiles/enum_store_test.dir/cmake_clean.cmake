file(REMOVE_RECURSE
  "CMakeFiles/enum_store_test.dir/baseline/enum_store_test.cc.o"
  "CMakeFiles/enum_store_test.dir/baseline/enum_store_test.cc.o.d"
  "enum_store_test"
  "enum_store_test.pdb"
  "enum_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enum_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
