file(REMOVE_RECURSE
  "CMakeFiles/cms_test.dir/sketch/cms_test.cc.o"
  "CMakeFiles/cms_test.dir/sketch/cms_test.cc.o.d"
  "cms_test"
  "cms_test.pdb"
  "cms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
