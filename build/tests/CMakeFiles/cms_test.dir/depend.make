# Empty dependencies file for cms_test.
# This may be replaced when dependencies are built.
