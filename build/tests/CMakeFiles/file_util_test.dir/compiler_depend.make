# Empty compiler generated dependencies file for file_util_test.
# This may be replaced when dependencies are built.
