file(REMOVE_RECURSE
  "CMakeFiles/file_util_test.dir/storage/file_util_test.cc.o"
  "CMakeFiles/file_util_test.dir/storage/file_util_test.cc.o.d"
  "file_util_test"
  "file_util_test.pdb"
  "file_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
