file(REMOVE_RECURSE
  "CMakeFiles/quantile_test.dir/sketch/quantile_test.cc.o"
  "CMakeFiles/quantile_test.dir/sketch/quantile_test.cc.o.d"
  "quantile_test"
  "quantile_test.pdb"
  "quantile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
