# Empty compiler generated dependencies file for quantile_test.
# This may be replaced when dependencies are built.
