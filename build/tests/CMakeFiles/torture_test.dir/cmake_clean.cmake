file(REMOVE_RECURSE
  "CMakeFiles/torture_test.dir/integration/torture_test.cc.o"
  "CMakeFiles/torture_test.dir/integration/torture_test.cc.o.d"
  "torture_test"
  "torture_test.pdb"
  "torture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
