file(REMOVE_RECURSE
  "CMakeFiles/wal_test.dir/storage/wal_test.cc.o"
  "CMakeFiles/wal_test.dir/storage/wal_test.cc.o.d"
  "wal_test"
  "wal_test.pdb"
  "wal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
