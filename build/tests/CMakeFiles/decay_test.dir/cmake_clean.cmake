file(REMOVE_RECURSE
  "CMakeFiles/decay_test.dir/core/decay_test.cc.o"
  "CMakeFiles/decay_test.dir/core/decay_test.cc.o.d"
  "decay_test"
  "decay_test.pdb"
  "decay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
