# Empty dependencies file for lsm_store_test.
# This may be replaced when dependencies are built.
