file(REMOVE_RECURSE
  "CMakeFiles/lsm_store_test.dir/storage/lsm_store_test.cc.o"
  "CMakeFiles/lsm_store_test.dir/storage/lsm_store_test.cc.o.d"
  "lsm_store_test"
  "lsm_store_test.pdb"
  "lsm_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
