file(REMOVE_RECURSE
  "CMakeFiles/distributions_test.dir/stats/distributions_test.cc.o"
  "CMakeFiles/distributions_test.dir/stats/distributions_test.cc.o.d"
  "distributions_test"
  "distributions_test.pdb"
  "distributions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
