# Empty dependencies file for crash_recovery_test.
# This may be replaced when dependencies are built.
