file(REMOVE_RECURSE
  "CMakeFiles/crash_recovery_test.dir/storage/crash_recovery_test.cc.o"
  "CMakeFiles/crash_recovery_test.dir/storage/crash_recovery_test.cc.o.d"
  "crash_recovery_test"
  "crash_recovery_test.pdb"
  "crash_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
