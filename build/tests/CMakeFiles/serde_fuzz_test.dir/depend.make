# Empty dependencies file for serde_fuzz_test.
# This may be replaced when dependencies are built.
