file(REMOVE_RECURSE
  "CMakeFiles/serde_fuzz_test.dir/sketch/serde_fuzz_test.cc.o"
  "CMakeFiles/serde_fuzz_test.dir/sketch/serde_fuzz_test.cc.o.d"
  "serde_fuzz_test"
  "serde_fuzz_test.pdb"
  "serde_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serde_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
