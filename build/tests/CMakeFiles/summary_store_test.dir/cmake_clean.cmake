file(REMOVE_RECURSE
  "CMakeFiles/summary_store_test.dir/core/summary_store_test.cc.o"
  "CMakeFiles/summary_store_test.dir/core/summary_store_test.cc.o.d"
  "summary_store_test"
  "summary_store_test.pdb"
  "summary_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
