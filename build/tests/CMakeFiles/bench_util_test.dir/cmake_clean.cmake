file(REMOVE_RECURSE
  "CMakeFiles/bench_util_test.dir/integration/bench_util_test.cc.o"
  "CMakeFiles/bench_util_test.dir/integration/bench_util_test.cc.o.d"
  "bench_util_test"
  "bench_util_test.pdb"
  "bench_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
