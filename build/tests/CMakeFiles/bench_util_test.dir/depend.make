# Empty dependencies file for bench_util_test.
# This may be replaced when dependencies are built.
