#include <gtest/gtest.h>

#include <cmath>

#include "src/analytics/forecaster.h"
#include "src/random/rng.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

constexpr Timestamp kDay = 86400;

TEST(SolveLinearSystem, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10};
  ASSERT_TRUE(SolveLinearSystem(a, b, 2).ok());
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularRejected) {
  std::vector<double> a = {1, 2, 2, 4};
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(SolveLinearSystem(a, b, 2).ok());
}

TEST(Forecaster, RecoversLinearTrend) {
  std::vector<Event> train;
  for (int d = 0; d < 200; ++d) {
    train.push_back({d * kDay, 10.0 + 0.5 * d});
  }
  ForecasterOptions options;
  auto model = Forecaster::Fit(train, options);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict(250 * kDay), 10.0 + 0.5 * 250, 1.5);
}

TEST(Forecaster, RecoversSeasonality) {
  std::vector<Event> train;
  for (int d = 0; d < 400; ++d) {
    double value = 100.0 + 20.0 * std::sin(2 * M_PI * d / 7.0);
    train.push_back({d * kDay, value});
  }
  ForecasterOptions options;
  options.seasonal_periods = {7.0 * kDay};
  auto model = Forecaster::Fit(train, options);
  ASSERT_TRUE(model.ok());
  for (int d = 400; d < 420; ++d) {
    double expected = 100.0 + 20.0 * std::sin(2 * M_PI * d / 7.0);
    EXPECT_NEAR(model->Predict(d * kDay), expected, 3.0) << d;
  }
}

TEST(Forecaster, TrendPlusSeasonalityOnNoisyData) {
  Rng rng(3);
  std::vector<Event> train;
  for (int d = 0; d < 600; ++d) {
    double value = 50.0 + 0.1 * d + 15.0 * std::sin(2 * M_PI * d / 7.0) + rng.NextGaussian();
    train.push_back({d * kDay, value});
  }
  ForecasterOptions options;
  options.seasonal_periods = {7.0 * kDay};
  auto model = Forecaster::Fit(train, options);
  ASSERT_TRUE(model.ok());
  std::vector<double> actual;
  std::vector<double> predicted;
  for (int d = 600; d < 660; ++d) {
    actual.push_back(50.0 + 0.1 * d + 15.0 * std::sin(2 * M_PI * d / 7.0));
    predicted.push_back(model->Predict(d * kDay));
  }
  EXPECT_LT(Smape(actual, predicted), 0.05);
}

TEST(Forecaster, WorksOnIrregularSamples) {
  // Decayed reconstructions are sparse in the past: fit must tolerate
  // uneven spacing.
  Rng rng(4);
  std::vector<Event> train;
  for (int d = 0; d < 500; ++d) {
    // Keep recent days densely, old days sparsely.
    bool keep = d > 400 || rng.NextBernoulli(0.2);
    if (keep) {
      train.push_back({d * kDay, 10.0 + 0.3 * d});
    }
  }
  auto model = Forecaster::Fit(train, ForecasterOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict(520 * kDay), 10.0 + 0.3 * 520, 5.0);
}

TEST(Forecaster, TooFewSamplesRejected) {
  std::vector<Event> train = {{0, 1.0}, {1, 2.0}};
  EXPECT_FALSE(Forecaster::Fit(train, ForecasterOptions{}).ok());
}

TEST(Smape, BasicProperties) {
  std::vector<double> a = {1, 2, 3};
  EXPECT_EQ(Smape(a, a), 0.0);
  std::vector<double> b = {2, 4, 6};
  double err = Smape(a, b);
  EXPECT_GT(err, 0.5);
  EXPECT_LT(err, 0.8);  // symmetric: |a-b| / mean(|a|,|b|) = 2/3
}

TEST(Forecaster, GeneratedDatasetsAreLearnable) {
  for (ForecastDataset dataset :
       {ForecastDataset::kEcon, ForecastDataset::kWiki, ForecastDataset::kNoaa}) {
    auto series = GenerateForecastSeries(dataset, 1200, 11);
    size_t split = series.size() * 9 / 10;
    std::vector<Event> train(series.begin(), series.begin() + static_cast<long>(split));
    ForecasterOptions options;
    options.seasonal_periods = {7.0 * kDay, 365.25 * kDay};
    auto model = Forecaster::Fit(train, options);
    ASSERT_TRUE(model.ok()) << ForecastDatasetName(dataset);
    std::vector<double> actual;
    std::vector<double> predicted;
    for (size_t i = split; i < series.size(); ++i) {
      actual.push_back(series[i].value);
      predicted.push_back(model->Predict(series[i].ts));
    }
    EXPECT_LT(Smape(actual, predicted), 0.25) << ForecastDatasetName(dataset);
  }
}

}  // namespace
}  // namespace ss
