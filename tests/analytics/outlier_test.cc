#include <gtest/gtest.h>

#include "src/analytics/outlier.h"
#include "src/analytics/reconstruct.h"
#include "src/core/stream.h"
#include "src/random/rng.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

TEST(DetectOutliers, FlagsSpikedIntervalsOnly) {
  std::vector<Event> events;
  Rng rng(1);
  // 10 intervals of 100 units; spike intervals 3 and 7. Bounded uniform
  // noise cannot cross the Tukey fences, so only the spikes flag.
  for (Timestamp t = 0; t < 1000; ++t) {
    double value = 10.0 + rng.NextDouble();
    if ((t / 100 == 3 || t / 100 == 7) && t % 100 == 50) {
      value = 100.0;
    }
    events.push_back({t, value});
  }
  OutlierReport report = DetectOutliers(events, 0, 1000, 100);
  ASSERT_EQ(report.interval_has_outlier.size(), 10u);
  EXPECT_TRUE(report.interval_has_outlier[3]);
  EXPECT_TRUE(report.interval_has_outlier[7]);
  EXPECT_EQ(report.flagged, 2u);
}

TEST(DetectOutliers, SparseIntervalsSkipped) {
  std::vector<Event> events = {{5, 1.0}, {105, 100.0}};
  OutlierReport report = DetectOutliers(events, 0, 200, 100);
  // Fewer than 4 samples per interval: no test run.
  EXPECT_EQ(report.flagged, 0u);
}

TEST(CompareOutlierReports, CountsConfusions) {
  OutlierReport truth;
  truth.interval_has_outlier = {true, false, true, false};
  OutlierReport test;
  test.interval_has_outlier = {true, true, false, false};
  OutlierAccuracy acc = CompareOutlierReports(truth, test);
  EXPECT_EQ(acc.true_positives, 1u);
  EXPECT_EQ(acc.false_positives, 1u);
  EXPECT_EQ(acc.false_negatives, 1u);
}

TEST(ThreeSigmaPolicy, FlagsLargeDeviations) {
  ThreeSigmaPolicy policy(3.0, /*warmup=*/50);
  Rng rng(2);
  int flagged_normal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.Observe(rng.NextGaussian())) {
      ++flagged_normal;
    }
  }
  // ~0.3% of gaussian samples exceed 3σ.
  EXPECT_LT(flagged_normal, 20);
  EXPECT_TRUE(policy.Observe(50.0));
}

TEST(ThreeSigmaPolicy, SilentDuringWarmup) {
  ThreeSigmaPolicy policy(3.0, 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(policy.Observe(i % 2 == 0 ? 1.0 : 1000.0));
  }
}

TEST(IntervalAverages, ComputesPerIntervalMeans) {
  std::vector<Event> events;
  for (Timestamp t = 0; t < 200; ++t) {
    events.push_back({t, t < 100 ? 1.0 : 3.0});
  }
  auto averages = IntervalAverages(events, 0, 200, 100);
  ASSERT_EQ(averages.size(), 2u);
  EXPECT_DOUBLE_EQ(averages[0], 1.0);
  EXPECT_DOUBLE_EQ(averages[1], 3.0);
}

TEST(Reconstruct, RawAndLandmarkEventsExactSamplesFromSketches) {
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.operators.reservoir = true;
  config.operators.reservoir_capacity = 16;
  config.raw_threshold = 8;
  Stream stream(1, config, &kv);
  for (Timestamp t = 1; t <= 2000; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  auto samples = ReconstructSamples(stream, 1, 2000);
  ASSERT_TRUE(samples.ok());
  EXPECT_GT(samples->size(), 50u);
  EXPECT_LT(samples->size(), 2000u);  // decayed: strictly fewer than raw
  // Sorted and in range.
  for (size_t i = 1; i < samples->size(); ++i) {
    EXPECT_LE((*samples)[i - 1].ts, (*samples)[i].ts);
  }
  // Denser in the recent past than the distant past.
  size_t old_count = 0;
  size_t recent_count = 0;
  for (const Event& e : *samples) {
    if (e.ts <= 500) {
      ++old_count;
    }
    if (e.ts > 1500) {
      ++recent_count;
    }
  }
  EXPECT_GT(recent_count, old_count);
}

TEST(Reconstruct, MissingReservoirErrors) {
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 2;
  Stream stream(1, config, &kv);
  for (Timestamp t = 1; t <= 500; ++t) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  EXPECT_EQ(ReconstructSamples(stream, 1, 500).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ss
