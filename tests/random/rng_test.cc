#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/random/arrival.h"
#include "src/random/rng.h"
#include "src/random/zipf.h"
#include "src/stats/welford.h"

namespace ss {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 60000; ++i) {
    uint64_t v = rng.NextBounded(6);
    ASSERT_LT(v, 6u);
    ++counts[v];
  }
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, 10000, 500);  // roughly uniform
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  WelfordAccumulator acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(acc.Mean(), 0.25, 0.005);
  EXPECT_NEAR(acc.StdDev(), 0.25, 0.01);  // exponential: σ = mean
}

TEST(Rng, ParetoMeanMatchesFormula) {
  Rng rng(12);
  WelfordAccumulator acc;
  double x_m = 1.0;
  double alpha = 3.0;
  for (int i = 0; i < 200000; ++i) {
    acc.Add(rng.NextPareto(x_m, alpha));
  }
  EXPECT_NEAR(acc.Mean(), x_m * alpha / (alpha - 1), 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  WelfordAccumulator acc;
  for (int i = 0; i < 100000; ++i) {
    acc.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(acc.Mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.StdDev(), 1.0, 0.02);
}

TEST(PoissonArrivals, RateMatches) {
  PoissonArrivals arrivals(0.1, 77);  // one event per 10 time units
  Timestamp last = 0;
  WelfordAccumulator gaps;
  for (int i = 0; i < 50000; ++i) {
    Timestamp t = arrivals.Next();
    EXPECT_GE(t, last);
    if (i > 0) {
      gaps.Add(static_cast<double>(t - last));
    }
    last = t;
  }
  EXPECT_NEAR(gaps.Mean(), 10.0, 0.3);
}

TEST(ParetoArrivals, MeanInterarrivalCalibrated) {
  ParetoArrivals arrivals(10.0, 2.2, 88);
  Timestamp last = 0;
  WelfordAccumulator gaps;
  for (int i = 0; i < 200000; ++i) {
    Timestamp t = arrivals.Next();
    if (i > 0) {
      gaps.Add(static_cast<double>(t - last));
    }
    last = t;
  }
  EXPECT_NEAR(gaps.Mean(), 10.0, 1.0);
}

TEST(RegularArrivals, ExactPeriod) {
  RegularArrivals arrivals(5, 100);
  EXPECT_EQ(arrivals.Next(), 100);
  EXPECT_EQ(arrivals.Next(), 105);
  EXPECT_EQ(arrivals.Next(), 110);
}

TEST(ZipfSampler, RankOneDominates) {
  ZipfSampler zipf(1000, 1.1);
  Rng rng(3);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 1 should be the most frequent, and heavy relative to rank 10.
  EXPECT_GT(counts[1], counts[10] * 5);
  EXPECT_GT(counts[1], 5000);
}

TEST(ZipfSampler, AllRanksInRange) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    int64_t rank = zipf.Sample(rng);
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 50);
  }
}

}  // namespace
}  // namespace ss
