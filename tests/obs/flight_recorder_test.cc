// Flight recorder: ring wraparound keeps the newest events, concurrent
// writers and snapshotters race cleanly (run under TSan in CI), the dump /
// decode / render pipeline round-trips, and poisoning a store under fault
// injection leaves a decodable bundle behind whose timeline contains the
// poisoning syscall's event.
#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/storage/fault_fs.h"
#include "src/storage/file_util.h"
#include "src/storage/lsm_store.h"

namespace ss {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Bundles must land where the test points them, not where CI points
    // every other process's dumps.
    ::unsetenv("SS_FLIGHT_DIR");
    FlightRecorder::Default().set_enabled(true);
    FlightRecorder::Default().ResetForTest();
    // pid-qualified: parallel ctest runs sibling tests from this binary in
    // concurrent processes, and a shared fixed dir would be wiped mid-test.
    dir_ = ::testing::TempDir() + "flight_recorder_test_" + std::to_string(::getpid());
    (void)RemoveDirRecursive(dir_);
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::string dir_;
};

TEST_F(FlightRecorderTest, RingWraparoundKeepsNewestEvents) {
  FlightRecorder& recorder = FlightRecorder::Default();
  const size_t total = FlightRecorder::kRingEvents + 100;
  for (size_t i = 0; i < total; ++i) {
    recorder.Record(FlightEventType::kFlushChunk, i, /*arg1=*/777);
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  size_t ours = 0;
  uint64_t min_arg0 = UINT64_MAX;
  for (const FlightEvent& e : events) {
    if (e.type == static_cast<uint16_t>(FlightEventType::kFlushChunk) && e.arg1 == 777) {
      ++ours;
      min_arg0 = std::min(min_arg0, e.arg0);
    }
  }
  // The ring holds exactly kRingEvents; the 100 oldest were overwritten.
  EXPECT_EQ(ours, FlightRecorder::kRingEvents);
  EXPECT_EQ(min_arg0, 100u);
}

TEST_F(FlightRecorderTest, SnapshotIsAscendingAndTrimsToNewest) {
  FlightRecorder& recorder = FlightRecorder::Default();
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(FlightEventType::kCompaction, i);
  }
  std::vector<FlightEvent> all = recorder.Snapshot();
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].ts_nanos, all[i - 1].ts_nanos);
  }
  std::vector<FlightEvent> newest = recorder.Snapshot(/*max_events=*/3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_EQ(newest.back().arg0, 9u);
  EXPECT_EQ(newest.front().arg0, 7u);
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder& recorder = FlightRecorder::Default();
  recorder.set_enabled(false);
  recorder.Record(FlightEventType::kCompaction, 1);
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.set_enabled(true);
  recorder.Record(FlightEventType::kCompaction, 2);
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].arg0, 2u);
}

// Eight writer threads hammer their rings while the main thread snapshots
// concurrently; the drain is lock-free by design, so TSan (CI runs this
// binary under it) is the real assertion. Post-join, each thread's ring
// retains exactly its newest kRingEvents events.
TEST_F(FlightRecorderTest, ConcurrentWritersWithConcurrentSnapshots) {
  FlightRecorder& recorder = FlightRecorder::Default();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 3 * FlightRecorder::kRingEvents;
  // Writers park after recording instead of exiting: an exited thread's ring
  // is reused by the next thread (by design), which would overwrite the
  // events this test wants to count.
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventType::kBlockCacheMiss, static_cast<uint64_t>(w), i);
      }
      done.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (done.load() < kThreads) {
    std::vector<FlightEvent> racing = recorder.Snapshot();
    EXPECT_LE(racing.size(), kThreads * FlightRecorder::kRingEvents);
  }
  release.store(true, std::memory_order_release);
  for (std::thread& t : writers) {
    t.join();
  }
  std::vector<FlightEvent> final_events = recorder.Snapshot();
  size_t ours = 0;
  for (const FlightEvent& e : final_events) {
    ours += e.type == static_cast<uint16_t>(FlightEventType::kBlockCacheMiss) ? 1 : 0;
  }
  EXPECT_EQ(ours, static_cast<size_t>(kThreads) * FlightRecorder::kRingEvents);
}

TEST_F(FlightRecorderTest, DumpReadRenderRoundtrip) {
  FlightRecorder& recorder = FlightRecorder::Default();
  recorder.Record(FlightEventType::kScrubCycle, 42, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.Record(FlightEventType::kWindowQuarantine, 7, 123456);

  auto path = recorder.Dump(dir_, "unit-test", "streams=1\nwal=00000001.wal\n");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->rfind(dir_ + "/flight-", 0), 0u) << *path;

  auto bundle = ReadFlightBundle(*path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "unit-test");
  EXPECT_NE(bundle->store_state.find("wal=00000001.wal"), std::string::npos);
  // The embedded metrics snapshot is valid RenderJson output.
  EXPECT_NE(bundle->metrics_json.find("\"counters\""), std::string::npos);
  ASSERT_GE(bundle->events.size(), 3u);  // two markers + the dump event itself
  EXPECT_EQ(bundle->events.back().type, static_cast<uint16_t>(FlightEventType::kDump));

  std::string timeline = RenderFlightTimeline(*bundle);
  EXPECT_NE(timeline.find("unit-test"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("scrub_cycle"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("window_quarantine"), std::string::npos) << timeline;

  // --since drops events before the offset: the 5 ms gap separates the two
  // markers, so filtering at 1000 us keeps the quarantine but not the scrub.
  std::string filtered = RenderFlightTimeline(*bundle, /*since_micros=*/1000.0);
  EXPECT_EQ(filtered.find("scrub_cycle"), std::string::npos) << filtered;
  EXPECT_NE(filtered.find("window_quarantine"), std::string::npos) << filtered;
}

TEST_F(FlightRecorderTest, SsFlightDirOverridesDumpDirectory) {
  const std::string override_dir = dir_ + "/override";
  ASSERT_EQ(::setenv("SS_FLIGHT_DIR", override_dir.c_str(), 1), 0);
  auto path = FlightRecorder::Default().Dump(dir_, "env-test", "");
  ::unsetenv("SS_FLIGHT_DIR");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->rfind(override_dir + "/flight-", 0), 0u) << *path;
  EXPECT_TRUE(ReadFlightBundle(*path).ok());
}

// The acceptance path: a WAL fsync fault poisons the store, which dumps a
// bundle to <dir>/debug; the decoded timeline must contain the injected
// fault's event and the poison marker.
TEST_F(FlightRecorderTest, PoisonUnderFaultInjectionDumpsDecodableBundle) {
  LsmOptions options;
  options.sync_wal = true;
  FaultFs fs;
  SetFileOpsForTest(&fs);
  {
    auto store = LsmStore::Open(dir_ + "/store", options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("before", "ok").ok());
    fs.FailAt(FaultOp::kFsync, fs.op_count(FaultOp::kFsync) + 1, EIO);
    ASSERT_FALSE((*store)->Put("doomed", "value").ok());
  }
  SetFileOpsForTest(nullptr);

  auto entries = ListDir(dir_ + "/store/debug");
  ASSERT_TRUE(entries.ok()) << "poison did not produce a debug/ bundle";
  std::string bundle_path;
  for (const std::string& name : *entries) {
    if (name.rfind("flight-", 0) == 0) {
      bundle_path = dir_ + "/store/debug/" + name;
    }
  }
  ASSERT_FALSE(bundle_path.empty());

  auto bundle = ReadFlightBundle(bundle_path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->reason, "wal-commit-poison");
  EXPECT_NE(bundle->store_state.find("(poisoned)"), std::string::npos) << bundle->store_state;

  bool saw_fault = false;
  bool saw_poison = false;
  for (const FlightEvent& e : bundle->events) {
    if (e.type == static_cast<uint16_t>(FlightEventType::kFaultInjected) &&
        e.arg0 == static_cast<uint64_t>(FaultOp::kFsync)) {
      saw_fault = true;
    }
    saw_poison |= e.type == static_cast<uint16_t>(FlightEventType::kStorePoison);
  }
  EXPECT_TRUE(saw_fault) << "bundle missing the injected-fsync event";
  EXPECT_TRUE(saw_poison) << "bundle missing the store-poison event";

  std::string timeline = RenderFlightTimeline(*bundle);
  EXPECT_NE(timeline.find("fault_injected"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("store_poison"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("wal_fsync"), std::string::npos) << timeline;
}

}  // namespace
}  // namespace ss
