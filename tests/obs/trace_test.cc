// QueryTrace accounting against a hand-computed in-memory store: every count
// in the trace must match what the store's own introspection says the query
// had to touch.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include "src/core/keys.h"
#include "src/core/query.h"
#include "src/core/summary_store.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.bloom_bits = 256;
  config.operators.cms_width = 64;
  config.raw_threshold = 8;
  return config;
}

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = SummaryStore::Open(StoreOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto sid = store_->CreateStream(SmallConfig());
    ASSERT_TRUE(sid.ok());
    sid_ = *sid;
    for (int t = 1; t <= 500; ++t) {
      ASSERT_TRUE(store_->Append(sid_, t, static_cast<double>(t % 10)).ok());
    }
  }

  StatusOr<QueryResult> TracedQuery(QueryOp op, Timestamp t1, Timestamp t2) {
    QuerySpec spec{.t1 = t1, .t2 = t2, .op = op};
    spec.collect_trace = true;
    return store_->Query(sid_, spec);
  }

  size_t WindowCount() { return (*store_->GetStream(sid_))->window_count(); }

  std::unique_ptr<SummaryStore> store_;
  StreamId sid_ = 0;
};

TEST_F(TraceFixture, UntracedQueryCarriesNoTrace) {
  QuerySpec spec{.t1 = 1, .t2 = 500, .op = QueryOp::kCount};
  auto result = store_->Query(sid_, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace, nullptr);
}

TEST_F(TraceFixture, FullRangeScanTouchesEveryWindowOnce) {
  auto result = TracedQuery(QueryOp::kCount, 1, 500);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const QueryTrace& trace = *result->trace;
  EXPECT_EQ(trace.op, "count");
  EXPECT_EQ(trace.t1, 1);
  EXPECT_EQ(trace.t2, 500);
  EXPECT_EQ(trace.windows_scanned, WindowCount());
  EXPECT_EQ(trace.raw_windows + trace.summary_windows, trace.windows_scanned);
  // Nothing was ever evicted, so every window is a cache hit and no bytes
  // cross the storage boundary.
  EXPECT_EQ(trace.window_cache_hits, trace.windows_scanned);
  EXPECT_EQ(trace.window_cache_misses, 0u);
  EXPECT_EQ(trace.bytes_fetched, 0u);
  EXPECT_EQ(trace.landmark_windows, 0u);
  EXPECT_EQ(trace.landmark_events, 0u);
  EXPECT_DOUBLE_EQ(trace.estimate, 500.0);
  EXPECT_TRUE(trace.exact);
  EXPECT_DOUBLE_EQ(trace.ci_width, trace.ci_hi - trace.ci_lo);
  EXPECT_GE(trace.elapsed_micros, 0.0);
}

TEST_F(TraceFixture, EvictedWindowsCountAsMissesWithBytes) {
  const size_t windows = WindowCount();
  ASSERT_TRUE(store_->EvictAll().ok());
  auto result = TracedQuery(QueryOp::kCount, 1, 500);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const QueryTrace& trace = *result->trace;
  EXPECT_EQ(trace.windows_scanned, windows);
  EXPECT_EQ(trace.window_cache_misses, windows);
  EXPECT_EQ(trace.window_cache_hits, 0u);
  EXPECT_GT(trace.bytes_fetched, 0u);
  EXPECT_DOUBLE_EQ(trace.estimate, 500.0);

  // The reload left every window resident again: a second scan is all hits.
  auto again = TracedQuery(QueryOp::kCount, 1, 500);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().trace->window_cache_hits, windows);
  EXPECT_EQ(again.value().trace->window_cache_misses, 0u);
  EXPECT_EQ(again.value().trace->bytes_fetched, 0u);
}

TEST_F(TraceFixture, MeanWalksTheWindowsTwice) {
  auto result = TracedQuery(QueryOp::kMean, 1, 500);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->op, "mean");
  EXPECT_EQ(result->trace->windows_scanned, 2 * WindowCount());
}

TEST_F(TraceFixture, NarrowRangeScansFewerWindows) {
  auto result = TracedQuery(QueryOp::kCount, 250, 251);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  EXPECT_GE(result->trace->windows_scanned, 1u);
  EXPECT_LT(result->trace->windows_scanned, WindowCount());
}

TEST_F(TraceFixture, RenderMentionsEveryAccountingLine) {
  auto result = TracedQuery(QueryOp::kCount, 1, 500);
  ASSERT_TRUE(result.ok());
  std::string text = result->trace->Render();
  EXPECT_NE(text.find("windows scanned"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes read"), std::string::npos) << text;
  EXPECT_NE(text.find("window cache"), std::string::npos) << text;
  EXPECT_NE(text.find("block cache"), std::string::npos) << text;
  EXPECT_NE(text.find("estimate"), std::string::npos) << text;
  // Phase attribution rides every traced query.
  EXPECT_NE(text.find("phases:"), std::string::npos) << text;
  EXPECT_NE(text.find("plan="), std::string::npos) << text;
  EXPECT_NE(text.find("window_scan="), std::string::npos) << text;
  EXPECT_NE(text.find("degraded:"), std::string::npos) << text;
  EXPECT_NE(text.find("no (0 quarantined windows"), std::string::npos) << text;
}

TEST_F(TraceFixture, PhaseSpansPopulateTheTrace) {
  auto result = TracedQuery(QueryOp::kCount, 1, 500);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const QueryTrace& trace = *result->trace;
  // Plan and window-scan always run for a count; every phase is non-negative
  // and the parts cannot exceed the whole.
  double total_phase_us = 0.0;
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    EXPECT_GE(trace.phase_us[i], 0.0) << QueryPhaseName(static_cast<QueryPhase>(i));
    total_phase_us += trace.phase_us[i];
  }
  EXPECT_GT(trace.phase_us[static_cast<size_t>(QueryPhase::kWindowScan)], 0.0);
  EXPECT_FALSE(trace.degraded);
  EXPECT_EQ(trace.quarantined_windows, 0u);
  EXPECT_EQ(trace.skipped_spans, 0u);
  // Spans are non-overlapping pieces of the traced query.
  EXPECT_LE(total_phase_us, trace.elapsed_micros * 1.5 + 100.0);
}

// A corrupt window quarantines at load time; the trace of the degraded query
// must say so — degraded flag, quarantined-window count, skipped spans — and
// Render() must surface it for `sstool query --explain`.
TEST(TraceDegraded, QuarantineShowsUpInTraceAndRender) {
  MemoryBackend kv;
  Stream stream(1, SmallConfig(), &kv);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(10 * i), 1.0).ok());
  }
  ASSERT_TRUE(stream.EvictAllWindows().ok());
  // Byte-flip one persisted window payload.
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(kv.Scan(WindowKeyPrefix(1), PrefixEnd(WindowKeyPrefix(1)),
                      [&](std::string_view key, std::string_view value) {
                        entries.emplace_back(std::string(key), std::string(value));
                        return true;
                      })
                  .ok());
  ASSERT_GE(entries.size(), 3u);
  std::string bad = entries[entries.size() / 2].second;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  ASSERT_TRUE(kv.Put(entries[entries.size() / 2].first, bad).ok());

  QuerySpec spec{.t1 = 0, .t2 = 20000, .op = QueryOp::kCount};
  spec.collect_trace = true;
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degraded);
  ASSERT_NE(result->trace, nullptr);
  EXPECT_TRUE(result->trace->degraded);
  EXPECT_GE(result->trace->quarantined_windows, 1u);
  EXPECT_EQ(result->trace->skipped_spans, result->skipped_spans.size());
  std::string text = result->trace->Render();
  EXPECT_NE(text.find("yes (1 quarantined windows"), std::string::npos) << text;
  EXPECT_NE(text.find("skipped"), std::string::npos) << text;
}

TEST(QueryPhaseNames, EveryPhaseHasAName) {
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    EXPECT_NE(QueryPhaseName(static_cast<QueryPhase>(i)), nullptr);
    EXPECT_GT(std::string(QueryPhaseName(static_cast<QueryPhase>(i))).size(), 0u);
  }
}

TEST(TraceLandmarks, LandmarkWindowAndEventCounts) {
  auto store = SummaryStore::Open(StoreOptions{});
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(SmallConfig());
  ASSERT_TRUE(sid.ok());
  for (int t = 1; t <= 50; ++t) {
    ASSERT_TRUE((*store)->Append(*sid, t, 1.0).ok());
  }
  ASSERT_TRUE((*store)->BeginLandmark(*sid, 51).ok());
  for (int t = 51; t <= 60; ++t) {
    ASSERT_TRUE((*store)->Append(*sid, t, 1.0).ok());
  }
  ASSERT_TRUE((*store)->EndLandmark(*sid, 61).ok());
  for (int t = 62; t <= 100; ++t) {
    ASSERT_TRUE((*store)->Append(*sid, t, 1.0).ok());
  }

  QuerySpec spec{.t1 = 1, .t2 = 100, .op = QueryOp::kCount};
  spec.collect_trace = true;
  auto result = (*store)->Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->landmark_windows, 1u);
  EXPECT_EQ(result->trace->landmark_events, 10u);
  // 50 pre-landmark + 10 landmark + 39 post-landmark events in range.
  EXPECT_DOUBLE_EQ(result->trace->estimate, 99.0);
}

}  // namespace
}  // namespace ss
