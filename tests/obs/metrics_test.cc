#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <string>
#include <thread>
#include <vector>

namespace ss {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (uint64_t j = 0; j < kPerThread; ++j) {
        counter.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, IncByDelta) {
  Counter counter;
  counter.Inc(10);
  counter.Inc(32);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.Set(100);
  gauge.Add(-30);
  EXPECT_EQ(gauge.value(), 70);
  gauge.Set(-5);
  EXPECT_EQ(gauge.value(), -5);
}

// The histogram promises: Quantile(q) is the upper bound of the log-scale
// bucket containing the exact order statistic, clamped to the recorded max.
// So exact <= Quantile(q) <= max(2 * exact - 1, exact).
TEST(LatencyHistogram, QuantileWithinOneBucketOfExact) {
  LatencyHistogram hist;
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 1000; ++v) {
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
    rank = std::min(rank, values.size() - 1);
    uint64_t exact = values[rank];
    uint64_t est = hist.Quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, std::max(2 * exact - 1, exact)) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.sum(), 1000u * 1001u / 2);
  EXPECT_EQ(hist.max(), 1000u);
  // The top quantile clamps to the true max rather than the bucket bound.
  EXPECT_EQ(hist.Quantile(1.0), 1000u);
}

TEST(LatencyHistogram, ZeroAndSingleValue) {
  LatencyHistogram hist;
  hist.Record(0);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.Quantile(0.5), 0u);
  hist.Record(7);
  EXPECT_EQ(hist.Quantile(1.0), 7u);
}

TEST(LatencyHistogram, BucketAssignmentIsBitWidth) {
  LatencyHistogram hist;
  hist.Record(0);    // bucket 0
  hist.Record(1);    // bucket 1
  hist.Record(2);    // bucket 2
  hist.Record(3);    // bucket 2
  hist.Record(512);  // bucket 10
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 2u);
  EXPECT_EQ(hist.BucketCount(10), 1u);
}

TEST(ScopedTimer, RecordsOnceOnDestruction) {
  LatencyHistogram hist;
  {
    ScopedTimer timer(hist);
  }
  EXPECT_EQ(hist.count(), 1u);
}

TEST(ScopedTimer, CancelSuppressesRecording) {
  LatencyHistogram hist;
  {
    ScopedTimer timer(hist);
    timer.Cancel();
  }
  EXPECT_EQ(hist.count(), 0u);
}

TEST(MetricRegistry, SameKeyReturnsSameInstrument) {
  MetricRegistry& registry = MetricRegistry::Default();
  registry.ResetForTest();
  Counter& a = registry.GetCounter("ss_test_reg_total");
  Counter& b = registry.GetCounter("ss_test_reg_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = registry.GetCounter("ss_test_reg_total", "op=\"count\"");
  EXPECT_NE(&a, &labeled);
}

TEST(MetricRegistry, PrometheusTextRoundTripsValues) {
  MetricRegistry& registry = MetricRegistry::Default();
  registry.ResetForTest();
  registry.GetCounter("ss_test_expo_total").Inc(42);
  registry.GetCounter("ss_test_expo_labeled_total", "op=\"sum\"").Inc(7);
  registry.GetGauge("ss_test_expo_gauge").Set(-3);
  LatencyHistogram& hist = registry.GetHistogram("ss_test_expo_us");
  hist.Record(100);
  hist.Record(200);

  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE ss_test_expo_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_test_expo_total 42"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_test_expo_labeled_total{op=\"sum\"} 7"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_test_expo_gauge -3"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_test_expo_us_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_test_expo_us_sum 300"), std::string::npos) << text;
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos) << text;
}

TEST(MetricRegistry, JsonRoundTripsValues) {
  MetricRegistry& registry = MetricRegistry::Default();
  registry.ResetForTest();
  registry.GetCounter("ss_test_json_total").Inc(13);
  registry.GetGauge("ss_test_json_gauge").Set(99);
  LatencyHistogram& hist = registry.GetHistogram("ss_test_json_us");
  hist.Record(64);

  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"ss_test_json_total\": 13"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ss_test_json_gauge\": 99"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ss_test_json_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
}

TEST(MetricRegistry, ConcurrentRegistrationAndUse) {
  MetricRegistry& registry = MetricRegistry::Default();
  registry.ResetForTest();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry] {
      // Every thread races the first-use registration path on purpose.
      Counter& c = registry.GetCounter("ss_test_race_total");
      for (uint64_t j = 0; j < kPerThread; ++j) {
        c.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.GetCounter("ss_test_race_total").value(), kThreads * kPerThread);
}

}  // namespace
}  // namespace ss
