#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/analytics/outlier.h"
#include "src/stats/welford.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

TEST(SyntheticStream, DeterministicForSeed) {
  SyntheticStreamSpec spec;
  spec.seed = 5;
  SyntheticStream a(spec);
  SyntheticStream b(spec);
  for (int i = 0; i < 1000; ++i) {
    Event ea = a.Next();
    Event eb = b.Next();
    EXPECT_EQ(ea.ts, eb.ts);
    EXPECT_EQ(ea.value, eb.value);
  }
}

TEST(SyntheticStream, MonotoneTimestamps) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kParetoInfiniteVariance,
                           ArrivalKind::kParetoFiniteVariance, ArrivalKind::kRegular}) {
    SyntheticStreamSpec spec;
    spec.arrival = kind;
    spec.mean_interarrival = 3.0;
    SyntheticStream stream(spec);
    Timestamp last = -1;
    for (int i = 0; i < 5000; ++i) {
      Event e = stream.Next();
      EXPECT_GE(e.ts, last);
      last = e.ts;
    }
  }
}

TEST(SyntheticStream, ValuesInUniverse) {
  SyntheticStreamSpec spec;
  spec.value_universe = 100;
  SyntheticStream stream(spec);
  for (int i = 0; i < 2000; ++i) {
    Event e = stream.Next();
    EXPECT_GE(e.value, 0.0);
    EXPECT_LT(e.value, 100.0);
    EXPECT_EQ(e.value, static_cast<double>(static_cast<int64_t>(e.value)));  // integral
  }
}

TEST(SyntheticStream, ParetoHeavierTailThanPoisson) {
  SyntheticStreamSpec poisson_spec;
  poisson_spec.arrival = ArrivalKind::kPoisson;
  poisson_spec.mean_interarrival = 10.0;
  SyntheticStreamSpec pareto_spec = poisson_spec;
  pareto_spec.arrival = ArrivalKind::kParetoInfiniteVariance;

  auto max_gap = [](SyntheticStream& s) {
    Timestamp last = s.Next().ts;
    Timestamp worst = 0;
    for (int i = 0; i < 50000; ++i) {
      Timestamp t = s.Next().ts;
      worst = std::max(worst, t - last);
      last = t;
    }
    return worst;
  };
  SyntheticStream poisson(poisson_spec);
  SyntheticStream pareto(pareto_spec);
  EXPECT_GT(max_gap(pareto), 3 * max_gap(poisson));
}

TEST(ClusterTrace, OutlierHeavyLikePaper) {
  // The Google trace has outliers in ~60% of intervals (§7.1.2); the
  // generator should land in that regime under the boxplot test.
  ClusterTraceGenerator gen(60, 0.02, 42);  // sample every minute
  std::vector<Event> events;
  for (int i = 0; i < 24 * 60 * 14; ++i) {  // two weeks of minutes
    events.push_back(gen.Next());
  }
  Timestamp t_end = events.back().ts + 1;
  OutlierReport report = DetectOutliers(events, events.front().ts, t_end, 3600);
  double frac =
      static_cast<double>(report.flagged) / static_cast<double>(report.interval_has_outlier.size());
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.85);
}

TEST(ClusterTrace, ValuesPlausible) {
  ClusterTraceGenerator gen(60, 0.02, 1);
  for (int i = 0; i < 10000; ++i) {
    Event e = gen.Next();
    EXPECT_GE(e.value, 0.0);
    EXPECT_LE(e.value, 4.0);
  }
}

TEST(MLabTrace, ZipfSkewInIps) {
  MLabTraceGenerator gen(1.0, 10000, 1.1, 9);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[static_cast<int64_t>(gen.Next().value)];
  }
  // Rank-1 IP dominates rank-100 by a large factor.
  EXPECT_GT(counts[1], counts[100] * 10);
}

TEST(TsmBackup, HourlyCadenceAndFailures) {
  TsmBackupGenerator gen(3, 0.01, 100);
  int failures = 0;
  Timestamp last = 0;
  WelfordAccumulator sizes;
  for (int i = 0; i < 20000; ++i) {
    Event e = gen.Next();
    EXPECT_EQ(e.ts - last, 3600);
    last = e.ts;
    if (e.value == 0.0) {
      ++failures;
    } else {
      sizes.Add(e.value);
    }
  }
  EXPECT_NEAR(failures, 200, 80);  // ~1% failure rate
  EXPECT_GT(sizes.Mean(), 0.0);
}

TEST(ForecastSeries, ShapesDiffer) {
  auto econ = GenerateForecastSeries(ForecastDataset::kEcon, 1000, 1);
  auto wiki = GenerateForecastSeries(ForecastDataset::kWiki, 1000, 1);
  auto noaa = GenerateForecastSeries(ForecastDataset::kNoaa, 1000, 1);
  ASSERT_EQ(econ.size(), 1000u);
  ASSERT_EQ(wiki.size(), 1000u);
  ASSERT_EQ(noaa.size(), 1000u);
  // Econ trends upward strongly.
  double econ_head = 0;
  double econ_tail = 0;
  for (int i = 0; i < 100; ++i) {
    econ_head += econ[static_cast<size_t>(i)].value;
    econ_tail += econ[static_cast<size_t>(900 + i)].value;
  }
  EXPECT_GT(econ_tail, econ_head + 1000.0);
  // NOAA oscillates around a stable mean (no strong trend).
  double noaa_head = 0;
  double noaa_tail = 0;
  for (int i = 0; i < 365; ++i) {
    noaa_head += noaa[static_cast<size_t>(i)].value;
    noaa_tail += noaa[static_cast<size_t>(635 - 365 + i + 365)].value;
  }
  EXPECT_NEAR(noaa_head / 365, noaa_tail / 365, 2.0);
}

TEST(ForecastSeries, Deterministic) {
  auto a = GenerateForecastSeries(ForecastDataset::kWiki, 300, 7);
  auto b = GenerateForecastSeries(ForecastDataset::kWiki, 300, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

}  // namespace
}  // namespace ss
