#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/storage/wal.h"

namespace ss {
namespace {

struct Record {
  std::string key;
  std::optional<std::string> value;
};

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_wal_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::vector<Record> Replay() {
    std::vector<Record> records;
    auto count = WalReplay(path_, [&](std::string_view key, std::optional<std::string_view> value) {
      records.push_back(Record{std::string(key),
                               value ? std::optional<std::string>(std::string(*value))
                                     : std::nullopt});
    });
    EXPECT_TRUE(count.ok());
    return records;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, MissingFileReplaysNothing) {
  auto records = Replay();
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, RoundTripPutsAndDeletes) {
  {
    auto wal = WalWriter::Open(path_, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("k1", "v1").ok());
    ASSERT_TRUE(wal->Append("k2", std::nullopt).ok());
    ASSERT_TRUE(wal->Append("k3", "v3").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "k1");
  EXPECT_EQ(*records[0].value, "v1");
  EXPECT_EQ(records[1].key, "k2");
  EXPECT_FALSE(records[1].value.has_value());
  EXPECT_EQ(*records[2].value, "v3");
}

TEST_F(WalTest, TornTailDiscardedCleanly) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("complete", "record").ok());
    ASSERT_TRUE(wal->Append("will-be", "torn").ok());
  }
  // Truncate mid-record to simulate a crash during the final write.
  auto contents = ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteFileAtomic(path_, contents->substr(0, contents->size() - 3)).ok());

  auto records = Replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "complete");
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("good", "one").ok());
    ASSERT_TRUE(wal->Append("bad", "two").ok());
    ASSERT_TRUE(wal->Append("after", "three").ok());
  }
  auto contents = ReadFileToString(path_);
  std::string data = *contents;
  // Flip a byte inside the second record's payload.
  data[data.size() / 2] ^= 0xff;
  ASSERT_TRUE(WriteFileAtomic(path_, data).ok());
  auto records = Replay();
  // Only records before the corruption survive.
  ASSERT_LE(records.size(), 2u);
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].key, "good");
}

TEST_F(WalTest, AppendAfterReopenKeepsHistory) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("a", "1").ok());
  }
  {
    auto wal = WalWriter::Open(path_, false);
    ASSERT_TRUE(wal->Append("b", "2").ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
}

TEST_F(WalTest, LargeValuesSurvive) {
  std::string big(1 << 20, 'x');
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("big", big).ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value->size(), big.size());
}

}  // namespace
}  // namespace ss
