#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/storage/wal.h"

namespace ss {
namespace {

struct Record {
  std::string key;
  std::optional<std::string> value;
};

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_wal_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::vector<Record> Replay() {
    std::vector<Record> records;
    auto count = WalReplay(path_, [&](std::string_view key, std::optional<std::string_view> value) {
      records.push_back(Record{std::string(key),
                               value ? std::optional<std::string>(std::string(*value))
                                     : std::nullopt});
    });
    EXPECT_TRUE(count.ok());
    return records;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, MissingFileReplaysNothing) {
  auto records = Replay();
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, RoundTripPutsAndDeletes) {
  {
    auto wal = WalWriter::Open(path_, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("k1", "v1").ok());
    ASSERT_TRUE(wal->Append("k2", std::nullopt).ok());
    ASSERT_TRUE(wal->Append("k3", "v3").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "k1");
  EXPECT_EQ(*records[0].value, "v1");
  EXPECT_EQ(records[1].key, "k2");
  EXPECT_FALSE(records[1].value.has_value());
  EXPECT_EQ(*records[2].value, "v3");
}

TEST_F(WalTest, TornTailDiscardedCleanlyAndCounted) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("complete", "record").ok());
    ASSERT_TRUE(wal->Append("will-be", "torn").ok());
  }
  // Truncate mid-record to simulate a crash during the final write.
  auto contents = ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteFileAtomic(path_, contents->substr(0, contents->size() - 3)).ok());

  Counter& torn = MetricRegistry::Default().GetCounter("ss_storage_wal_torn_tail_total");
  uint64_t torn_before = torn.value();
  LogLevel saved = MinLogLevel();
  MinLogLevel() = LogLevel::kError;  // the torn tail warns by design
  auto records = Replay();
  MinLogLevel() = saved;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "complete");
  // A torn tail is a diagnosable event, not a silent skip.
  EXPECT_EQ(torn.value(), torn_before + 1);
}

TEST_F(WalTest, RotateAndOpenStartsFreshLog) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("old", "gone-after-rotation").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto rotated = WalWriter::RotateAndOpen(path_);
  ASSERT_TRUE(rotated.ok());
  // The swap is atomic: no intermediate .new file survives, and the old
  // records are gone the instant the rename lands.
  EXPECT_FALSE(FileExists(path_ + ".new"));
  ASSERT_TRUE(rotated->Append("new", "record").ok());
  ASSERT_TRUE(rotated->Sync().ok());
  auto records = Replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "new");
}

TEST_F(WalTest, ChunkedReplayHandlesLogsLargerThanOneChunk) {
  // Several hundred KiB of small records: replay must stream them through
  // the bounded chunk buffer without loading the whole log.
  const int n = 8000;
  {
    auto wal = WalWriter::Open(path_, true);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(wal->Append("key" + std::to_string(i), std::string(40, 'v')).ok());
    }
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), static_cast<size_t>(n));
  EXPECT_EQ(records[0].key, "key0");
  EXPECT_EQ(records[n - 1].key, "key" + std::to_string(n - 1));
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("good", "one").ok());
    ASSERT_TRUE(wal->Append("bad", "two").ok());
    ASSERT_TRUE(wal->Append("after", "three").ok());
  }
  auto contents = ReadFileToString(path_);
  std::string data = *contents;
  // Flip a byte inside the second record's payload.
  data[data.size() / 2] ^= 0xff;
  ASSERT_TRUE(WriteFileAtomic(path_, data).ok());
  auto records = Replay();
  // Only records before the corruption survive.
  ASSERT_LE(records.size(), 2u);
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].key, "good");
}

TEST_F(WalTest, AppendAfterReopenKeepsHistory) {
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("a", "1").ok());
  }
  {
    auto wal = WalWriter::Open(path_, false);
    ASSERT_TRUE(wal->Append("b", "2").ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
}

TEST_F(WalTest, LargeValuesSurvive) {
  std::string big(1 << 20, 'x');
  {
    auto wal = WalWriter::Open(path_, true);
    ASSERT_TRUE(wal->Append("big", big).ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value->size(), big.size());
}

}  // namespace
}  // namespace ss
