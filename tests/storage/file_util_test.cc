#include <gtest/gtest.h>

#include <string>

#include "src/storage/file_util.h"

namespace ss {
namespace {

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_file_util_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::string dir_;
};

TEST_F(FileUtilTest, AppendAndReadBack) {
  std::string path = dir_ + "/a.txt";
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("hello ").ok());
    ASSERT_TRUE(file->Append("world").ok());
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
}

TEST_F(FileUtilTest, AppendModePreservesExisting) {
  std::string path = dir_ + "/b.txt";
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file->Append("first").ok());
  }
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file->Append("|second").ok());
  }
  EXPECT_EQ(*ReadFileToString(path), "first|second");
}

TEST_F(FileUtilTest, TruncateClears) {
  std::string path = dir_ + "/c.txt";
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file->Append("old data").ok());
  }
  {
    auto file = AppendFile::Open(path, /*truncate=*/true);
    ASSERT_TRUE(file->Append("new").ok());
  }
  EXPECT_EQ(*ReadFileToString(path), "new");
}

TEST_F(FileUtilTest, RandomAccessRead) {
  std::string path = dir_ + "/d.txt";
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file->Append("0123456789").ok());
  }
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*file->Size(), 10u);
  std::string out;
  ASSERT_TRUE(file->Read(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  // Reading past EOF reports corruption.
  EXPECT_FALSE(file->Read(8, 5, &out).ok());
}

TEST_F(FileUtilTest, WriteFileAtomicReplaces) {
  std::string path = dir_ + "/e.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  EXPECT_EQ(*ReadFileToString(path), "v1");
  ASSERT_TRUE(WriteFileAtomic(path, "v2-longer-content").ok());
  EXPECT_EQ(*ReadFileToString(path), "v2-longer-content");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FileUtilTest, ListDirAndRemove) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/x", "1").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/y", "2").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  ASSERT_TRUE(RemoveFileIfExists(dir_ + "/x").ok());
  ASSERT_TRUE(RemoveFileIfExists(dir_ + "/x").ok());  // idempotent
  EXPECT_EQ(ListDir(dir_)->size(), 1u);
}

TEST_F(FileUtilTest, MissingFileErrors) {
  EXPECT_FALSE(ReadFileToString(dir_ + "/nope").ok());
  EXPECT_FALSE(RandomAccessFile::Open(dir_ + "/nope").ok());
  EXPECT_FALSE(FileExists(dir_ + "/nope"));
}

}  // namespace
}  // namespace ss
