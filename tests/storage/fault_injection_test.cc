// Crash-matrix harness: run a write/flush/compact workload under FaultFs,
// kill the store at every mutating-syscall boundary in turn, apply simulated
// power loss, reopen, and assert that
//   - every acknowledged write (sync_wal=true) survives with its exact value,
//   - writes never attempted are absent,
//   - orphaned .sst/.tmp files and half-rotated WALs are collected,
// for every single crash point. Also covers the transient-error paths:
// a failed WAL fsync must poison the store instead of letting the log run
// ahead of the memtable.
//
// The default workload keeps the matrix small enough for tier-1; setting
// SS_FAULT_INJECT=1 (the CI fault leg) enlarges it.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "src/common/logging.h"
#include "src/storage/fault_fs.h"
#include "src/storage/lsm_store.h"

namespace ss {
namespace {

using Model = std::map<std::string, std::optional<std::string>>;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_faultinj_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    // The matrix deliberately provokes hundreds of I/O failures; the
    // resulting warnings would drown the test output.
    saved_log_level_ = MinLogLevel();
    MinLogLevel() = LogLevel::kError;
  }
  void TearDown() override {
    SetFileOpsForTest(nullptr);
    MinLogLevel() = saved_log_level_;
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }

  static LsmOptions MatrixOptions() {
    LsmOptions options;
    options.memtable_bytes = 512;    // frequent flushes
    options.compaction_trigger = 3;  // frequent compactions
    options.sync_wal = true;         // every acked write is a durability promise
    return options;
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%05d", i);
    return buf;
  }

  static std::string BatchKey(int i, int j) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "bat%05d_%d", i, j);
    return buf;
  }

  static constexpr int kBatchRecords = 3;

  // Runs the standard workload. Keys that were acknowledged land in `acked`
  // (nullopt = acknowledged tombstone); the in-flight op at the crash, whose
  // fate is legitimately indeterminate, lands in `indeterminate` — for a
  // batch op, every record in the batch (a crash at a group boundary may
  // replay any prefix of it; each record must be exact-or-absent). Stops at
  // the first failure (the store poisons itself). Returns the number of ops
  // attempted.
  static int RunWorkload(const std::string& dir, int num_ops, Model* acked,
                         Model* indeterminate) {
    auto store = LsmStore::Open(dir, MatrixOptions());
    if (!store.ok()) {
      return 0;  // crash hit during open; nothing was acknowledged
    }
    for (int i = 0; i < num_ops; ++i) {
      if (i % 5 == 4) {
        // Multi-record group: puts plus (past the first few) a tombstone for
        // an earlier batch key, acknowledged as one unit.
        std::string value = "batch-" + std::to_string(i) + "-" + std::string(30, 'b');
        WriteBatch batch;
        for (int j = 0; j < kBatchRecords; ++j) {
          batch.Put(BatchKey(i, j), value);
        }
        const bool with_delete = i >= 10;
        if (with_delete) {
          batch.Delete(BatchKey(i - 5, 0));
        }
        Status s = (*store)->PutBatch(batch);
        if (!s.ok()) {
          for (int j = 0; j < kBatchRecords; ++j) {
            (*indeterminate)[BatchKey(i, j)] = value;
          }
          if (with_delete) {
            (*indeterminate)[BatchKey(i - 5, 0)] = std::nullopt;
          }
          return i + 1;
        }
        for (int j = 0; j < kBatchRecords; ++j) {
          (*acked)[BatchKey(i, j)] = value;
        }
        if (with_delete) {
          (*acked)[BatchKey(i - 5, 0)] = std::nullopt;
        }
      } else if (i % 7 == 6) {
        std::string victim = Key(i - 3);
        Status s = (*store)->Delete(victim);
        if (!s.ok()) {
          (*indeterminate)[victim] = std::nullopt;
          return i + 1;
        }
        (*acked)[victim] = std::nullopt;
      } else {
        std::string key = Key(i);
        std::string value = "value-" + std::to_string(i) + "-" + std::string(40, 'v');
        Status s = (*store)->Put(key, value);
        if (!s.ok()) {
          (*indeterminate)[key] = value;
          return i + 1;
        }
        (*acked)[key] = value;
      }
    }
    (void)(*store)->Flush();
    return num_ops;
  }

  // Reopens `dir` with faults cleared and checks the durability contract.
  // `ops_attempted` is RunWorkload's return value.
  void VerifyAfterReopen(const std::string& dir, int num_ops, int ops_attempted,
                         const Model& acked, const Model& indeterminate, uint64_t crash_at) {
    auto store = LsmStore::Open(dir, MatrixOptions());
    ASSERT_TRUE(store.ok()) << "reopen failed after crash at op " << crash_at << ": "
                            << store.status();
    for (const auto& [key, value] : acked) {
      if (indeterminate.count(key)) {
        continue;  // a later in-flight op targeted this key
      }
      auto got = (*store)->Get(key);
      if (value.has_value()) {
        ASSERT_TRUE(got.ok()) << "acked write lost: " << key << " (crash at op " << crash_at
                              << "): " << got.status();
        EXPECT_EQ(*got, *value) << key << " (crash at op " << crash_at << ")";
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
            << "acked delete lost: " << key << " (crash at op " << crash_at << ")";
      }
    }
    // The in-flight op may or may not have landed, but it must never surface
    // as corruption, and a landed put must carry the exact attempted value.
    for (const auto& [key, value] : indeterminate) {
      auto got = (*store)->Get(key);
      if (got.ok() && value.has_value() && !acked.count(key)) {
        EXPECT_EQ(*got, *value) << key << " (crash at op " << crash_at << ")";
      } else if (!got.ok()) {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
            << key << " (crash at op " << crash_at << ")";
      }
    }
    // Put keys past the failure point were never attempted: must be absent.
    for (int i = ops_attempted; i < num_ops; ++i) {
      if (i % 5 == 4) {
        // Unattempted batch: none of its records may surface.
        for (int j = 0; j < kBatchRecords; ++j) {
          auto got = (*store)->Get(BatchKey(i, j));
          EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
              << "phantom batch write " << BatchKey(i, j) << " (crash at op " << crash_at << ")";
        }
        continue;
      }
      if (i % 7 == 6) {
        continue;  // delete op: its victim key legitimately exists
      }
      auto got = (*store)->Get(Key(i));
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
          << "phantom write " << Key(i) << " (crash at op " << crash_at << ")";
    }
    // Orphan GC: no temp files or half-rotated WALs survive Open, and every
    // .sst on disk is referenced (counted) by the recovered store.
    auto names = ListDir(dir);
    ASSERT_TRUE(names.ok());
    size_t sst_files = 0;
    for (const std::string& name : *names) {
      EXPECT_FALSE(name.size() > 4 && name.substr(name.size() - 4) == ".tmp")
          << name << " (crash at op " << crash_at << ")";
      EXPECT_NE(name, "wal.log.new") << "crash at op " << crash_at;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
        ++sst_files;
      }
    }
    EXPECT_EQ(sst_files, (*store)->sstable_count()) << "crash at op " << crash_at;
  }

  std::string dir_;
  LogLevel saved_log_level_ = LogLevel::kInfo;
};

TEST_F(FaultInjectionTest, CrashMatrixLosesNoAcknowledgedWrite) {
  const bool full = std::getenv("SS_FAULT_INJECT") != nullptr;
  const int num_ops = full ? 120 : 40;

  // Dry run with no fault scheduled: sizes the matrix and sanity-checks the
  // workload itself.
  uint64_t total_ops = 0;
  {
    FaultFs fs;
    SetFileOpsForTest(&fs);
    Model acked, indeterminate;
    std::string dry_dir = dir_ + "/dry";
    int attempted = RunWorkload(dry_dir, num_ops, &acked, &indeterminate);
    SetFileOpsForTest(nullptr);
    total_ops = fs.mutating_op_count();
    ASSERT_EQ(attempted, num_ops);
    ASSERT_TRUE(indeterminate.empty());
    VerifyAfterReopen(dry_dir, num_ops, attempted, acked, indeterminate, 0);
    ASSERT_TRUE(RemoveDirRecursive(dry_dir).ok());
  }
  ASSERT_GT(total_ops, 20u);

  for (uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    std::string dir = dir_ + "/crash";
    ASSERT_TRUE(RemoveDirRecursive(dir).ok());
    FaultFs fs;
    fs.CrashAtOpIndex(crash_at);
    if (crash_at % 2 == 0) {
      fs.SetTornWriteBytes(3);  // exercise torn tails on half the matrix
    }
    SetFileOpsForTest(&fs);
    Model acked, indeterminate;
    int attempted = RunWorkload(dir, num_ops, &acked, &indeterminate);  // store dies inside
    EXPECT_TRUE(fs.crashed()) << crash_at;
    ASSERT_TRUE(fs.ApplyPowerLoss().ok()) << crash_at;
    // Reopen + verify under a fresh, schedule-free FaultFs: behavior is
    // identical to the real FS, but simulated fsyncs keep the matrix fast.
    FaultFs clean_fs;
    SetFileOpsForTest(&clean_fs);
    VerifyAfterReopen(dir, num_ops, attempted, acked, indeterminate, crash_at);
    SetFileOpsForTest(nullptr);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST_F(FaultInjectionTest, WalSyncFailurePoisonsStoreWithoutApplying) {
  LsmOptions options;
  options.sync_wal = true;
  FaultFs fs;
  SetFileOpsForTest(&fs);
  {
    auto store = LsmStore::Open(dir_ + "/poison", options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("before", "ok").ok());

    fs.FailAt(FaultOp::kFsync, fs.op_count(FaultOp::kFsync) + 1, EIO);
    Status failed = (*store)->Put("doomed", "value");
    ASSERT_FALSE(failed.ok());
    // The record reached the log but the caller was told it failed; the
    // memtable must NOT have applied it.
    EXPECT_EQ((*store)->Get("doomed").status().code(), StatusCode::kNotFound);

    // Poisoned: subsequent writes fail fast without touching the disk.
    uint64_t ops_before = fs.mutating_op_count();
    EXPECT_FALSE((*store)->Put("after", "x").ok());
    EXPECT_FALSE((*store)->Delete("before").ok());
    EXPECT_FALSE((*store)->Flush().ok());
    EXPECT_EQ(fs.mutating_op_count(), ops_before);

    // Reads keep working.
    auto got = (*store)->Get("before");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "ok");
  }
  SetFileOpsForTest(nullptr);
}

TEST_F(FaultInjectionTest, WalAppendFailurePoisonsStore) {
  LsmOptions options;  // sync_wal=false: the append itself fails
  FaultFs fs;
  SetFileOpsForTest(&fs);
  {
    auto store = LsmStore::Open(dir_ + "/poison2", options);
    ASSERT_TRUE(store.ok());
    fs.FailAt(FaultOp::kWrite, fs.op_count(FaultOp::kWrite) + 1, ENOSPC);
    ASSERT_FALSE((*store)->Put("doomed", "value").ok());
    EXPECT_EQ((*store)->Get("doomed").status().code(), StatusCode::kNotFound);
    EXPECT_FALSE((*store)->Put("after", "x").ok());
  }
  SetFileOpsForTest(nullptr);
}

}  // namespace
}  // namespace ss
