// FaultFs unit tests: schedules must fire deterministically, and simulated
// power loss must implement strict POSIX durability — unsynced bytes drop,
// never-dir-synced entries vanish, uncommitted renames roll back.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "src/storage/fault_fs.h"

namespace ss {
namespace {

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_faultfs_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    SetFileOpsForTest(&fs_);
  }
  void TearDown() override {
    SetFileOpsForTest(nullptr);
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }

  std::string dir_;
  FaultFs fs_;
};

TEST_F(FaultFsTest, FailAtFiresOnExactNthCall) {
  fs_.FailAt(FaultOp::kWrite, 2, EIO);
  auto file = AppendFile::Open(dir_ + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->Append("one").ok());
  Status second = file->Append("two");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kIoError);
  EXPECT_TRUE(file->Append("three").ok());
  EXPECT_EQ(fs_.injected_faults(), 1u);
  EXPECT_EQ(fs_.op_count(FaultOp::kWrite), 3u);
}

TEST_F(FaultFsTest, PowerLossDropsUnsyncedBytes) {
  {
    auto file = AppendFile::Open(dir_ + "/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("durable!").ok());
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Append("volatile").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  ASSERT_TRUE(SyncDir(dir_).ok());  // the entry itself must survive
  ASSERT_TRUE(fs_.ApplyPowerLoss().ok());
  auto contents = ReadFileToString(dir_ + "/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "durable!");
}

TEST_F(FaultFsTest, PowerLossDropsEntriesCreatedAfterDirSync) {
  {
    auto file = AppendFile::Open(dir_ + "/kept");
    ASSERT_TRUE(file->Append("a").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(SyncDir(dir_).ok());
  {
    auto file = AppendFile::Open(dir_ + "/dropped");
    ASSERT_TRUE(file->Append("b").ok());
    ASSERT_TRUE(file->Sync().ok());  // data synced, but the entry is not
  }
  ASSERT_TRUE(fs_.ApplyPowerLoss().ok());
  EXPECT_TRUE(FileExists(dir_ + "/kept"));
  EXPECT_FALSE(FileExists(dir_ + "/dropped"));
}

TEST_F(FaultFsTest, PowerLossRollsBackUncommittedRename) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/f", "v1", /*sync_dir=*/true).ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/f", "v2", /*sync_dir=*/false).ok());
  EXPECT_EQ(*ReadFileToString(dir_ + "/f"), "v2");
  ASSERT_TRUE(fs_.ApplyPowerLoss().ok());
  // The second replace never reached a directory fsync: v1 comes back.
  EXPECT_EQ(*ReadFileToString(dir_ + "/f"), "v1");
}

TEST_F(FaultFsTest, CrashAtOpIndexIsDeterministicAndSticky) {
  fs_.CrashAtOpIndex(3);
  auto file = AppendFile::Open(dir_ + "/f");  // op 1: open
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->Append("x").ok());        // op 2: write
  EXPECT_FALSE(file->Append("y").ok());       // op 3: crash fires here
  EXPECT_TRUE(fs_.crashed());
  EXPECT_FALSE(file->Append("z").ok());       // dead machine: everything fails
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_FALSE(AppendFile::Open(dir_ + "/g").ok());
  EXPECT_EQ(fs_.mutating_op_count(), 3u);     // post-crash calls are not counted
}

TEST_F(FaultFsTest, TornWritePersistsPrefixOfCrashingWrite) {
  {
    auto file = AppendFile::Open(dir_ + "/f");
    ASSERT_TRUE(file->Append("head").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(SyncDir(dir_).ok());
  fs_.SetTornWriteBytes(2);
  fs_.CrashAtOpIndex(fs_.mutating_op_count() + 2);  // the write after reopen
  {
    auto file = AppendFile::Open(dir_ + "/f");
    ASSERT_TRUE(file.ok());
    EXPECT_FALSE(file->Append("tail").ok());
  }
  ASSERT_TRUE(fs_.ApplyPowerLoss().ok());
  EXPECT_EQ(*ReadFileToString(dir_ + "/f"), "headta");
}

TEST_F(FaultFsTest, ReadsPassThroughAfterCrash) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/f", "visible", /*sync_dir=*/true).ok());
  fs_.CrashAtOpIndex(fs_.mutating_op_count() + 1);
  EXPECT_FALSE(AppendFile::Open(dir_ + "/g").ok());  // trips the crash
  ASSERT_TRUE(fs_.crashed());
  auto contents = ReadFileToString(dir_ + "/f");     // reads still work
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "visible");
}

}  // namespace
}  // namespace ss
