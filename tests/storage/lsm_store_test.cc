#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/random/rng.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

class LsmStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_lsm_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  LsmOptions SmallOptions() {
    LsmOptions options;
    options.memtable_bytes = 4096;  // force frequent flushes
    options.compaction_trigger = 4;
    return options;
  }

  std::string dir_;
};

TEST_F(LsmStoreTest, PutGetDelete) {
  auto store = LsmStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  EXPECT_EQ(*(*store)->Get("k"), "v");
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_EQ((*store)->Get("k").status().code(), StatusCode::kNotFound);
}

TEST_F(LsmStoreTest, OverwriteReturnsLatest) {
  auto store = LsmStore::Open(dir_, SmallOptions());
  for (int v = 0; v < 50; ++v) {
    ASSERT_TRUE((*store)->Put("key", "v" + std::to_string(v)).ok());
    // Interleave other keys to force memtable flushes between versions.
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*store)->Put("pad" + std::to_string(v * 100 + i), std::string(64, 'x')).ok());
    }
  }
  EXPECT_EQ(*(*store)->Get("key"), "v49");
}

TEST_F(LsmStoreTest, SurvivesReopenViaWal) {
  {
    auto store = LsmStore::Open(dir_);
    ASSERT_TRUE((*store)->Put("persisted", "yes").ok());
    ASSERT_TRUE((*store)->Put("deleted", "no").ok());
    ASSERT_TRUE((*store)->Delete("deleted").ok());
    // No Flush: rely on WAL replay (destructor flush also exercises it, so
    // bypass the destructor path by leaking intentionally? No — the
    // destructor flushes; WAL replay is tested by the torn-tail case in
    // wal_test. Here we verify reopen equivalence either way.)
  }
  auto store = LsmStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("persisted"), "yes");
  EXPECT_EQ((*store)->Get("deleted").status().code(), StatusCode::kNotFound);
}

TEST_F(LsmStoreTest, FlushCreatesTablesAndCompactionBoundsThem) {
  auto store = LsmStore::Open(dir_, SmallOptions());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(32, 'v')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_LT((*store)->sstable_count(), 4u);  // compaction keeps table count low
  // All data still readable after compactions.
  for (int i = 0; i < 2000; i += 97) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(LsmStoreTest, ScanRangeOrderedAndShadowed) {
  auto store = LsmStore::Open(dir_, SmallOptions());
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE((*store)->Put(key, "old" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  // Overwrite a subset and delete another subset post-flush.
  for (int i = 100; i < 110; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE((*store)->Put(key, "new" + std::to_string(i)).ok());
  }
  for (int i = 200; i < 205; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE((*store)->Delete(key).ok());
  }

  std::vector<std::pair<std::string, std::string>> seen;
  ASSERT_TRUE((*store)
                  ->Scan("k0100", "k0210",
                         [&](std::string_view k, std::string_view v) {
                           seen.emplace_back(k, v);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 105u);  // 110 keys minus 5 deletions
  EXPECT_EQ(seen.front().first, "k0100");
  EXPECT_EQ(seen.front().second, "new100");
  EXPECT_EQ(seen[10].second, "old110");
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1].first, seen[i].first);
  }
}

TEST_F(LsmStoreTest, ScanEarlyStop) {
  auto store = LsmStore::Open(dir_);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(1000 + i), "v").ok());
  }
  int visited = 0;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view, std::string_view) {
                           ++visited;
                           return visited < 10;
                         })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST_F(LsmStoreTest, RandomOpsMatchReferenceModel) {
  auto store = LsmStore::Open(dir_, SmallOptions());
  std::map<std::string, std::string> model;
  Rng rng(20240601);
  for (int op = 0; op < 5000; ++op) {
    std::string key = "key" + std::to_string(rng.NextBounded(400));
    if (rng.NextBernoulli(0.7)) {
      std::string value = "v" + std::to_string(rng.NextU64() % 100000);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE((*store)->Delete(key).ok());
      model.erase(key);
    }
    if (op % 500 == 0) {
      ASSERT_TRUE((*store)->Flush().ok());
    }
  }
  // Point lookups agree with the model.
  for (int i = 0; i < 400; ++i) {
    std::string key = "key" + std::to_string(i);
    auto it = model.find(key);
    auto got = (*store)->Get(key);
    if (it == model.end()) {
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(*got, it->second) << key;
    }
  }
  // Full scan agrees with the model.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           scanned.emplace(std::string(k), std::string(v));
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, model);
}

TEST_F(LsmStoreTest, ReopenAfterHeavyChurnMatchesModel) {
  std::map<std::string, std::string> model;
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    Rng rng(77);
    for (int op = 0; op < 3000; ++op) {
      std::string key = "key" + std::to_string(rng.NextBounded(200));
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = LsmStore::Open(dir_, SmallOptions());
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE((*store)
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           scanned.emplace(std::string(k), std::string(v));
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, model);
}

TEST_F(LsmStoreTest, DropCachesStillReads) {
  auto store = LsmStore::Open(dir_, SmallOptions());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), std::string(64, 'd')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  (*store)->DropCaches();
  EXPECT_TRUE((*store)->Get("k500").ok());
}

TEST(MemoryBackendTest, BasicOperationsAndScan) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.Put("b", "2").ok());
  ASSERT_TRUE(backend.Put("a", "1").ok());
  ASSERT_TRUE(backend.Put("c", "3").ok());
  ASSERT_TRUE(backend.Delete("c").ok());
  EXPECT_EQ(*backend.Get("a"), "1");
  EXPECT_EQ(backend.Get("c").status().code(), StatusCode::kNotFound);
  std::vector<std::string> keys;
  ASSERT_TRUE(backend
                  .Scan("", "",
                        [&](std::string_view k, std::string_view) {
                          keys.emplace_back(k);
                          return true;
                        })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace ss
