#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/storage/sstable.h"

namespace ss {
namespace {

class SsTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_sst_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/table.sst";
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  void BuildTable(int n, int stride = 1) {
    auto builder = SstBuilder::Create(path_);
    ASSERT_TRUE(builder.ok());
    for (int i = 0; i < n; i += stride) {
      ASSERT_TRUE(builder->Add(Key(i), false, "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(builder->Finish().ok());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(SsTableTest, BuildAndGet) {
  BuildTable(1000);
  auto table = SsTable::Open(path_, 1);
  ASSERT_TRUE(table.ok());
  BlockCache cache(1 << 20);
  for (int i : {0, 1, 499, 999}) {
    auto result = (*table)->Get(Key(i), &cache);
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_EQ(result->value, "value" + std::to_string(i));
    EXPECT_FALSE(result->tombstone);
  }
  EXPECT_GT((*table)->block_count(), 1u);  // multi-block at 1000 entries
}

TEST_F(SsTableTest, MissingKeysNotFound) {
  BuildTable(100, /*stride=*/2);  // only even keys
  auto table = SsTable::Open(path_, 1);
  ASSERT_TRUE(table.ok());
  BlockCache cache(1 << 20);
  EXPECT_EQ((*table)->Get(Key(1), &cache).status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*table)->Get("aaaa", &cache).status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*table)->Get("zzzz", &cache).status().code(), StatusCode::kNotFound);
}

TEST_F(SsTableTest, TombstonesSurface) {
  auto builder = SstBuilder::Create(path_);
  ASSERT_TRUE(builder->Add("alive", false, "v").ok());
  ASSERT_TRUE(builder->Add("dead", true, "").ok());
  ASSERT_TRUE(builder->Finish().ok());
  auto table = SsTable::Open(path_, 1);
  BlockCache cache(1 << 20);
  auto dead = (*table)->Get("dead", &cache);
  ASSERT_TRUE(dead.ok());
  EXPECT_TRUE(dead->tombstone);
}

TEST_F(SsTableTest, OutOfOrderKeysRejected) {
  auto builder = SstBuilder::Create(path_);
  ASSERT_TRUE(builder->Add("b", false, "1").ok());
  EXPECT_FALSE(builder->Add("a", false, "2").ok());
  EXPECT_FALSE(builder->Add("b", false, "3").ok());  // duplicates rejected too
}

TEST_F(SsTableTest, IteratorFullScan) {
  BuildTable(500);
  auto table = SsTable::Open(path_, 1);
  BlockCache cache(1 << 20);
  SsTable::Iterator iter(table->get(), &cache);
  ASSERT_TRUE(iter.Seek("").ok());
  int count = 0;
  std::string prev;
  while (iter.Valid()) {
    EXPECT_GT(iter.entry().key, prev);
    prev = iter.entry().key;
    ++count;
    ASSERT_TRUE(iter.Next().ok());
  }
  EXPECT_EQ(count, 500);
}

TEST_F(SsTableTest, IteratorSeekMidAndBetween) {
  BuildTable(100, /*stride=*/2);  // keys 0,2,4,...
  auto table = SsTable::Open(path_, 1);
  BlockCache cache(1 << 20);
  SsTable::Iterator iter(table->get(), &cache);
  ASSERT_TRUE(iter.Seek(Key(50)).ok());
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.entry().key, Key(50));
  // Seek to a missing key lands on the successor.
  ASSERT_TRUE(iter.Seek(Key(51)).ok());
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.entry().key, Key(52));
  // Seek past the end invalidates.
  ASSERT_TRUE(iter.Seek("zzz").ok());
  EXPECT_FALSE(iter.Valid());
}

TEST_F(SsTableTest, CorruptedBlockDetected) {
  BuildTable(1000);
  auto contents = ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  std::string data = *contents;
  data[100] ^= 0xff;  // flip a data-block byte
  ASSERT_TRUE(WriteFileAtomic(path_, data).ok());
  auto table = SsTable::Open(path_, 1);
  ASSERT_TRUE(table.ok());  // index is intact
  BlockCache cache(1 << 20);
  auto result = (*table)->Get(Key(0), &cache);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(SsTableTest, BadMagicRejected) {
  BuildTable(10);
  auto contents = ReadFileToString(path_);
  std::string data = *contents;
  data[data.size() - 1] ^= 0xff;
  ASSERT_TRUE(WriteFileAtomic(path_, data).ok());
  EXPECT_EQ(SsTable::Open(path_, 1).status().code(), StatusCode::kCorruption);
}

TEST_F(SsTableTest, BlockCacheServesRepeatReads) {
  BuildTable(1000);
  auto table = SsTable::Open(path_, 1);
  BlockCache cache(1 << 20);
  ASSERT_TRUE((*table)->Get(Key(500), &cache).ok());
  uint64_t misses_after_first = cache.misses();
  ASSERT_TRUE((*table)->Get(Key(500), &cache).ok());
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace ss
