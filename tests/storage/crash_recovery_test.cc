// Failure-injection tests for the storage engine: torn WAL tails, deleted
// SSTables, corrupted manifests, and mid-compaction states must either
// recover losslessly (acknowledged+flushed data) or fail loudly with
// kCorruption — never silently return wrong data.
#include <gtest/gtest.h>

#include <map>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/random/rng.h"
#include "src/storage/lsm_store.h"

namespace ss {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_crash_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  LsmOptions SmallOptions() {
    LsmOptions options;
    options.memtable_bytes = 2048;
    options.compaction_trigger = 3;
    return options;
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, TornWalTailLosesOnlyUnsyncedSuffix) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
    }
    // Simulate crash: do NOT flush; destructor would flush, so truncate the
    // WAL *after* closing to emulate a torn final record.
  }
  std::string wal = dir_ + "/wal.log";
  if (FileExists(wal)) {
    auto contents = ReadFileToString(wal);
    if (contents.ok() && contents->size() > 4) {
      ASSERT_TRUE(WriteFileAtomic(wal, contents->substr(0, contents->size() - 3)).ok());
    }
  }
  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  // Everything except possibly the last record must be intact.
  for (int i = 0; i < 9; ++i) {
    auto got = (*store)->Get("key" + std::to_string(i));
    EXPECT_TRUE(got.ok()) << i;
  }
}

TEST_F(CrashRecoveryTest, MissingSstableFailsLoudly) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_GE((*store)->sstable_count(), 1u);
  }
  // Delete one .sst file out from under the manifest.
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.ends_with(".sst")) {
      ASSERT_TRUE(RemoveFileIfExists(dir_ + "/" + name).ok());
      break;
    }
  }
  auto reopened = LsmStore::Open(dir_, SmallOptions());
  EXPECT_FALSE(reopened.ok());
}

TEST_F(CrashRecoveryTest, CorruptSstableBlockSurfacesAsCorruption) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(1000 + i), std::string(64, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto names = ListDir(dir_);
  for (const std::string& name : *names) {
    if (name.ends_with(".sst")) {
      std::string path = dir_ + "/" + name;
      auto contents = ReadFileToString(path);
      std::string data = *contents;
      data[64] ^= 0xff;  // flip a data byte, leave index+footer intact
      ASSERT_TRUE(WriteFileAtomic(path, data).ok());
    }
  }
  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());  // index loads fine
  bool saw_corruption = false;
  for (int i = 0; i < 500; ++i) {
    auto got = (*store)->Get("key" + std::to_string(1000 + i));
    if (!got.ok() && got.status().code() == StatusCode::kCorruption) {
      saw_corruption = true;
      break;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST_F(CrashRecoveryTest, RepeatedReopenUnderChurnIsLossless) {
  // Model across 10 "sessions" with flush-at-end: every acknowledged +
  // flushed write must survive arbitrary reopen sequences.
  std::map<std::string, std::string> model;
  Rng rng(42);
  for (int session = 0; session < 10; ++session) {
    auto store = LsmStore::Open(dir_, SmallOptions());
    ASSERT_TRUE(store.ok());
    // Verify everything from prior sessions first.
    for (const auto& [key, value] : model) {
      auto got = (*store)->Get(key);
      ASSERT_TRUE(got.ok()) << key << " lost in session " << session;
      ASSERT_EQ(*got, value);
    }
    for (int op = 0; op < 300; ++op) {
      std::string key = "k" + std::to_string(rng.NextBounded(150));
      if (rng.NextBernoulli(0.8)) {
        std::string value = "s" + std::to_string(session) + "v" + std::to_string(op);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        model[key] = value;
      } else {
        ASSERT_TRUE((*store)->Delete(key).ok());
        model.erase(key);
      }
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
}

TEST_F(CrashRecoveryTest, OrphanSstGcOnOpen) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Plant debris a crash could leave behind: an SST that never made the
  // manifest, a half-written temp file, and a half-rotated WAL.
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/99.sst", "orphan bytes").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/foo.tmp", "temp bytes").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/wal.log.new", "half-rotated").ok());

  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(FileExists(dir_ + "/99.sst"));
  EXPECT_FALSE(FileExists(dir_ + "/foo.tmp"));
  EXPECT_FALSE(FileExists(dir_ + "/wal.log.new"));
  // The orphan's id must not be reused: a future flush would otherwise
  // collide with debris from a prior incarnation.
  for (int i = 100; i < 300; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'y')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(CrashRecoveryTest, SalvageModeSkipsUnreadableTables) {
  LogLevel saved = MinLogLevel();
  MinLogLevel() = LogLevel::kError;  // salvage warns per skipped table
  LsmOptions options = SmallOptions();
  options.compaction_trigger = 100;  // keep the two tables separate
  {
    auto store = LsmStore::Open(dir_, options);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)->Put("a" + std::to_string(i), "first").ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)->Put("b" + std::to_string(i), "second").ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->sstable_count(), 2u);
  }
  // Destroy the first (older) table.
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/1.sst", "not an sstable").ok());

  // Default open must fail loudly...
  ASSERT_FALSE(LsmStore::Open(dir_, options).ok());

  // ...but salvage mode brings the survivors online.
  options.salvage = true;
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->sstable_count(), 1u);
  for (int i = 0; i < 50; ++i) {
    auto got = (*store)->Get("b" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, "second");
  }
  // The damaged file stays on disk for forensics.
  EXPECT_TRUE(FileExists(dir_ + "/1.sst"));
  MinLogLevel() = saved;
}

TEST_F(CrashRecoveryTest, RotatedWalRecovery) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    ASSERT_TRUE((*store)->Put("committed", "yes").ok());
    (void)store->release();  // hard kill: no destructor flush
  }
  // Crash mid-rotation: a fresh wal.log.new exists but the swap never
  // happened. Recovery must replay wal.log and discard the .new file.
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/wal.log.new", "").ok());
  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  auto got = (*store)->Get("committed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "yes");
  EXPECT_FALSE(FileExists(dir_ + "/wal.log.new"));
}

TEST_F(CrashRecoveryTest, CorruptManifestFailsLoudly) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  std::string path = dir_ + "/MANIFEST";
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string data = *contents;
  data[data.size() / 2] ^= 0xff;
  ASSERT_TRUE(WriteFileAtomic(path, data).ok());
  auto reopened = LsmStore::Open(dir_, SmallOptions());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(CrashRecoveryTest, LegacyManifestStillReadable) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->sstable_count(), 1u);
  }
  // Find the live table id and rewrite the manifest in the pre-versioning
  // format: bare varint count + ids, no magic, no checksum.
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  uint32_t id = 0;
  for (const std::string& name : *names) {
    if (name.ends_with(".sst")) {
      id = static_cast<uint32_t>(std::stoul(name.substr(0, name.size() - 4)));
    }
  }
  ASSERT_GT(id, 0u);
  Writer legacy;
  legacy.PutVarint(1);
  legacy.PutVarint(id);
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/MANIFEST", legacy.data()).ok());

  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->sstable_count(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(CrashRecoveryTest, RecoveryFlushesOversizedMemtable) {
  {
    auto store = LsmStore::Open(dir_, LsmOptions());  // 4 MiB threshold
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
    }
    ASSERT_EQ((*store)->sstable_count(), 0u);  // all in the memtable + WAL
    (void)store->release();  // hard kill
  }
  // Reopen with a tiny threshold: the replayed memtable is over it and must
  // be flushed at the end of recovery, not parked until the next write.
  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->memtable_entries(), 0u);
  EXPECT_GE((*store)->sstable_count(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*store)->Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(CrashRecoveryTest, UnflushedWritesRecoverViaWal) {
  {
    auto store = LsmStore::Open(dir_, SmallOptions());
    ASSERT_TRUE((*store)->Put("durable", "1").ok());
    // Simulate a hard kill by leaking the store: no destructor flush.
    (void)store->release();
  }
  auto store = LsmStore::Open(dir_, SmallOptions());
  ASSERT_TRUE(store.ok());
  auto got = (*store)->Get("durable");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "1");
}

}  // namespace
}  // namespace ss
