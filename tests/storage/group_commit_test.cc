// WriteBatch / PutBatch semantics and the LsmStore group-commit protocol:
// batch atomicity in the memtable, WAL replay of batched records, fsync
// amortization under sync_wal, and correctness under concurrent batched
// writers (the latter also runs under TSan via tools/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_gc_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::string dir_;
};

TEST(WriteBatchTest, AccumulatesOpsInOrder) {
  WriteBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("a", "2");  // later op shadows the earlier one on apply
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.ApproximateBytes(), 1 + 1 + 1 + 1 + 1u);
  ASSERT_EQ(batch.ops().size(), 3u);
  EXPECT_EQ(batch.ops()[0].key, "a");
  EXPECT_EQ(*batch.ops()[0].value, "1");
  EXPECT_EQ(batch.ops()[1].key, "b");
  EXPECT_FALSE(batch.ops()[1].value.has_value());
  EXPECT_EQ(*batch.ops()[2].value, "2");
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.ApproximateBytes(), 0u);
}

TEST(WriteBatchTest, MemoryBackendAppliesAtomically) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.Put("stale", "x").ok());
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Put("k2", "v2");
  batch.Delete("stale");
  batch.Put("k1", "v1b");
  ASSERT_TRUE(backend.PutBatch(batch).ok());
  EXPECT_EQ(*backend.Get("k1"), "v1b");
  EXPECT_EQ(*backend.Get("k2"), "v2");
  EXPECT_EQ(backend.Get("stale").status().code(), StatusCode::kNotFound);
}

TEST_F(GroupCommitTest, PutBatchAppliesPutsAndTombstones) {
  auto store = LsmStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("doomed", "soon").ok());
  WriteBatch batch;
  for (int i = 0; i < 20; ++i) {
    batch.Put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  batch.Delete("doomed");
  ASSERT_TRUE((*store)->PutBatch(batch).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*(*store)->Get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
  EXPECT_EQ((*store)->Get("doomed").status().code(), StatusCode::kNotFound);
  // Empty batches are a no-op, not an error.
  EXPECT_TRUE((*store)->PutBatch(WriteBatch()).ok());
}

TEST_F(GroupCommitTest, BatchSurvivesReopenViaWal) {
  {
    auto store = LsmStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    WriteBatch batch;
    for (int i = 0; i < 50; ++i) {
      batch.Put("wal" + std::to_string(i), std::string(100, 'a' + (i % 26)));
    }
    batch.Delete("wal0");
    ASSERT_TRUE((*store)->PutBatch(batch).ok());
  }
  auto reopened = LsmStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("wal0").status().code(), StatusCode::kNotFound);
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(*(*reopened)->Get("wal" + std::to_string(i)), std::string(100, 'a' + (i % 26)));
  }
}

TEST_F(GroupCommitTest, OversizedBatchTriggersMemtableFlush) {
  LsmOptions options;
  options.memtable_bytes = 2048;
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  for (int i = 0; i < 64; ++i) {
    batch.Put("big" + std::to_string(i), std::string(128, 'z'));
  }
  ASSERT_TRUE((*store)->PutBatch(batch).ok());
  EXPECT_GE((*store)->sstable_count(), 1u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(*(*store)->Get("big" + std::to_string(i)), std::string(128, 'z'));
  }
}

TEST_F(GroupCommitTest, SyncWalBatchPaysOneFsyncForManyRecords) {
  LsmOptions options;
  options.sync_wal = true;
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());
  Counter& fsyncs = MetricRegistry::Default().GetCounter("ss_storage_wal_fsync_total");
  const uint64_t fsyncs_before = fsyncs.value();
  WriteBatch batch;
  constexpr int kRecords = 128;
  for (int i = 0; i < kRecords; ++i) {
    batch.Put("amortized" + std::to_string(i), "v");
  }
  ASSERT_TRUE((*store)->PutBatch(batch).ok());
  // One group, one fsync — the whole point of group commit. (No memtable
  // flush can intervene: the batch is far below the default threshold.)
  EXPECT_EQ(fsyncs.value() - fsyncs_before, 1u);
}

TEST_F(GroupCommitTest, ConcurrentBatchedWritersAllDurable) {
  LsmOptions options;
  options.sync_wal = true;
  options.memtable_bytes = 16 << 10;  // keep flush/rotation in the mix
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 30;
  constexpr int kRecordsPerBatch = 8;
  Counter& fsyncs = MetricRegistry::Default().GetCounter("ss_storage_wal_fsync_total");
  const uint64_t fsyncs_before = fsyncs.value();
  {
    auto store = LsmStore::Open(dir_, options);
    ASSERT_TRUE(store.ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          WriteBatch batch;
          for (int r = 0; r < kRecordsPerBatch; ++r) {
            batch.Put("t" + std::to_string(t) + "_b" + std::to_string(b) + "_r" +
                          std::to_string(r),
                      std::string(32, 'a' + (r % 26)));
          }
          if (!(*store)->PutBatch(batch).ok()) {
            failures.fetch_add(1);
          }
          // Interleave single writes so groups mix batch sizes.
          if (!(*store)->Put("t" + std::to_string(t) + "_single" + std::to_string(b), "s").ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(failures.load(), 0);
    // Every acknowledged record is readable.
    for (int t = 0; t < kThreads; ++t) {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        for (int r = 0; r < kRecordsPerBatch; ++r) {
          EXPECT_TRUE((*store)
                          ->Get("t" + std::to_string(t) + "_b" + std::to_string(b) + "_r" +
                                std::to_string(r))
                          .ok());
        }
        EXPECT_TRUE(
            (*store)->Get("t" + std::to_string(t) + "_single" + std::to_string(b)).ok());
      }
    }
  }
  // Group commit can only reduce fsyncs: never more than one per PutBatch
  // call (plus rotations from memtable flushes, which the generous bound
  // absorbs). With any queue contention at all, strictly fewer.
  const uint64_t acked_calls = kThreads * kBatchesPerThread * 2;
  EXPECT_LE(fsyncs.value() - fsyncs_before, acked_calls + 32);
  // ...and everything survives reopen.
  auto reopened = LsmStore::Open(dir_, options);
  ASSERT_TRUE(reopened.ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int b = 0; b < kBatchesPerThread; ++b) {
      for (int r = 0; r < kRecordsPerBatch; ++r) {
        EXPECT_TRUE((*reopened)
                        ->Get("t" + std::to_string(t) + "_b" + std::to_string(b) + "_r" +
                              std::to_string(r))
                        .ok());
      }
    }
  }
}

TEST_F(GroupCommitTest, ReadsProceedWhileWritersQueue) {
  // Readers racing a storm of batched writers should always see either the
  // pre-batch or post-batch state per key, never torn values.
  auto store = LsmStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("shared", std::string(256, 'A')).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto value = (*store)->Get("shared");
      if (!value.ok() || value->size() != 256 ||
          value->find_first_not_of(value->front()) != std::string::npos) {
        bad_reads.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        WriteBatch batch;
        batch.Put("shared", std::string(256, 'B' + ((t * 200 + i) % 20)));
        batch.Put("noise" + std::to_string(t), std::to_string(i));
        ASSERT_TRUE((*store)->PutBatch(batch).ok());
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad_reads.load(), 0);
}

}  // namespace
}  // namespace ss
