// Thread-safety of the LSM backend: concurrent writers and readers behind
// the store mutex must never corrupt state, lose acknowledged writes, or
// return torn values.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/random/rng.h"
#include "src/storage/lsm_store.h"

namespace ss {
namespace {

class LsmConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_conc_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::string dir_;
};

TEST_F(LsmConcurrencyTest, ParallelWritersDisjointKeyspaces) {
  LsmOptions options;
  options.memtable_bytes = 16 << 10;
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int tid = 0; tid < kThreads; ++tid) {
    writers.emplace_back([&, tid] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(tid) + "k" + std::to_string(i);
        if (!(*store)->Put(key, "v" + std::to_string(i)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every acknowledged write is readable with its exact value.
  for (int tid = 0; tid < kThreads; ++tid) {
    for (int i = 0; i < kPerThread; i += 53) {
      std::string key = "t" + std::to_string(tid) + "k" + std::to_string(i);
      auto got = (*store)->Get(key);
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(*got, "v" + std::to_string(i));
    }
  }
}

TEST_F(LsmConcurrencyTest, ReadersRaceWritersWithoutTornValues) {
  LsmOptions options;
  options.memtable_bytes = 8 << 10;
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());

  // Writer flips a small set of keys between two self-describing values;
  // readers must only ever observe one of the two complete values.
  constexpr int kKeys = 16;
  const std::string value_a(100, 'a');
  const std::string value_b(100, 'b');
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(k), value_a).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    Rng rng(1);
    for (int i = 0; i < 4000; ++i) {
      std::string key = "key" + std::to_string(rng.NextBounded(kKeys));
      (void)(*store)->Put(key, (i % 2 == 0) ? value_b : value_a);
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + static_cast<uint64_t>(r));
      while (!stop.load()) {
        std::string key = "key" + std::to_string(rng.NextBounded(kKeys));
        auto got = (*store)->Get(key);
        if (got.ok() && *got != value_a && *got != value_b) {
          ++torn;
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

TEST_F(LsmConcurrencyTest, BatchedAndSingleWritersShareGroupCommit) {
  // Batched writers, single-op writers, and readers all race; group commit
  // must coalesce them without losing or tearing anything. Runs under TSan
  // via tools/ci.sh to validate the leader/follower handoff.
  LsmOptions options;
  options.memtable_bytes = 8 << 10;  // rotations interleave with commits
  auto store = LsmStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());

  constexpr int kBatchThreads = 3;
  constexpr int kBatchesPerThread = 100;
  constexpr int kRecordsPerBatch = 6;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kBatchThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        WriteBatch batch;
        for (int r = 0; r < kRecordsPerBatch; ++r) {
          batch.Put("g" + std::to_string(tid) + "b" + std::to_string(b) + "r" + std::to_string(r),
                    std::string(24, 'a' + (r % 26)));
        }
        if (b > 0) {
          batch.Delete("g" + std::to_string(tid) + "b" + std::to_string(b - 1) + "r0");
        }
        if (!(*store)->PutBatch(batch).ok()) {
          ++failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 600; ++i) {
      if (!(*store)->Put("single" + std::to_string(i), "s").ok()) {
        ++failures;
      }
    }
  });
  threads.emplace_back([&] {
    Rng rng(7);
    while (!stop.load()) {
      std::string key = "g0b" + std::to_string(rng.NextBounded(kBatchesPerThread)) + "r1";
      auto got = (*store)->Get(key);
      if (got.ok() && got->size() != 24) {
        ++failures;  // torn value
      }
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) {
    threads[i].join();
  }
  stop = true;
  threads.back().join();
  EXPECT_EQ(failures.load(), 0);

  // Final state: last batch of each thread fully present, deletes applied.
  for (int tid = 0; tid < kBatchThreads; ++tid) {
    for (int r = 0; r < kRecordsPerBatch; ++r) {
      EXPECT_TRUE((*store)
                      ->Get("g" + std::to_string(tid) + "b" +
                            std::to_string(kBatchesPerThread - 1) + "r" + std::to_string(r))
                      .ok());
    }
    EXPECT_EQ((*store)->Get("g" + std::to_string(tid) + "b0r0").status().code(),
              StatusCode::kNotFound);
  }
  for (int i = 0; i < 600; i += 37) {
    EXPECT_TRUE((*store)->Get("single" + std::to_string(i)).ok());
  }
}

TEST_F(LsmConcurrencyTest, ScanWhileWriting) {
  auto store = LsmStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "base%04d", i);
    ASSERT_TRUE((*store)->Put(key, "x").ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      (void)(*store)->Put("new" + std::to_string(i), "y");
    }
    stop = true;
  });
  // Scans over the stable prefix must always see all 1000 base keys in order.
  while (!stop.load()) {
    int seen = 0;
    std::string prev;
    ASSERT_TRUE((*store)
                    ->Scan("base", "basf",
                           [&](std::string_view k, std::string_view) {
                             EXPECT_GT(std::string(k), prev);
                             prev = std::string(k);
                             ++seen;
                             return true;
                           })
                    .ok());
    EXPECT_EQ(seen, 1000);
  }
  writer.join();
}

}  // namespace
}  // namespace ss
