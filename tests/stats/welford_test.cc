#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/random/rng.h"
#include "src/stats/welford.h"

namespace ss {
namespace {

TEST(Welford, MatchesDirectComputation) {
  std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  WelfordAccumulator acc;
  for (double x : data) {
    acc.Add(x);
  }
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(acc.StdDev(), 2.0);
}

TEST(Welford, EmptyAndSingle) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.Variance(), 0.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.Mean(), 3.0);
  EXPECT_EQ(acc.Variance(), 0.0);
}

TEST(Welford, MergeEqualsSequential) {
  Rng rng(7);
  WelfordAccumulator a;
  WelfordAccumulator b;
  WelfordAccumulator all;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian() * 3 + 10;
    if (i % 2 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(Welford, MergeWithEmpty) {
  WelfordAccumulator a;
  a.Add(1.0);
  a.Add(3.0);
  WelfordAccumulator empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
}

TEST(Welford, NumericallyStableOnLargeOffsets) {
  WelfordAccumulator acc;
  for (int i = 0; i < 1000; ++i) {
    acc.Add(1e9 + (i % 2));  // values 1e9 and 1e9+1
  }
  EXPECT_NEAR(acc.Variance(), 0.25, 1e-6);
}

TEST(Welford, FromPartsRoundTrip) {
  WelfordAccumulator acc;
  for (int i = 1; i <= 50; ++i) {
    acc.Add(static_cast<double>(i));
  }
  WelfordAccumulator restored = WelfordAccumulator::FromParts(acc.count(), acc.Mean(), acc.m2());
  EXPECT_EQ(restored.count(), acc.count());
  EXPECT_DOUBLE_EQ(restored.Mean(), acc.Mean());
  EXPECT_DOUBLE_EQ(restored.Variance(), acc.Variance());
  // And it keeps accumulating correctly.
  restored.Add(51.0);
  acc.Add(51.0);
  EXPECT_DOUBLE_EQ(restored.Variance(), acc.Variance());
}

}  // namespace
}  // namespace ss
