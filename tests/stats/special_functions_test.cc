#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/special_functions.h"

namespace ss {
namespace {

TEST(StdNormalCdf, ReferenceValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(StdNormalCdf(1.959963984540054), 0.975, 1e-10);
  EXPECT_NEAR(StdNormalCdf(-2.326347874040841), 0.01, 1e-10);
  EXPECT_NEAR(StdNormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(StdNormalQuantile, ReferenceValues) {
  EXPECT_NEAR(StdNormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(StdNormalQuantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(StdNormalQuantile(0.025), -1.959963984540054, 1e-7);
  EXPECT_NEAR(StdNormalQuantile(0.01), -2.326347874040841, 1e-7);
  EXPECT_NEAR(StdNormalQuantile(0.999), 3.090232306167813, 1e-6);
}

TEST(StdNormalQuantile, InverseOfCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(StdNormalCdf(StdNormalQuantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(StdNormalQuantile, ExtremeTails) {
  EXPECT_NEAR(StdNormalCdf(StdNormalQuantile(1e-10)), 1e-10, 1e-13);
  EXPECT_NEAR(StdNormalCdf(StdNormalQuantile(1.0 - 1e-10)), 1.0 - 1e-10, 1e-13);
}

TEST(RegularizedGammaP, ReferenceValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-10);
  // Known: P(3, 2.5) ≈ 0.45618688.
  EXPECT_NEAR(RegularizedGammaP(3.0, 2.5), 0.4561868841166724, 1e-8);
  // Q(10,30) = e^-30 Σ_{k<10} 30^k/k! ≈ 7.12e-6.
  EXPECT_NEAR(RegularizedGammaP(10.0, 30.0), 0.9999928782491372, 1e-9);
}

TEST(RegularizedGammaQ, ComplementsP) {
  for (double a : {0.5, 1.0, 3.0, 17.0, 120.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedIncompleteBeta, ReferenceValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.4), 0.4 * 0.4 * (3 - 0.8), 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(RegularizedIncompleteBeta(3.5, 2.25, 0.6),
              1.0 - RegularizedIncompleteBeta(2.25, 3.5, 0.4), 1e-10);
  // Edges.
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(RegularizedIncompleteBeta, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    double v = RegularizedIncompleteBeta(4.0, 7.0, x);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

}  // namespace
}  // namespace ss
