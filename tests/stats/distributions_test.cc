#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/distributions.h"

namespace ss {
namespace {

TEST(NormalDist, CdfAndQuantile) {
  NormalDist dist(10.0, 2.0);
  EXPECT_NEAR(dist.Cdf(10.0), 0.5, 1e-12);
  EXPECT_NEAR(dist.Cdf(12.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(dist.Quantile(0.975), 10.0 + 2.0 * 1.959963984540054, 1e-6);
  EXPECT_NEAR(dist.Quantile(dist.Cdf(8.5)), 8.5, 1e-8);
}

TEST(NormalDist, DegenerateStddev) {
  NormalDist dist(5.0, 0.0);
  EXPECT_EQ(dist.Cdf(4.999), 0.0);
  EXPECT_EQ(dist.Cdf(5.0), 1.0);
  EXPECT_EQ(dist.Quantile(0.01), 5.0);
  EXPECT_EQ(dist.Quantile(0.99), 5.0);
}

TEST(BinomialDist, PmfSumsToOne) {
  BinomialDist dist(20, 0.3);
  double total = 0;
  for (int64_t k = 0; k <= 20; ++k) {
    total += dist.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BinomialDist, ReferenceCdf) {
  // Binomial(10, 0.5): P(X<=4) = 0.376953125, P(X<=5) = 0.623046875.
  BinomialDist dist(10, 0.5);
  EXPECT_NEAR(dist.Cdf(4), 0.376953125, 1e-9);
  EXPECT_NEAR(dist.Cdf(5), 0.623046875, 1e-9);
  EXPECT_EQ(dist.Cdf(-1), 0.0);
  EXPECT_EQ(dist.Cdf(10), 1.0);
}

TEST(BinomialDist, QuantileIsSmallestK) {
  BinomialDist dist(10, 0.5);
  EXPECT_EQ(dist.Quantile(0.376953125), 4);
  EXPECT_EQ(dist.Quantile(0.38), 5);
  EXPECT_EQ(dist.Quantile(1e-9), 0);
  EXPECT_EQ(dist.Quantile(1.0), 10);
}

TEST(BinomialDist, LargeNMatchesNormalApprox) {
  BinomialDist dist(1000000, 0.5);
  // Median ~ mean; 97.5% quantile ~ mean + 1.96 sd.
  double sd = std::sqrt(dist.Variance());
  EXPECT_NEAR(static_cast<double>(dist.Quantile(0.5)), dist.Mean(), 2.0);
  EXPECT_NEAR(static_cast<double>(dist.Quantile(0.975)), dist.Mean() + 1.96 * sd, 0.01 * sd);
}

TEST(BinomialDist, EdgeProbabilities) {
  BinomialDist zero(10, 0.0);
  EXPECT_EQ(zero.Pmf(0), 1.0);
  EXPECT_EQ(zero.Quantile(0.99), 0);
  BinomialDist one(10, 1.0);
  EXPECT_EQ(one.Pmf(10), 1.0);
  EXPECT_EQ(one.Quantile(0.5), 10);
}

TEST(PoissonDist, PmfAndCdf) {
  PoissonDist dist(3.0);
  EXPECT_NEAR(dist.Pmf(0), std::exp(-3.0), 1e-12);
  EXPECT_NEAR(dist.Pmf(3), std::exp(-3.0) * 27.0 / 6.0, 1e-12);
  // P(X<=2) for λ=3: e^-3 (1 + 3 + 4.5) = 0.42319008...
  EXPECT_NEAR(dist.Cdf(2), 0.4231900811268436, 1e-10);
}

TEST(PoissonDist, QuantileInverse) {
  PoissonDist dist(100.0);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    int64_t k = dist.Quantile(p);
    EXPECT_GE(dist.Cdf(k), p);
    if (k > 0) {
      EXPECT_LT(dist.Cdf(k - 1), p);
    }
  }
}

TEST(HypergeomDist, PmfSumsToOne) {
  HypergeomDist dist(50, 12, 20);
  double total = 0;
  for (int64_t k = dist.SupportMin(); k <= dist.SupportMax(); ++k) {
    total += dist.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(HypergeomDist, ReferenceValues) {
  // Hypergeom(N=10, K=4, n=5): P(X=2) = C(4,2)C(6,3)/C(10,5) = 6*20/252.
  HypergeomDist dist(10, 4, 5);
  EXPECT_NEAR(dist.Pmf(2), 6.0 * 20.0 / 252.0, 1e-12);
  EXPECT_NEAR(dist.Mean(), 2.0, 1e-12);
  // Var = n (K/N)(1-K/N)(N-n)/(N-1) = 5*0.4*0.6*5/9.
  EXPECT_NEAR(dist.Variance(), 5.0 * 0.4 * 0.6 * 5.0 / 9.0, 1e-12);
}

TEST(HypergeomDist, SupportBounds) {
  HypergeomDist dist(10, 8, 7);
  EXPECT_EQ(dist.SupportMin(), 5);  // draws + successes - population
  EXPECT_EQ(dist.SupportMax(), 7);
  EXPECT_EQ(dist.Pmf(4), 0.0);
  EXPECT_EQ(dist.Pmf(8), 0.0);
}

TEST(HypergeomDist, QuantileInverse) {
  HypergeomDist dist(1000, 100, 50);
  for (double p : {0.05, 0.5, 0.95}) {
    int64_t k = dist.Quantile(p);
    EXPECT_GE(dist.Cdf(k), p - 1e-9);
    if (k > dist.SupportMin()) {
      EXPECT_LT(dist.Cdf(k - 1), p);
    }
  }
}

TEST(HypergeomDist, DegenerateCases) {
  HypergeomDist none(100, 0, 50);
  EXPECT_EQ(none.SupportMax(), 0);
  EXPECT_EQ(none.Cdf(0), 1.0);
  HypergeomDist all(100, 100, 50);
  EXPECT_EQ(all.SupportMin(), 50);
  EXPECT_NEAR(all.Pmf(50), 1.0, 1e-12);
}

}  // namespace
}  // namespace ss
