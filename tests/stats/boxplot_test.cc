#include <gtest/gtest.h>

#include <vector>

#include "src/stats/boxplot.h"

namespace ss {
namespace {

TEST(SortedQuantile, Interpolates) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(SortedQuantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(data, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(data, 0.125), 1.5);
}

TEST(SortedQuantile, EdgeSizes) {
  std::vector<double> empty;
  EXPECT_EQ(SortedQuantile(empty, 0.5), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_EQ(SortedQuantile(one, 0.99), 7.0);
}

TEST(BoxplotTest, NoOutlierInUniformData) {
  std::vector<double> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(10.0 + (i % 10));
  }
  BoxplotStats stats = BoxplotTest(data);
  EXPECT_FALSE(stats.has_outlier);
}

TEST(BoxplotTest, DetectsHighOutlier) {
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 100};
  BoxplotStats stats = BoxplotTest(data);
  EXPECT_TRUE(stats.has_outlier);
  EXPECT_GT(stats.upper_fence, 8.0);
  EXPECT_LT(stats.upper_fence, 100.0);
}

TEST(BoxplotTest, DetectsLowOutlier) {
  std::vector<double> data = {-100, 10, 11, 12, 13, 14, 15, 16};
  BoxplotStats stats = BoxplotTest(data);
  EXPECT_TRUE(stats.has_outlier);
}

TEST(BoxplotTest, FenceParameterWidens) {
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 14};
  EXPECT_TRUE(BoxplotTest(data, 1.0).has_outlier);
  EXPECT_FALSE(BoxplotTest(data, 3.0).has_outlier);
}

TEST(BoxplotTest, QuartilesCorrect) {
  std::vector<double> data = {7, 15, 36, 39, 40, 41};
  BoxplotStats stats = BoxplotTest(data);
  EXPECT_DOUBLE_EQ(stats.q1, 20.25);
  EXPECT_DOUBLE_EQ(stats.median, 37.5);
  EXPECT_DOUBLE_EQ(stats.q3, 39.75);
}

}  // namespace
}  // namespace ss
