#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/hash.h"

namespace ss {
namespace {

TEST(Hash64, MatchesXxHash64ReferenceVectors) {
  // Reference values from the canonical xxHash implementation.
  EXPECT_EQ(Hash64("", 0), 0xef46db3751d8e999ULL);
  EXPECT_EQ(Hash64("a", 0), 0xd24ec4f1a98c6e5bULL);
  EXPECT_EQ(Hash64("abc", 0), 0x44bc2cf5ad770999ULL);
  EXPECT_EQ(Hash64("xxhash", 0), 0x32dd38952c4bc720ULL);
}

TEST(Hash64, SeedChangesOutput) {
  EXPECT_NE(Hash64("payload", 0), Hash64("payload", 1));
}

TEST(Hash64, LongInputsStable) {
  std::string long_input(1000, 'z');
  EXPECT_EQ(Hash64(long_input), Hash64(long_input));
  EXPECT_NE(Hash64(long_input), Hash64(long_input + "z"));
}

TEST(Hash64, IntegerOverloadDiffers) {
  std::set<uint64_t> hashes;
  for (uint64_t i = 0; i < 10000; ++i) {
    hashes.insert(Hash64(i));
  }
  EXPECT_EQ(hashes.size(), 10000u);  // no collisions on small consecutive ints
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalancheRoughlyHalfBits) {
  int total_flips = 0;
  for (uint64_t i = 1; i < 1000; ++i) {
    uint64_t diff = Mix64(i) ^ Mix64(i ^ 1);
    total_flips += __builtin_popcountll(diff);
  }
  double mean_flips = total_flips / 999.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(NthHash, DistinctForDistinctIndices) {
  uint64_t h1 = Hash64("value");
  uint64_t h2 = Mix64(h1);
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 16; ++i) {
    values.insert(NthHash(h1, h2, i));
  }
  EXPECT_EQ(values.size(), 16u);
}

}  // namespace
}  // namespace ss
