#include <gtest/gtest.h>

#include "src/common/status.h"

namespace ss {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

Status FailingHelper() { return Status::IoError("disk on fire"); }

Status UsesReturnIfError() {
  SS_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIoError);
}

StatusOr<int> ProducesValue() { return 10; }
StatusOr<int> ProducesError() { return Status::OutOfRange("nope"); }

StatusOr<int> UsesAssignOrReturn(bool fail) {
  SS_ASSIGN_OR_RETURN(int a, fail ? ProducesError() : ProducesValue());
  SS_ASSIGN_OR_RETURN(int b, ProducesValue());
  return a + b;
}

TEST(Macros, AssignOrReturnSuccessAndFailure) {
  auto ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 20);
  auto err = UsesAssignOrReturn(true);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ss
