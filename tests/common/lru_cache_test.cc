#include <gtest/gtest.h>

#include <string>

#include "src/common/lru_cache.h"

namespace ss {
namespace {

TEST(LruCache, PutGet) {
  LruCache<int, std::string> cache(100);
  cache.Put(1, "one", 10);
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(30);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Put(3, 3, 10);
  EXPECT_EQ(cache.entry_count(), 3u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 4, 10);
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
}

TEST(LruCache, ReplaceUpdatesCharge) {
  LruCache<int, int> cache(20);
  cache.Put(1, 1, 15);
  cache.Put(1, 2, 5);
  EXPECT_EQ(cache.size_bytes(), 5u);
  EXPECT_EQ(*cache.Get(1), 2);
}

TEST(LruCache, OversizedEntryEvictedImmediately) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1, 100);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(LruCache, ZeroCapacityDisables) {
  LruCache<int, int> cache(0);
  cache.Put(1, 1, 1);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(LruCache, EraseAndClear) {
  LruCache<int, int> cache(100);
  cache.Put(1, 1, 10);
  cache.Put(2, 2, 10);
  cache.Erase(1);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size_bytes(), 10u);
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(LruCache, TracksHitsAndMisses) {
  LruCache<int, int> cache(100);
  cache.Put(1, 1, 1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace ss
