#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace ss {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int total = 0;
  for (auto& f : futures) {
    total += f.get();
  }
  // Σ i² for i in [0, 100)
  EXPECT_EQ(total, 99 * 100 * 199 / 6);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] {
      int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = peak.load(std::memory_order_relaxed);
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      running.fetch_sub(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruction joins after running everything already queued: no task is
    // dropped and no future is broken.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ObserverSeesQueueWaitAndDepth) {
  std::atomic<uint64_t> observations{0};
  {
    ThreadPool pool(2, [&](uint64_t /*wait_us*/, size_t /*depth*/) {
      observations.fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([] {}));
    }
    for (auto& f : futures) {
      f.get();
    }
  }
  EXPECT_EQ(observations.load(), 20u);
}

TEST(ThreadPool, DefaultThreadCountIsBounded) {
  size_t n = ThreadPool::DefaultThreadCount();
  EXPECT_GE(n, 2u);
  EXPECT_LE(n, 8u);
}

}  // namespace
}  // namespace ss
